"""Discrete-event simulation substrate.

Everything in the evaluation half of the reproduction runs on this simulator:
a single-threaded event loop with an integer-microsecond clock, a WAN network
model (latency matrix + jitter + per-host NIC serialization + loss +
partitions), and a process model where nodes live on `Host`s (machines):
message handling costs CPU time and queues behind other work on the same
host — by default one private host per node, or many group replicas
multiplexed onto one shared machine.

The three resource models (WAN latency, node CPU, node NIC bandwidth) are the
three budget terms the paper's evaluation exercises, so reproducing them is
what makes the figure *shapes* come out right.
"""

from repro.sim.events import Event, Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Host, Node, NodeCosts, Timer
from repro.sim.rng import SplitRng
from repro.sim.topology import (
    EC2_REGIONS,
    HostPlan,
    Topology,
    ec2_five_regions,
    symmetric_lan,
    uniform_topology,
)
from repro.sim.trace import TraceLog, TraceRecord
from repro.sim.units import MICROSECOND, ms, sec, us, to_ms, to_sec

__all__ = [
    "EC2_REGIONS",
    "Event",
    "Host",
    "HostPlan",
    "MICROSECOND",
    "Network",
    "NetworkConfig",
    "Node",
    "NodeCosts",
    "Simulator",
    "SplitRng",
    "Timer",
    "Topology",
    "TraceLog",
    "TraceRecord",
    "ec2_five_regions",
    "ms",
    "sec",
    "symmetric_lan",
    "to_ms",
    "to_sec",
    "uniform_topology",
    "us",
]
