"""Process model.

A `Node` is a single-core process: every received message is handled by
`on_message`, and handling costs CPU time (`NodeCosts`).  Messages queue
behind each other on the node's CPU, which is exactly how a consensus leader
saturates in the paper's Figure 9c / Figure 10a experiments.

Nodes can crash (lose volatile state, stop timers, drop in-flight work) and
recover (restart from stable storage).  Timers are cancellable handles that
never fire on a crashed node or across an incarnation boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.sim.errors import NodeStateError
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event, Simulator
    from repro.sim.network import Network


@dataclass
class NodeCosts:
    """CPU cost model, in microseconds.

    `per_message` is charged for every handled message, `per_command` for
    every unit of command work a message carries (so batching amortizes
    headers but not real work), and `per_byte` scales with payload so 4 KB
    entries cost more than 8 B entries (Figure 10a vs 10b).  The defaults
    are the scaled budget described in DESIGN.md (~20x slower than the
    paper's m4.xlarge).

    Unit weights mirror where real systems spend CPU: client-facing request
    handling (connection, parse, session) is ~3 units, a forwarded command
    ~1 unit, and a replicated log entry ~0.25 units (etcd's follower append
    path is far cheaper than its client path).
    """

    per_message: int = 30
    per_command: int = 300
    per_byte: float = 0.01

    def cost(self, message: Any) -> int:
        size_fn = getattr(message, "size_bytes", None)
        size = int(size_fn()) if callable(size_fn) else 64
        count_fn = getattr(message, "command_count", None)
        count = float(count_fn()) if callable(count_fn) else 0.0
        return int(self.per_message + self.per_command * count + self.per_byte * size)


class Timer:
    """A cancellable, re-armable timer bound to a node incarnation."""

    def __init__(self, node: "Node", name: str) -> None:
        self.node = node
        self.name = name
        self._event: Optional["Event"] = None
        self._incarnation = node.incarnation

    def arm(self, delay: int, callback: Callable[[], None]) -> None:
        """(Re)arm the timer `delay` microseconds from now."""
        self.cancel()
        self._incarnation = self.node.incarnation
        self._event = self.node.sim.schedule(delay, self._fire, callback)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def _fire(self, callback: Callable[[], None]) -> None:
        self._event = None
        if not self.node.alive or self.node.incarnation != self._incarnation:
            return
        callback()


class Node:
    """Base class for simulated processes (replicas, clients)."""

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        network: "Network",
        site: Optional[str] = None,
        costs: Optional[NodeCosts] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.site = site if site is not None else name
        self.costs = costs or NodeCosts()
        self.trace = trace or TraceLog(enabled=False)
        self.alive = True
        self.incarnation = 0
        self.stable: Dict[str, Any] = {}  # survives crashes
        self._cpu_free = 0
        self.cpu_busy_us = 0
        self.messages_handled = 0
        network.register(self)

    # -- messaging -----------------------------------------------------------

    def send(self, dst: str, message: Any) -> None:
        """Send a message; does nothing if this node is crashed."""
        if not self.alive:
            return
        self.trace.record(self.sim.now, self.name, "send", dst=dst, msg=type(message).__name__)
        self.network.send(self.name, dst, message)

    def _receive(self, src: str, message: Any) -> None:
        """Called by the network on arrival: queue the message on the CPU."""
        if not self.alive:
            return
        cost = self.costs.cost(message)
        start = max(self.sim.now, self._cpu_free)
        done = start + cost
        self._cpu_free = done
        self.cpu_busy_us += cost
        incarnation = self.incarnation
        self.sim.schedule(done - self.sim.now, self._handle, src, message, incarnation)

    def _handle(self, src: str, message: Any, incarnation: int) -> None:
        if not self.alive or self.incarnation != incarnation:
            return
        self.messages_handled += 1
        self.trace.record(self.sim.now, self.name, "recv", src=src, msg=type(message).__name__)
        self.on_message(src, message)

    def on_message(self, src: str, message: Any) -> None:
        """Override in subclasses."""
        raise NotImplementedError

    # -- timers ---------------------------------------------------------------

    def timer(self, name: str) -> Timer:
        return Timer(self, name)

    def after(self, delay: int, callback: Callable[[], None]) -> Timer:
        """One-shot convenience: arm an anonymous timer."""
        timer = Timer(self, f"after@{self.sim.now}")
        timer.arm(delay, callback)
        return timer

    # -- lifecycle --------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: volatile state is lost, pending work is dropped."""
        if not self.alive:
            raise NodeStateError(f"{self.name} is already crashed")
        self.alive = False
        self.incarnation += 1
        self.trace.record(self.sim.now, self.name, "crash")
        self.on_crash()

    def recover(self) -> None:
        """Restart from stable storage."""
        if self.alive:
            raise NodeStateError(f"{self.name} is not crashed")
        self.alive = True
        self.incarnation += 1
        self._cpu_free = self.sim.now
        self.trace.record(self.sim.now, self.name, "recover")
        self.on_recover()

    def on_crash(self) -> None:
        """Override for protocol-specific crash bookkeeping."""

    def on_recover(self) -> None:
        """Override: reload volatile state from `self.stable`, re-arm timers."""

    # -- introspection ------------------------------------------------------------

    def cpu_backlog_us(self) -> int:
        """How much queued CPU work the node has right now."""
        return max(0, self._cpu_free - self.sim.now)

    def utilization(self, elapsed_us: int) -> float:
        """Fraction of `elapsed_us` spent busy (diagnostic)."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_us / elapsed_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"{type(self).__name__}({self.name}@{self.site}, {state})"
