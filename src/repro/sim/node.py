"""Process model.

A `Host` is a single-core machine: one CPU queue and one NIC.  A `Node` is
a process placed on a host — every received message is handled by
`on_message`, and handling costs CPU time (`NodeCosts`) charged to the
host's queue.  Messages queue behind each other on the host's CPU, which is
exactly how a consensus leader saturates in the paper's Figure 9c /
Figure 10a experiments.

By default every node gets a private host (one process per machine — the
paper's deployment), so the single-group model is unchanged.  Multiplexed
deployments (`repro.protocols.mux`, `repro.shard`) place many group
replicas on one shared host: they then contend for one CPU and one NIC,
and the machine — not the process — becomes the crash unit (`Host.crash`
fails every node on it together, the way a real box takes all its raft
groups down at once).

Nodes can crash (lose volatile state, stop timers, drop in-flight work) and
recover (restart from stable storage).  Timers are cancellable handles that
never fire on a crashed node or across an incarnation boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.sim.errors import NodeStateError
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event, Simulator
    from repro.sim.network import Network


# Per-type dispatch caches: whether a message class defines size_bytes /
# command_count.  The getattr probe runs once per *class*, not per call —
# the hot path is a dict hit on `type(message)`.  Message classes memoize
# the computed size per *instance* (see protocols.messages), so the three
# charging sites (node CPU cost, network size estimate, mux envelope)
# all read one cached number.
_HAS_SIZE: Dict[type, bool] = {}
_HAS_COUNT: Dict[type, bool] = {}
# Combined (has_size, has_count) shape per type for `NodeCosts.cost`, the
# one site that needs both answers: one dict hit instead of two.
_COST_SHAPE: Dict[type, tuple] = {}


def payload_size_bytes(message: Any) -> int:
    """Wire size of an arbitrary message: its `size_bytes()` if it has
    one, else a small constant header.  THE canonical fallback — the CPU
    model, the network's size estimate, and the mux envelope all charge
    through here so a batch costs exactly what its parts would."""
    tp = type(message)
    has = _HAS_SIZE.get(tp)
    if has is None:
        has = callable(getattr(message, "size_bytes", None))
        _HAS_SIZE[tp] = has
    return int(message.size_bytes()) if has else 64


def payload_command_count(message: Any) -> float:
    """Command-work units a message carries (`command_count()`, else 0)."""
    tp = type(message)
    has = _HAS_COUNT.get(tp)
    if has is None:
        has = callable(getattr(message, "command_count", None))
        _HAS_COUNT[tp] = has
    return float(message.command_count()) if has else 0.0


@dataclass
class NodeCosts:
    """CPU cost model, in microseconds.

    `per_message` is charged for every handled message, `per_command` for
    every unit of command work a message carries (so batching amortizes
    headers but not real work), and `per_byte` scales with payload so 4 KB
    entries cost more than 8 B entries (Figure 10a vs 10b).  The defaults
    are the scaled budget described in DESIGN.md (~20x slower than the
    paper's m4.xlarge).

    Unit weights mirror where real systems spend CPU: client-facing request
    handling (connection, parse, session) is ~3 units, a forwarded command
    ~1 unit, and a replicated log entry ~0.25 units (etcd's follower append
    path is far cheaper than its client path).
    """

    per_message: int = 30
    per_command: int = 300
    per_byte: float = 0.01

    def cost(self, message: Any) -> int:
        tp = type(message)
        shape = _COST_SHAPE.get(tp)
        if shape is None:
            shape = _COST_SHAPE[tp] = (
                callable(getattr(message, "size_bytes", None)),
                callable(getattr(message, "command_count", None)),
                hasattr(tp, "_cpu"),
            )
        if shape[2]:
            # Per-object memo: the same message fanned out to several
            # peers (or an interned heartbeat repeated across ticks) is
            # costed once per cost table.  Guarded by identity on the
            # `NodeCosts` instance — a cluster shares one table, but a
            # message crossing tables (reshard traffic) recomputes.
            memo = message._cpu
            if memo is not None and memo[0] is self:
                return memo[1]
            size = int(message.size_bytes()) if shape[0] else 64
            count = float(message.command_count()) if shape[1] else 0.0
            value = int(self.per_message + self.per_command * count
                        + self.per_byte * size)
            message._cpu = (self, value)
            return value
        size = int(message.size_bytes()) if shape[0] else 64
        count = float(message.command_count()) if shape[1] else 0.0
        return int(self.per_message + self.per_command * count + self.per_byte * size)


class Host:
    """A single-core machine: the CPU queue (and NIC identity) shared by
    every node placed on it.

    The network serializes egress per host (`Host.name` is the NIC key), so
    eight colocated shard leaders on one host share one uplink the way
    eight raft groups in one TiKV/Cockroach store share one machine.
    """

    def __init__(self, name: str, sim: "Simulator", site: Optional[str] = None) -> None:
        self.name = name
        self.sim = sim
        self.site = site if site is not None else name
        self.nodes: List["Node"] = []
        self._cpu_free = 0
        self.cpu_busy_us = 0

    def attach(self, node: "Node") -> None:
        self.nodes.append(node)

    def run_for(self, cost: int) -> int:
        """Queue `cost` microseconds of CPU work; returns completion time."""
        start = max(self.sim.now, self._cpu_free)
        done = start + cost
        self._cpu_free = done
        self.cpu_busy_us += cost
        return done

    def cpu_backlog_us(self) -> int:
        """How much queued CPU work the host has right now."""
        return max(0, self._cpu_free - self.sim.now)

    def node_recovered(self, node: "Node") -> None:
        """A node restarted: its queued work was dropped on crash, so free
        the CPU it would have consumed — unless other live nodes share the
        host and their queued work is still pending."""
        if all(n is node or not n.alive for n in self.nodes):
            self._cpu_free = self.sim.now

    # -- machine-granularity failures ---------------------------------------

    @property
    def alive(self) -> bool:
        return any(node.alive for node in self.nodes)

    def crash(self) -> None:
        """Fail-stop the machine: every node on it crashes together."""
        for node in self.nodes:
            if node.alive:
                node.crash()

    def recover(self) -> None:
        """Restart the machine: every crashed node on it recovers."""
        for node in self.nodes:
            if not node.alive:
                node.recover()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name}@{self.site}, {len(self.nodes)} nodes)"


class Timer:
    """A cancellable, re-armable timer bound to a node incarnation.

    Re-arming is lazy: the timer tracks its intended deadline, and an
    in-flight queue event that fires at or before the new deadline is
    *kept* — when it fires early it just reschedules itself for the
    remaining gap.  A timer that is pushed out on every message (the
    election timeout, reset per AppendEntries) therefore costs one queue
    event per timeout *window*, not one cancelled entry per reset, which
    is what kept the old event queue full of dead heartbeat entries.
    """

    __slots__ = ("node", "name", "_event", "_deadline", "_callback",
                 "_incarnation")

    def __init__(self, node: "Node", name: str) -> None:
        self.node = node
        self.name = name
        self._event: Optional["Event"] = None
        self._deadline = -1  # -1 = disarmed
        self._callback: Optional[Callable[[], None]] = None
        self._incarnation = node.incarnation

    def arm(self, delay: int, callback: Callable[[], None]) -> None:
        """(Re)arm the timer `delay` microseconds from now."""
        node = self.node
        deadline = node.sim.now + int(delay)
        self._incarnation = node.incarnation
        self._deadline = deadline
        self._callback = callback
        event = self._event
        if event is not None:
            if not event.cancelled and event.time <= deadline:
                # The queued event fires no later than the new deadline:
                # keep it.  If it wakes early it sees now < deadline and
                # sleeps again for the gap (see `_fire`).
                return
            event.cancel()
        self._event = node.sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        self._deadline = -1
        self._callback = None
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        return self._deadline >= 0

    def _fire(self) -> None:
        self._event = None
        node = self.node
        if not node.alive or node.incarnation != self._incarnation:
            self._deadline = -1
            self._callback = None
            return
        deadline = self._deadline
        if deadline < 0:
            return
        now = node.sim.now
        if now < deadline:
            # Deadline was extended since this event was queued: sleep for
            # the remaining gap instead of firing.
            self._event = node.sim.schedule(deadline - now, self._fire)
            return
        callback = self._callback
        self._deadline = -1
        self._callback = None
        callback()


class Node:
    """Base class for simulated processes (replicas, clients)."""

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        network: "Network",
        site: Optional[str] = None,
        costs: Optional[NodeCosts] = None,
        trace: Optional[TraceLog] = None,
        host: Optional[Host] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.site = site if site is not None else name
        self.costs = costs or NodeCosts()
        self.trace = trace or TraceLog(enabled=False)
        # Request-lifecycle observability (repro.obs.Observability); None
        # (the default) makes every `obs_phase` call one branch.
        self.obs = None
        self.alive = True
        self.incarnation = 0
        self.stable: Dict[str, Any] = {}  # survives crashes
        self.host = host if host is not None else Host(name, sim, site=self.site)
        self.host.attach(self)
        self.cpu_busy_us = 0
        self.messages_handled = 0
        # Multiplexed deployments: a `GroupMux` transport that intercepts
        # sends to replicas it covers (None = talk to the network directly).
        self.mux = None
        # The dispatch callback `_receive` schedules for every arriving
        # message, resolved once: attribute access re-creates a bound
        # method per call otherwise, and this binds the most-derived
        # override (`ReplicaBase._handle`) since subclass methods resolve
        # through `self`.
        self._handle_cb = self._handle
        network.register(self)

    # -- messaging -----------------------------------------------------------

    def send(self, dst: str, message: Any) -> None:
        """Send a message; does nothing if this node is crashed."""
        if not self.alive:
            return
        if self.trace.enabled:
            self.trace.record(self.sim.now, self.name, "send", dst=dst,
                              msg=type(message).__name__)
        mux = self.mux
        if mux is not None and dst in mux.directory.replica_to_mux:
            mux.enqueue(self.name, dst, message)
            return
        self.network.send(self.name, dst, message)

    def _receive(self, src: str, message: Any) -> None:
        """Called by the network on arrival: queue the message on the CPU."""
        if not self.alive:
            return
        cost = self.costs.cost(message)
        sim = self.sim
        host = self.host
        now = sim._now
        start = host._cpu_free
        if start < now:
            start = now
        done = start + cost
        host._cpu_free = done
        host.cpu_busy_us += cost
        self.cpu_busy_us += cost
        sim.schedule(done - now, self._handle_cb, src, message,
                     self.incarnation)

    def _handle(self, src: str, message: Any, incarnation: int) -> None:
        if not self.alive or self.incarnation != incarnation:
            return
        self.messages_handled += 1
        if self.trace.enabled:
            self.trace.record(self.sim.now, self.name, "recv", src=src,
                              msg=type(message).__name__)
        self.on_message(src, message)

    def deliver_direct(self, src: str, message: Any) -> None:
        """Deliver a message whose CPU cost was already charged to the host
        (the mux charges one envelope for many inner messages)."""
        if not self.alive:
            return
        self.messages_handled += 1
        if self.trace.enabled:
            self.trace.record(self.sim.now, self.name, "recv", src=src,
                              msg=type(message).__name__)
        self.on_message(src, message)

    def on_message(self, src: str, message: Any) -> None:
        """Override in subclasses."""
        raise NotImplementedError

    def obs_phase(self, trace: Optional[str], phase: str, **detail: Any) -> None:
        """Record a request-lifecycle phase timestamp (no-op unless an
        `Observability` collector is installed and the command is traced)."""
        obs = self.obs
        if obs is not None and trace is not None:
            obs.phase(self.sim.now, self.name, trace, phase, **detail)

    # -- timers ---------------------------------------------------------------

    def timer(self, name: str) -> Timer:
        return Timer(self, name)

    def after(self, delay: int, callback: Callable[[], None]) -> Timer:
        """One-shot convenience: arm an anonymous timer."""
        timer = Timer(self, f"after@{self.sim.now}")
        timer.arm(delay, callback)
        return timer

    # -- lifecycle --------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: volatile state is lost, pending work is dropped."""
        if not self.alive:
            raise NodeStateError(f"{self.name} is already crashed")
        self.alive = False
        self.incarnation += 1
        self.trace.record(self.sim.now, self.name, "crash")
        self.on_crash()

    def recover(self) -> None:
        """Restart from stable storage."""
        if self.alive:
            raise NodeStateError(f"{self.name} is not crashed")
        self.alive = True
        self.incarnation += 1
        self.host.node_recovered(self)
        self.trace.record(self.sim.now, self.name, "recover")
        self.on_recover()

    def on_crash(self) -> None:
        """Override for protocol-specific crash bookkeeping."""

    def on_recover(self) -> None:
        """Override: reload volatile state from `self.stable`, re-arm timers."""

    # -- introspection ------------------------------------------------------------

    def cpu_backlog_us(self) -> int:
        """How much queued CPU work the node's host has right now."""
        return self.host.cpu_backlog_us()

    def utilization(self, elapsed_us: int) -> float:
        """Fraction of `elapsed_us` spent busy (diagnostic)."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_us / elapsed_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"{type(self).__name__}({self.name}@{self.site}, {state})"
