"""Structured trace log.

Disabled by default (zero overhead beyond one branch); tests and examples can
enable it to assert on protocol behaviour ("the follower forwarded to the
leader", "no append was sent after the partition") without reaching into
replica internals.

Capacity policy: by default a full log drops the *newest* records (cheap,
and fine for "did X happen early in the run" assertions).  Long-running
observability consumers (`repro.obs`) want the opposite — the interesting
records are at the end of the run — so `ring=True` turns the log into a
ring buffer that evicts the *oldest* record instead.  Both modes keep the
`dropped` count so a truncated log is never mistaken for a complete one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: int
    node: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:>12}us] {self.node:<12} {self.kind:<8} {extras}"


class TraceLog:
    """Append-only sequence of `TraceRecord`s with simple query helpers."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None,
                 ring: bool = False) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.ring = ring
        self.records: Deque[TraceRecord] = deque()
        self.dropped = 0

    def record(self, time: int, node: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            if not self.ring:
                return  # drop-newest: the record never enters the log
            self.records.popleft()  # ring: evict the oldest instead
        self.records.append(TraceRecord(time, node, kind, detail))

    def filter(self, node: Optional[str] = None, kind: Optional[str] = None) -> Iterator[TraceRecord]:
        for rec in self.records:
            if node is not None and rec.node != node:
                continue
            if kind is not None and rec.kind != kind:
                continue
            yield rec

    def count(self, node: Optional[str] = None, kind: Optional[str] = None) -> int:
        return sum(1 for _ in self.filter(node, kind))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
