"""Event queue and simulator core.

A `Simulator` owns a monotonic integer-microsecond clock and a two-level
pending-event structure tuned for the simulation's arrival pattern:

* **near store** — events below a rolling horizon live in a dict keyed by
  their exact timestamp (one list per distinct microsecond, kept in
  insertion order) plus a small heap of the distinct timestamps.  Events
  scheduled at an already-pending time cost one list append — no heap
  operation — and a whole same-tick batch dispatches off one heap pop.
* **timer wheel** — events at or beyond the horizon live in coarse
  buckets of ``2**WHEEL_BITS`` microseconds.  Scheduling into the far
  future is one dict append; when the near store drains, the next bucket
  cascades into it (its events re-keyed by exact time) and the horizon
  advances past the bucket.  Far-future timers — heartbeats, election
  timeouts, lease expiries — never touch the near heap until their bucket
  comes up, which keeps that heap small and its operations cheap.

Cancellation is a lazy flag (O(1)); cancelled entries are skipped at
dispatch (and silently dropped when their bucket cascades).  When the
cancelled backlog grows past `COMPACT_THRESHOLD` *and* outnumbers the
live events, the structures are compacted in place so a cancel-heavy
workload cannot pollute the queue indefinitely.

Determinism contract: given the same seed and the same sequence of
`schedule` calls, a run produces the identical event order.  Ties on the
timestamp are broken by insertion sequence number (the per-timestamp
lists are in insertion order, and bucket cascade preserves it).
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.sim.errors import SchedulingError

#: log2 of the wheel bucket width: 4096 us buckets — small enough that a
#: cascade re-keys only a few ms of events, large enough that ms-scale
#: timers (heartbeats, flush ticks, election timeouts) skip the near heap.
WHEEL_BITS = 12

#: Compact the queue once this many cancelled entries are pending AND they
#: outnumber the live ones.
COMPACT_THRESHOLD = 1024


class Event:
    """A scheduled callback.

    Events are cancellable: `cancel()` marks the event dead and the simulator
    skips it when popped (lazy deletion, O(1) cancel).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(self, time: int, seq: int, callback: Callable[..., None],
                 args: tuple, sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        if not self.cancelled:
            self.cancelled = True
            sim = self.sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Single-threaded discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10, fired.append, 'a')
    >>> _ = sim.schedule(5, fired.append, 'b')
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        # Near store: exact time -> events in insertion order, plus a heap
        # of the distinct times.  Holds every event with time < _horizon.
        self._at: Dict[int, List[Event]] = {}
        self._times: List[int] = []
        # Timer wheel: coarse bucket (time >> WHEEL_BITS) -> events in
        # insertion order, plus a heap of the distinct bucket ids.  Holds
        # every event with time >= _horizon.
        self._wheel: Dict[int, List[Event]] = {}
        self._buckets: List[int] = []
        self._horizon = 1 << WHEEL_BITS
        # Exact counts: live (queued, not cancelled) and cancelled-but-
        # still-queued events.
        self._live = 0
        self._cancelled = 0
        # The timestamp whose batch is currently dispatching (compaction
        # must not replace that list out from under the dispatch loop).
        self._dispatch_time: Optional[int] = None
        self._running = False
        self.events_processed = 0
        # Opt-in wall-clock profiler (repro.obs.profiler.SimProfiler).
        # None (the default) costs one attribute load + branch per event.
        self.profiler = None
        # Pause the cyclic GC while run() drains (see `run`); set False to
        # keep the collector's normal cadence.
        self.gc_pause = True

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule `callback(*args)` to run `delay` microseconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay}us in the past")
        time = self._now + int(delay)
        self._seq += 1
        event = Event(time, self._seq, callback, args, self)
        self._live += 1
        if time < self._horizon:
            lst = self._at.get(time)
            if lst is None:
                self._at[time] = [event]
                heapq.heappush(self._times, time)
            else:
                lst.append(event)
        else:
            bucket = time >> WHEEL_BITS
            lst = self._wheel.get(bucket)
            if lst is None:
                self._wheel[bucket] = [event]
                heapq.heappush(self._buckets, bucket)
            else:
                lst.append(event)
        return event

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule `callback(*args)` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, *args)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the next event is later than
        `until` (absolute time, inclusive), or after `max_events` callbacks.
        Returns the number of events processed in this call.
        """
        processed = 0
        at = self._at
        times = self._times
        heappop = heapq.heappop
        # The profiler can only change between run() calls (attach/detach
        # are user-level operations), so one load covers the whole run.
        profiler = self.profiler
        # Pause the cyclic garbage collector while draining: the event loop
        # allocates hundreds of container objects per simulated message, so
        # generation-0 scans otherwise fire thousands of times per second.
        # Everything the simulator churns (events, messages, per-tick lists)
        # dies by refcount — the structures that do form cycles (an event's
        # sim backref, a timer's event) are detached explicitly on pop or
        # cancel — so pausing trades no memory for a large constant factor.
        # Set `gc_pause = False` to opt out.
        gc_was_enabled = self.gc_pause and gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        self._running = True
        try:
            while True:
                if not times:
                    if not self._buckets:
                        break
                    self._cascade()
                    continue
                time = times[0]
                if until is not None and time > until:
                    break
                batch = at[time]
                self._now = time
                self._dispatch_time = time
                # Index iteration: a callback may append same-tick events
                # to this very list; they run in this batch, in seq order.
                i = 0
                if max_events is None and profiler is None:
                    # Fast path: nothing to check per event but the
                    # cancelled flag.  A plain for-loop is safe against
                    # same-tick appends — the list iterator re-checks the
                    # length every step, so events appended by a callback
                    # are visited in seq order.
                    for event in batch:
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        self._live -= 1
                        event.callback(*event.args)
                        processed += 1
                    i = len(batch)
                else:
                    while i < len(batch):
                        if max_events is not None and processed >= max_events:
                            break
                        event = batch[i]
                        i += 1
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        self._live -= 1
                        if profiler is None:
                            event.callback(*event.args)
                        else:
                            profiler.dispatch(event)
                        processed += 1
                self._dispatch_time = None
                if i < len(batch):
                    # max_events hit mid-batch: keep the unprocessed tail.
                    at[time] = batch[i:]
                    break
                del at[time]
                heappop(times)
                if max_events is not None and processed >= max_events:
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
            self._dispatch_time = None
            self.events_processed += processed
        if until is not None and self._now < until and (
            not self._times or self._times[0] > until
        ):
            # Advance the clock to the requested horizon so repeated
            # run(until=...) calls observe monotonic time.  Wheel events
            # all sit at or beyond the near horizon, which is past the
            # next near time — the check above covers them too, because
            # the loop always cascades before inspecting `until`.
            self._now = until
        return processed

    def _cascade(self) -> None:
        """Move the earliest wheel bucket into the (empty) near store and
        advance the horizon past it.  Preserves insertion order per
        timestamp; drops cancelled entries for free."""
        bucket = heapq.heappop(self._buckets)
        at = self._at
        times = self._times
        for event in self._wheel.pop(bucket):
            if event.cancelled:
                self._cancelled -= 1
                continue
            time = event.time
            lst = at.get(time)
            if lst is None:
                at[time] = [event]
                heapq.heappush(times, time)
            else:
                lst.append(event)
        self._horizon = (bucket + 1) << WHEEL_BITS

    # -- cancellation bookkeeping ------------------------------------------

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > COMPACT_THRESHOLD and self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every pending list (except the batch
        currently dispatching, whose identity the run loop relies on)."""
        removed = 0
        for store, heap in ((self._at, self._times),
                            (self._wheel, self._buckets)):
            dirty = False
            for key in list(store):
                if store is self._at and key == self._dispatch_time:
                    continue
                lst = store[key]
                kept = [event for event in lst if not event.cancelled]
                if len(kept) != len(lst):
                    removed += len(lst) - len(kept)
                    if kept:
                        store[key] = kept
                    else:
                        del store[key]
                        dirty = True
            if dirty:
                heap[:] = list(store)
                heapq.heapify(heap)
        self._cancelled -= removed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        queued = self._live + self._cancelled
        return f"Simulator(now={self._now}, pending={queued})"
