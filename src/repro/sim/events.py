"""Event queue and simulator core.

A `Simulator` owns a monotonic integer-microsecond clock and a binary heap of
pending events.  Determinism contract: given the same seed and the same
sequence of `schedule` calls, a run produces the identical event order.  Ties
on the timestamp are broken by insertion sequence number.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.errors import SchedulingError


class Event:
    """A scheduled callback.

    Events are cancellable: `cancel()` marks the event dead and the simulator
    skips it when popped (lazy deletion, O(1) cancel).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Single-threaded discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10, fired.append, 'a')
    >>> _ = sim.schedule(5, fired.append, 'b')
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Event] = []
        self._running = False
        self.events_processed = 0
        # Opt-in wall-clock profiler (repro.obs.profiler.SimProfiler).
        # None (the default) costs one attribute load + branch per event.
        self.profiler = None

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule `callback(*args)` to run `delay` microseconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay}us in the past")
        self._seq += 1
        event = Event(self._now + int(delay), self._seq, callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule `callback(*args)` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, *args)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the next event is later than
        `until` (absolute time, inclusive), or after `max_events` callbacks.
        Returns the number of events processed in this call.
        """
        processed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                if self.profiler is None:
                    event.callback(*event.args)
                else:
                    self.profiler.dispatch(event)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and (
            not self._queue or self._queue[0].time > until
        ):
            # Advance the clock to the requested horizon so repeated
            # run(until=...) calls observe monotonic time.
            self._now = until
        return processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now}, pending={len(self._queue)})"
