"""Exceptions raised by the simulation substrate."""


class SimError(Exception):
    """Base class for simulator errors."""


class SchedulingError(SimError):
    """An event was scheduled in the past or on a stopped simulator."""


class UnknownNodeError(SimError):
    """A message was addressed to a node the network has never seen."""


class NodeStateError(SimError):
    """An operation was attempted on a node in the wrong lifecycle state
    (e.g. crashing an already-crashed node)."""
