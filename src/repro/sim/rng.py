"""Deterministic, stream-split randomness.

Every stochastic component (network jitter, workload key choice, election
timeouts of each replica, ...) draws from its own named stream derived from a
single experiment seed.  Adding a new consumer of randomness therefore never
perturbs the draws seen by existing ones, which keeps regression baselines
stable.
"""

from __future__ import annotations

import hashlib
import random


class SplitRng:
    """A root seed from which independent named streams are derived."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) random stream for `name`."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "SplitRng":
        """Derive a child `SplitRng` (for nested components)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return SplitRng(int.from_bytes(digest[:8], "big"))
