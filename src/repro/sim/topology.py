"""WAN topologies.

The paper's testbed is five EC2 regions — Oregon, Ohio, Ireland, Canada,
Seoul — with cross-site latencies from 25 ms to 292 ms RTT.  `ec2_five_regions`
encodes a representative RTT matrix consistent with those figures and with the
observations the paper makes about it:

* the quorum {Oregon, Ohio, Canada} is the tightest majority (Raft-Oregon has
  the lowest leader latency, ~79 ms);
* Seoul is the farthest site on average (Raft-Seoul is the worst-case leader
  placement);
* Ireland–Seoul is the longest link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.sim.units import ms

EC2_REGIONS = ("oregon", "ohio", "ireland", "canada", "seoul")

# Round-trip times in milliseconds between the five regions, symmetric.
# Chosen to satisfy the paper's observations: 25-292 ms spread, Oregon the
# best leader placement, Seoul the worst, Ireland-Seoul the longest link.
_EC2_RTT_MS: Dict[Tuple[str, str], float] = {
    ("oregon", "ohio"): 25.0,
    ("oregon", "ireland"): 130.0,
    ("oregon", "canada"): 60.0,
    ("oregon", "seoul"): 125.0,
    ("ohio", "ireland"): 80.0,
    ("ohio", "canada"): 65.0,
    ("ohio", "seoul"): 180.0,
    ("ireland", "canada"): 70.0,
    ("ireland", "seoul"): 292.0,
    ("canada", "seoul"): 170.0,
}


@dataclass
class Topology:
    """A set of sites and the one-way latency between them.

    `latency(a, b)` returns the one-way propagation delay in microseconds.
    Within a site (client to its local server) the delay is `local_us`.
    """

    sites: Tuple[str, ...]
    one_way_us: Dict[Tuple[str, str], int] = field(default_factory=dict)
    local_us: int = ms(0.25)
    jitter_fraction: float = 0.05

    def latency(self, src: str, dst: str) -> int:
        if src == dst:
            return self.local_us
        key = (src, dst) if (src, dst) in self.one_way_us else (dst, src)
        try:
            return self.one_way_us[key]
        except KeyError:
            raise KeyError(f"no latency configured between {src!r} and {dst!r}") from None

    def rtt_ms(self, src: str, dst: str) -> float:
        """Round-trip time in milliseconds (diagnostic helper)."""
        return 2 * self.latency(src, dst) / 1000.0

    def nearest_majority_rtt_ms(self, site: str) -> float:
        """RTT to the (n//2)-th nearest other site — the commit latency floor
        for a majority-quorum leader placed at `site`."""
        others = sorted(self.rtt_ms(site, other) for other in self.sites if other != site)
        need = len(self.sites) // 2  # acks needed beyond self for a majority
        return others[need - 1]

    def farthest_rtt_ms(self, site: str) -> float:
        """RTT to the farthest other site (the all-replica wait bound)."""
        return max(self.rtt_ms(site, other) for other in self.sites if other != site)


def ec2_five_regions(jitter_fraction: float = 0.05) -> Topology:
    """The paper's five-region EC2 deployment."""
    one_way = {pair: ms(rtt / 2.0) for pair, rtt in _EC2_RTT_MS.items()}
    return Topology(sites=EC2_REGIONS, one_way_us=one_way, jitter_fraction=jitter_fraction)


def ec2_regions(sites: Sequence[str], jitter_fraction: float = 0.05) -> Topology:
    """A subset of the EC2 regions with the same RTT matrix — e.g. the
    tight-majority 3-site deployment ``("oregon", "ohio", "canada")`` the
    pipeline figure runs on."""
    unknown = set(sites) - set(EC2_REGIONS)
    if unknown:
        raise ValueError(f"unknown EC2 region(s): {sorted(unknown)}")
    chosen = set(sites)
    one_way = {(a, b): ms(rtt / 2.0) for (a, b), rtt in _EC2_RTT_MS.items()
               if a in chosen and b in chosen}
    return Topology(sites=tuple(sites), one_way_us=one_way,
                    jitter_fraction=jitter_fraction)


def ec2_three_regions(jitter_fraction: float = 0.05) -> Topology:
    """The tightest-majority trio of the paper's testbed (Oregon leads)."""
    return ec2_regions(("oregon", "ohio", "canada"),
                       jitter_fraction=jitter_fraction)


def uniform_topology(sites: List[str], rtt_ms_value: float, jitter_fraction: float = 0.05) -> Topology:
    """All pairs share one RTT — handy for controlled tests."""
    one_way = {}
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            one_way[(a, b)] = ms(rtt_ms_value / 2.0)
    return Topology(sites=tuple(sites), one_way_us=one_way, jitter_fraction=jitter_fraction)


def symmetric_lan(n: int, rtt_ms_value: float = 0.5) -> Topology:
    """An n-site LAN (sub-millisecond RTTs), for unit tests."""
    sites = [f"s{i}" for i in range(n)]
    return uniform_topology(sites, rtt_ms_value, jitter_fraction=0.0)


@dataclass(frozen=True)
class HostPlan:
    """Machine layout for host-multiplexed deployments.

    Each site runs `hosts_per_site` hosts; replica group `g`'s member in a
    site lives on host ``h{g % hosts_per_site}.{site}``.  With one host per
    site every group's replica in a region shares that region's machine —
    the multi-raft store layout (TiKV/Cockroach) where colocated placement
    contends on one CPU and one NIC.
    """

    sites: Tuple[str, ...]
    hosts_per_site: int = 1

    def __post_init__(self) -> None:
        if self.hosts_per_site < 1:
            raise ValueError("hosts_per_site must be >= 1")

    def host_name(self, site: str, index: int) -> str:
        return f"h{index % self.hosts_per_site}.{site}"

    def host_for_group(self, site: str, group: int) -> str:
        """The host running group `group`'s replica in `site`."""
        return self.host_name(site, group)

    def host_names(self) -> List[str]:
        return [self.host_name(site, index)
                for site in self.sites
                for index in range(self.hosts_per_site)]

    @staticmethod
    def site_of_host(host_name: str) -> str:
        return host_name.split(".", 1)[1]

    @staticmethod
    def replacement_host_name(host_name: str, incarnation: int) -> str:
        """The machine spliced in for a replaced host: same site (the
        ``.{site}`` suffix `site_of_host` parses is preserved), a fresh
        name so the dead incarnation's queues and stats stay distinct."""
        prefix, site = host_name.split(".", 1)
        base = prefix.split("r", 1)[0]  # hN of a previous replacement
        return f"{base}r{incarnation}.{site}"
