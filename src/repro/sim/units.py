"""Time units.

The simulator clock is an integer count of microseconds.  Integer time makes
event ordering exact and runs reproducible: there is no floating-point drift,
and ties are broken by a deterministic sequence number.
"""

MICROSECOND = 1


def us(value: float) -> int:
    """Convert microseconds to simulator ticks (identity, rounded)."""
    return int(round(value))


def ms(value: float) -> int:
    """Convert milliseconds to simulator ticks."""
    return int(round(value * 1_000))


def sec(value: float) -> int:
    """Convert seconds to simulator ticks."""
    return int(round(value * 1_000_000))


def to_ms(ticks: int) -> float:
    """Convert simulator ticks to (float) milliseconds."""
    return ticks / 1_000.0


def to_sec(ticks: int) -> float:
    """Convert simulator ticks to (float) seconds."""
    return ticks / 1_000_000.0
