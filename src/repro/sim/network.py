"""Network model: latency + jitter + NIC serialization + loss + partitions.

Message delivery time from node A to node B is::

    depart  = max(now, egress_free[host(A)]) + size / bandwidth
    arrive  = depart + one_way_latency(site(A), site(B)) * (1 + jitter)

The egress queue (`egress_free`) is what makes a leader's NIC a bottleneck
when it must replicate 4 KB entries to four followers (Figure 10b); the
latency term is the WAN cost (Figures 9a/9b/10c/10d).  The NIC belongs to
the *host* (`repro.sim.node.Host`): nodes sharing a host share its egress
queue.  With the default one-private-host-per-node placement this is the
original per-node NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.errors import UnknownNodeError
from repro.sim.node import payload_size_bytes
from repro.sim.rng import SplitRng
from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Simulator
    from repro.sim.node import Node


@dataclass
class NetworkConfig:
    """Knobs for the network model.

    bandwidth_bytes_per_sec: egress NIC rate per node.  The paper's instances
        have a 750 Mbps NIC; the default is scaled down 20x in line with the
        CPU scale model (see DESIGN.md) so saturation happens at simulable
        request rates while control traffic stays effectively free.
    site_bandwidth_bytes_per_sec: optional shared WAN-egress rate per *site*
        (a regional uplink all nodes in the site contend on).  `None` (the
        default) disables the shared link, preserving the single-group
        model where each node's NIC is the only serialization point.  The
        sharded experiments enable it so that co-locating many shard
        leaders in one region saturates that region's uplink (the Figure
        10b bottleneck reproduced at shard granularity).
    loss_rate: iid drop probability per message.
    fifo: per-(src,dst) in-order delivery.  Defaults to True: the paper's
        systems all speak TCP, which is FIFO per connection, and Mencius'
        skip inference additionally relies on it.  Set False to model an
        adversarial datagram network (the formal specs in `repro.specs`
        already cover arbitrary reordering by modelling messages as sets).
    """

    bandwidth_bytes_per_sec: float = 750e6 / 8 / 20.0
    site_bandwidth_bytes_per_sec: Optional[float] = None
    loss_rate: float = 0.0
    deliver_local_instantly: bool = False
    fifo: bool = True


class Network:
    """Delivers messages between registered nodes."""

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        rng: Optional[SplitRng] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self.rng_root = rng or SplitRng(0)
        self.rng = self.rng_root.stream("network")
        self._nodes: Dict[str, "Node"] = {}
        self._egress_free: Dict[str, int] = {}
        self._egress_key: Dict[str, str] = {}  # node name -> host NIC key
        self._site_egress_free: Dict[str, int] = {}
        self._last_arrival: Dict[Tuple[str, str], int] = {}
        # Resolved-route cache: (src, dst) -> (src_site, dst_site, local,
        # base one-way latency, local-hop delay).  Sites and the topology
        # are fixed after registration, so the per-send site lookups and
        # latency-table probes collapse to one dict hit.
        self._paths: Dict[Tuple[str, str], Tuple[str, str, bool, int, int]] = {}
        # Per-send constants, resolved once: the scheduler entry point and
        # the delivery callback (a bound method is re-created on every
        # attribute access otherwise — one allocation per send).
        self._schedule = sim.schedule
        self._deliver_cb = self._deliver
        # NIC serialization cost in microseconds per byte (the config is
        # never rewritten after construction).
        self._us_per_byte = 1_000_000 / self.config.bandwidth_bytes_per_sec
        self._blocked: Set[Tuple[str, str]] = set()
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # -- registration ------------------------------------------------------

    def register(self, node: "Node") -> None:
        self._nodes[node.name] = node
        host = getattr(node, "host", None)
        key = host.name if host is not None else node.name
        self._egress_key[node.name] = key
        self._egress_free.setdefault(key, 0)

    def node(self, name: str) -> "Node":
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    @property
    def node_names(self):
        return list(self._nodes)

    # -- fault injection ----------------------------------------------------

    def block(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Drop all traffic from src to dst (and back, by default)."""
        self._blocked.add((src, dst))
        if bidirectional:
            self._blocked.add((dst, src))

    def unblock(self, src: str, dst: str, bidirectional: bool = True) -> None:
        self._blocked.discard((src, dst))
        if bidirectional:
            self._blocked.discard((dst, src))

    def partition(self, group_a, group_b) -> None:
        """Cut every link between the two groups."""
        for a in group_a:
            for b in group_b:
                self.block(a, b)

    def heal(self) -> None:
        """Remove all partitions/blocks."""
        self._blocked.clear()

    def isolate(self, name: str) -> None:
        """Cut `name` off from every other node."""
        for other in self._nodes:
            if other != name:
                self.block(name, other)

    # -- delivery ------------------------------------------------------------

    def send(self, src: str, dst: str, message, size_bytes: Optional[int] = None) -> None:
        """Send `message` from node `src` to node `dst`.

        Messages to unknown destinations raise; messages across blocked links
        or hit by random loss are silently dropped (that is the point).
        """
        nodes = self._nodes
        if dst not in nodes:
            raise UnknownNodeError(dst)
        config = self.config
        self.messages_sent += 1
        pair = (src, dst)
        if self._blocked and pair in self._blocked:
            self.messages_dropped += 1
            return
        if config.loss_rate > 0 and self.rng.random() < config.loss_rate:
            self.messages_dropped += 1
            return

        # The memoized per-message size (protocols.messages) makes this a
        # cache read for every message past its first charging site.
        size = size_bytes if size_bytes is not None else payload_size_bytes(message)
        self.bytes_sent += size

        topology = self.topology
        path = self._paths.get(pair)
        if path is None:
            src_site = nodes[src].site
            dst_site = nodes[dst].site
            local = (src == dst
                     or (config.deliver_local_instantly and src_site == dst_site))
            base = 0 if local else topology.latency(src_site, dst_site)
            path = self._paths[pair] = (src_site, dst_site, local, base,
                                        topology.local_us)
        src_site, dst_site, local, base, local_us = path

        if local:
            self._schedule(local_us, self._deliver_cb, src, dst, message)
            return

        now = self.sim.now
        serialization = int(size * self._us_per_byte)
        nic = self._egress_key.get(src, src)
        egress_free = self._egress_free
        depart = max(now, egress_free.get(nic, 0)) + serialization
        egress_free[nic] = depart
        if config.site_bandwidth_bytes_per_sec is not None and src_site != dst_site:
            # The message also serializes through the site's shared uplink,
            # after it leaves the node's NIC.
            site_serialization = int(
                size / config.site_bandwidth_bytes_per_sec * 1_000_000)
            depart = max(depart, self._site_egress_free.get(src_site, 0)) + site_serialization
            self._site_egress_free[src_site] = depart

        jitter = topology.jitter_fraction
        # jitter * random() draws the exact value uniform(0, jitter) would
        # (same underlying random() call), minus the method overhead.
        factor = 1.0 + (jitter * self.rng.random() if jitter > 0 else 0.0)
        arrive = depart + int(base * factor)
        if config.fifo:
            last_arrival = self._last_arrival
            arrive = max(arrive, last_arrival.get(pair, arrive - 1) + 1)
            last_arrival[pair] = arrive
        self._schedule(arrive - now, self._deliver_cb, src, dst, message)

    def _deliver(self, src: str, dst: str, message) -> None:
        node = self._nodes.get(dst)
        if node is None or not node.alive:
            self.messages_dropped += 1
            return
        node._receive(src, message)

    def egress_backlog_us(self, name: str) -> int:
        """How far in the future the node's (host's) NIC is committed.
        Accepts a node name or a host name."""
        nic = self._egress_key.get(name, name)
        return max(0, self._egress_free.get(nic, 0) - self.sim.now)

    def link_blocked(self, src: str, dst: str) -> bool:
        """Whether traffic src -> dst is currently cut (partition/block).
        The mux consults this per inner message so coalescing preserves
        per-replica partition semantics."""
        return (src, dst) in self._blocked

    def site_egress_backlog_us(self, site: str) -> int:
        """How far in the future the site's shared uplink is committed."""
        return max(0, self._site_egress_free.get(site, 0) - self.sim.now)


def _estimate_size(message) -> int:
    """Default wire-size estimate for a message object.

    Messages may define `size_bytes()`; otherwise a small constant header is
    assumed (the CPU model's canonical fallback).  Protocol messages in
    `repro.protocols.messages` all implement `size_bytes` so the bandwidth
    model sees payload sizes.
    """
    return payload_size_bytes(message)
