"""JSONL export for a run's telemetry.

One line per record, each a JSON object with a `type` discriminator:

    {"type": "meta", ...}        run-level context (figure, seed, scale)
    {"type": "record", ...}      one completed client request
    {"type": "span", ...}        one reconstructed request-lifecycle span
    {"type": "gauge", ...}       one gauge series (name + [t, value] samples)
    {"type": "counter", ...}     one named event counter
    {"type": "profile", ...}     one profiler event-kind row

JSONL (not one big JSON document) so a partial file from an interrupted run
is still loadable line by line, and `jq`/pandas consume it directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


def dump_jsonl(path: str, *, meta: Optional[Dict[str, Any]] = None,
               records: Iterable = (), spans: Iterable = (),
               gauges: Optional[Dict[str, List]] = None,
               counters: Optional[Dict[str, int]] = None,
               profile: Iterable = ()) -> int:
    """Write one run's telemetry; returns the number of lines written."""
    lines = 0
    with open(path, "w", encoding="utf-8") as out:
        def emit(obj: Dict[str, Any]) -> None:
            nonlocal lines
            out.write(json.dumps(obj, separators=(",", ":"), default=str))
            out.write("\n")
            lines += 1

        if meta is not None:
            emit({"type": "meta", **meta})
        for record in records:
            emit({"type": "record", "client": record.client,
                  "site": record.site, "server": record.server,
                  "op": record.op.value, "start_us": record.start,
                  "end_us": record.end, "ok": record.ok,
                  "local_read": record.local_read})
        for span in spans:
            emit({"type": "span", **span.as_dict()})
        for name, samples in (gauges or {}).items():
            emit({"type": "gauge", "name": name,
                  "samples": [[t, v] for t, v in samples]})
        for name, count in (counters or {}).items():
            emit({"type": "counter", "name": name, "count": count})
        for row in profile:
            emit({"type": "profile", **row})
    return lines


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a telemetry file back into dicts (blank lines skipped)."""
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as src:
        for line in src:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
