"""`repro.obs`: request-lifecycle spans, time-series gauges, sim profiling.

Three legs, one façade:

* **Spans** — every client request carries a trace id; instrumented seams
  (session submit/admit/send, replica receive/append/commit/reply, shard
  redirects, 2PC) record phase timestamps into a shared ring-buffer
  `TraceLog`, and `SpanReconstructor`/`tail_budget` turn them into
  per-request latency budgets (`repro.obs.spans`).
* **Gauges** — a `GaugeSampler` on the sim event loop samples queue depths
  (CPU/NIC/mux/session/locks/commit-lag) into the `MetricsRecorder`
  (`repro.obs.gauges`).
* **Profiler** — an opt-in `SimProfiler` attributing the host's wall-clock
  to event kinds (`repro.obs.profiler`).

Everything is OFF by default: nodes carry `obs = None` and pay one branch
per instrumented point; the simulator pays one branch per event.  The
bench harness (`ExperimentSpec(obs=True)`, `repro.bench tail`, `--obs`)
builds an `Observability`, installs it on the fleet, and renders/exports
the results (`--metrics-out` JSONL via `repro.obs.sink`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.gauges import (DEFAULT_INTERVAL_US, GaugeSampler,
                              install_standard_gauges)
from repro.obs.profiler import SimProfiler
from repro.obs.sink import dump_jsonl, load_jsonl
from repro.obs.spans import (BUDGET_OF, PHASE_KIND, PHASE_LABELS, Span,
                             SpanReconstructor, tail_budget)
from repro.sim.trace import TraceLog

__all__ = [
    "BUDGET_OF", "DEFAULT_INTERVAL_US", "GaugeSampler", "ObsConfig",
    "Observability", "PHASE_KIND", "PHASE_LABELS", "SimProfiler", "Span",
    "SpanReconstructor", "dump_jsonl", "install_standard_gauges",
    "load_jsonl", "tail_budget",
]


@dataclass(frozen=True)
class ObsConfig:
    """Knobs for one run's observability."""

    #: Ring-buffer capacity of the span log, in phase records (a request
    #: produces ~10; the ring keeps the newest — the interesting — end).
    span_capacity: int = 2_000_000
    #: Simulated time between gauge samples.
    gauge_interval_us: int = DEFAULT_INTERVAL_US
    #: Attach the wall-clock profiler to the simulator.
    profile: bool = True


class Observability:
    """One run's telemetry: span log + gauge sampler + profiler."""

    def __init__(self, sim, metrics, config: Optional[ObsConfig] = None) -> None:
        self.sim = sim
        self.metrics = metrics
        self.config = config or ObsConfig()
        self.span_log = TraceLog(enabled=True,
                                 capacity=self.config.span_capacity,
                                 ring=True)
        self.sampler = GaugeSampler(sim, metrics,
                                    interval_us=self.config.gauge_interval_us)
        self.profiler: Optional[SimProfiler] = None
        if self.config.profile:
            self.profiler = SimProfiler().attach(sim)

    # -- recording (the hot path; nodes call this via `Node.obs_phase`) ------

    def phase(self, time: int, node: str, trace: str, phase: str,
              **detail) -> None:
        self.span_log.record(time, node, PHASE_KIND,
                             trace=trace, phase=phase, **detail)

    # -- wiring --------------------------------------------------------------

    def install(self, nodes) -> None:
        """Point a fleet's `Node.obs` at this collector."""
        for node in nodes:
            node.obs = self

    # -- analysis ------------------------------------------------------------

    def reconstruct(self) -> SpanReconstructor:
        return SpanReconstructor(self.span_log)

    def tail_budget(self, pcts=(50.0, 99.0, 99.9)):
        return tail_budget(self.reconstruct().spans(), pcts)

    def dump(self, path: str, meta: Optional[dict] = None,
             include_records: bool = True) -> int:
        """Export the run's telemetry as JSONL; returns lines written."""
        return dump_jsonl(
            path,
            meta=meta,
            records=self.metrics.records if include_records else (),
            spans=self.reconstruct().spans(complete_only=False),
            gauges=self.metrics.gauges,
            counters=self.metrics.counters,
            profile=self.profiler.report() if self.profiler else (),
        )
