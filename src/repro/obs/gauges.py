"""Time-series gauges: cadence-driven sampling on the sim event loop.

A `GaugeSampler` owns a list of named zero-argument probes and a sampling
cadence.  Every `interval_us` of simulated time it reads each probe and
appends `(now, value)` to the `MetricsRecorder`'s gauge series — the same
recorder the request records and counters live in, so one object carries
the whole run's telemetry and `MetricsRecorder.merge` aggregates sharded
deployments' series side by side.

The standard cluster gauges (`install_standard_gauges`) are the queues the
latency budget drains through: host CPU backlog, NIC egress backlog, mux
buffer occupancy, session window/submit-queue occupancy, KVStore lock-table
size, and per-follower commit-index lag.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.units import ms

#: Default sampling cadence (simulated time between samples).
DEFAULT_INTERVAL_US = ms(50)


class GaugeSampler:
    """Samples named probes on a fixed simulated-time cadence."""

    def __init__(self, sim, metrics, interval_us: int = DEFAULT_INTERVAL_US) -> None:
        self.sim = sim
        self.metrics = metrics
        self.interval_us = max(1, int(interval_us))
        self.sources: List[Tuple[str, Callable[[], float]]] = []
        self.samples_taken = 0
        self._stop_at: Optional[int] = None
        self._started = False

    def add(self, name: str, probe: Callable[[], float]) -> None:
        self.sources.append((name, probe))

    def start(self, stop_at: Optional[int] = None) -> None:
        """Begin sampling; `stop_at` bounds the self-rescheduling tick so
        a bounded `sim.run(until=...)` horizon is not kept alive forever
        (None = sample as long as the sim keeps being run)."""
        if self._started:
            return
        self._started = True
        self._stop_at = stop_at
        self.sim.schedule(self.interval_us, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        for name, probe in self.sources:
            self.metrics.gauge(name, now, float(probe()))
        self.samples_taken += 1
        if self._stop_at is None or now + self.interval_us <= self._stop_at:
            self.sim.schedule(self.interval_us, self._tick)


def install_standard_gauges(sampler: GaugeSampler, *, replicas=(),
                            clients=(), muxes=(), network=None,
                            group: str = "") -> None:
    """Wire the canonical queue-depth probes for one replica group and its
    client fleet.  `group` prefixes the series names so sharded deployments
    can install one set per group without collisions."""
    prefix = f"{group}." if group else ""
    replicas = list(replicas)
    clients = list(clients)

    seen_hosts = set()
    for replica in replicas:
        host = replica.host
        if id(host) in seen_hosts:
            continue
        seen_hosts.add(id(host))
        sampler.add(f"{prefix}cpu_backlog_us.{host.name}", host.cpu_backlog_us)
    if network is not None:
        for replica in replicas:
            sampler.add(f"{prefix}nic_backlog_us.{replica.host.name}",
                        lambda name=replica.host.name: network.egress_backlog_us(name))
    for mux in muxes:
        sampler.add(f"{prefix}mux_buffered.{mux.host.name}",
                    lambda m=mux: sum(len(b) for b in m._buffers.values()))
    if clients:
        sampler.add(f"{prefix}session_in_flight",
                    lambda cs=clients: sum(c.in_flight_count for c in cs))
        sampler.add(f"{prefix}session_submit_queue",
                    lambda cs=clients: sum(c.queued_count for c in cs))
    for replica in replicas:
        sampler.add(f"{prefix}lock_table.{replica.name}",
                    lambda r=replica: r.store.lock_count)

    # Per-follower commit-index lag: how far each replica's commit frontier
    # trails the group's current maximum (leader-agnostic, so it stays
    # meaningful across elections).
    with_commit = [r for r in replicas if hasattr(r, "commit_index")]
    for replica in with_commit:
        def lag(r=replica, group=with_commit):
            frontier = max(x.commit_index for x in group)
            return max(0, frontier - r.commit_index)
        sampler.add(f"{prefix}commit_lag.{replica.name}", lag)
