"""Request-lifecycle spans.

A span is the ordered list of phase timestamps one client request (or one
cross-shard transaction) accumulated on its way through the system:

    submit -> admit -> send -> server_recv -> [forward -> leader_recv ->]
    append -> commit -> reply -> complete

plus the detour phases a request may pick up (`reject` + re-`send` on a
leaderless backoff, `redirect` on a shard bounce, `txn_*` on the 2PC path).
Every phase record names the span it belongs to (`Command.trace_id`, which
the session derives from its request ids and the transaction coordinator
stamps into its child commands), so a retried, redirected, or
leader-crash-survived request still folds into ONE span.

The timing model is interval attribution: the duration charged to a phase
is the gap from its record to the NEXT record of the same span (the last
record gets zero).  That makes per-phase durations sum to the end-to-end
latency *exactly* — the property `tail_budget` reports are built on — at
the cost of linearizing concurrent branches (a 2PC fan-out is attributed
along record order, a critical-path approximation; see DESIGN.md §9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.stats import percentile
from repro.sim.trace import TraceRecord

#: Record kind used for span phase records inside a TraceLog.
PHASE_KIND = "phase"

#: Human explanation of the interval *starting* at each phase record.
PHASE_LABELS: Dict[str, str] = {
    "submit": "queueing: submit queue, waiting for a window slot",
    "admit": "admitted to the window, building the request",
    "send": "request on the wire + server CPU queue",
    "reject": "rejection backoff before the retry",
    "redirect": "shard redirect hop",
    "server_recv": "server handling before append/forward",
    "forward": "follower forward buffer + hop to leader",
    "leader_recv": "leader handling the forwarded command",
    "append": "replication: log append to quorum commit",
    "commit": "committed, applying to the state machine",
    "reply": "reply on the wire back to the client",
    "complete": "client matched the reply (span end)",
    "txn_begin": "transaction admitted at the coordinator",
    "txn_prepare": "2PC prepare round (locks + votes)",
    "txn_decide": "2PC decision replicated in the home shard",
    "txn_commit": "2PC phase 2: installing staged writes",
    "txn_abort": "2PC phase 2: dropping staged writes",
}

#: Budget bucket each phase's interval is charged to.
BUDGET_OF: Dict[str, str] = {
    "submit": "queueing",
    "admit": "queueing",
    "send": "transport",
    "reject": "retry",
    "redirect": "redirect",
    "server_recv": "handling",
    "forward": "forwarding",
    "leader_recv": "handling",
    "append": "replication",
    "commit": "apply",
    "reply": "transport",
    "txn_begin": "handling",
    "txn_prepare": "replication",
    "txn_decide": "replication",
    "txn_commit": "apply",
    "txn_abort": "apply",
}


@dataclass
class Span:
    """One request's phase timeline, in record order."""

    trace: str
    #: (time_us, phase, node) tuples in the order they were recorded.
    events: List[Tuple[int, str, str]] = field(default_factory=list)

    @property
    def start(self) -> int:
        return self.events[0][0]

    @property
    def end(self) -> int:
        return self.events[-1][0]

    @property
    def latency_us(self) -> int:
        return self.end - self.start

    @property
    def phases(self) -> List[str]:
        return [phase for _, phase, _ in self.events]

    @property
    def is_complete(self) -> bool:
        return (bool(self.events) and self.events[0][1] == "submit"
                and self.events[-1][1] == "complete")

    @property
    def monotonic(self) -> bool:
        times = [t for t, _, _ in self.events]
        return all(a <= b for a, b in zip(times, times[1:]))

    @property
    def attempts(self) -> int:
        return sum(1 for _, phase, _ in self.events if phase == "send")

    def phase_durations(self) -> Dict[str, int]:
        """Microseconds charged to each phase; repeated phases (retries)
        accumulate.  Sums to `latency_us` exactly by construction."""
        durations: Dict[str, int] = {}
        for (t0, phase, _), (t1, _, _) in zip(self.events, self.events[1:]):
            durations[phase] = durations.get(phase, 0) + (t1 - t0)
        return durations

    def budget(self) -> Dict[str, int]:
        """Phase durations rolled up into budget buckets (queueing /
        transport / replication / apply / retry / ...)."""
        buckets: Dict[str, int] = {}
        for phase, us in self.phase_durations().items():
            bucket = BUDGET_OF.get(phase, "other")
            buckets[bucket] = buckets.get(bucket, 0) + us
        return buckets

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace,
            "start_us": self.start,
            "end_us": self.end,
            "latency_us": self.latency_us,
            "attempts": self.attempts,
            "complete": self.is_complete,
            "events": [{"t": t, "phase": p, "node": n}
                       for t, p, n in self.events],
            "phases_us": self.phase_durations(),
            "budget_us": self.budget(),
        }


class SpanReconstructor:
    """Joins phase `TraceRecord`s into per-request `Span`s."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        self._spans: Dict[str, Span] = {}
        for rec in records:
            if rec.kind != PHASE_KIND:
                continue
            trace = rec.detail.get("trace")
            phase = rec.detail.get("phase")
            if trace is None or phase is None:
                continue
            span = self._spans.get(trace)
            if span is None:
                span = self._spans[trace] = Span(trace)
            span.events.append((rec.time, phase, rec.node))

    def span(self, trace: str) -> Optional[Span]:
        return self._spans.get(trace)

    def spans(self, complete_only: bool = True) -> List[Span]:
        """All reconstructed spans, in span-start order.  With
        `complete_only` (default) a span must run submit -> complete;
        truncated spans (run ended mid-flight, ring buffer evicted the
        head) are left out so latency statistics are not skewed."""
        spans = [s for s in self._spans.values()
                 if s.events and (not complete_only or s.is_complete)]
        spans.sort(key=lambda s: (s.start, s.trace))
        return spans

    def incomplete(self) -> List[Span]:
        return [s for s in self._spans.values() if s.events and not s.is_complete]

    def __len__(self) -> int:
        return len(self._spans)


def _pct_name(pct: float) -> str:
    text = f"{pct:g}".replace(".", "")
    return f"p{text}"


def tail_budget(spans: Sequence[Span],
                pcts: Sequence[float] = (50.0, 99.0, 99.9)) -> Dict[str, Dict[str, Any]]:
    """Attribute tail latency to phases: for each percentile, pick THE
    request at that rank of the end-to-end latency distribution and report
    its per-phase breakdown.  Reporting an exemplar request (not a
    per-phase percentile, which mixes different requests) keeps the
    invariant that the reported phases sum to the reported latency.
    """
    complete = [s for s in spans if s.is_complete]
    if not complete:
        return {}
    by_latency = sorted(complete, key=lambda s: (s.latency_us, s.trace))
    latencies = [s.latency_us for s in by_latency]
    report: Dict[str, Dict[str, Any]] = {}
    for pct in pcts:
        target = percentile(latencies, pct)
        exemplar = by_latency[latencies.index(target)]
        report[_pct_name(pct)] = {
            "pct": pct,
            "trace": exemplar.trace,
            "latency_us": exemplar.latency_us,
            "attempts": exemplar.attempts,
            "phases_us": exemplar.phase_durations(),
            "budget_us": exemplar.budget(),
        }
    return report
