"""Simulator profiler: wall-clock attribution per event kind.

The sim-speed refactor on the ROADMAP needs a measurement instrument before
it can start: which handlers burn the host machine's wall-clock?  The
`SimProfiler` hooks the one dispatch point every event passes through
(`Simulator.run`) and, when attached, times each callback with
`time.perf_counter`, bucketing by an *event kind* derived from the callback:

* `Node._handle` / `deliver` dispatches are split per message type
  (`handle:AppendEntries` vs `handle:ClientRequest` — the split the
  refactor needs, since one is the replication fast path and the other the
  client path);
* `Timer._fire` is split by the armed callback's qualname;
* everything else is keyed by the callback's own qualname.

Cost model: detached (the default) the simulator pays ONE attribute load +
branch per event.  Attached, each event pays two `perf_counter` calls and
a dict update (~100-200 ns — noticeable, which is why it is opt-in), and
the measured run is no longer wall-clock comparable to an unprofiled one;
simulated time and event order are unaffected either way.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class SimProfiler:
    """Opt-in per-event-kind wall-clock profiler for `Simulator.run`."""

    def __init__(self, mux_detail: bool = False) -> None:
        # kind -> [count, wall_seconds]
        self.by_kind: Dict[str, List[float]] = {}
        # node name -> [count, wall_seconds] (for callbacks bound to nodes)
        self.by_node: Dict[str, List[float]] = {}
        self.events = 0
        self.wall_s = 0.0
        # Opt-in: the mux times each inner message it unpacks from a
        # `HostEnvelope` and reports it via `add_inner`, splitting the
        # opaque `handle:HostEnvelope` bucket per inner payload type.
        self.mux_detail = mux_detail

    # -- attachment ----------------------------------------------------------

    def attach(self, sim) -> "SimProfiler":
        sim.profiler = self
        return self

    def detach(self, sim) -> None:
        if getattr(sim, "profiler", None) is self:
            sim.profiler = None

    # -- the dispatch hook ---------------------------------------------------

    def dispatch(self, event) -> None:
        """Run one event's callback under timing (called by Simulator.run
        in place of the plain dispatch when attached)."""
        # Classify BEFORE running: Timer._fire consumes the armed callback,
        # so the timer kind is only readable pre-dispatch.
        kind = self._kind(event)
        t0 = time.perf_counter()
        try:
            event.callback(*event.args)
        finally:
            dt = time.perf_counter() - t0
            self.events += 1
            self.wall_s += dt
            cell = self.by_kind.get(kind)
            if cell is None:
                cell = self.by_kind[kind] = [0, 0.0]
            cell[0] += 1
            cell[1] += dt
            node = self._node(event.callback)
            if node is not None:
                cell = self.by_node.get(node)
                if cell is None:
                    cell = self.by_node[node] = [0, 0.0]
                cell[0] += 1
                cell[1] += dt

    def add_inner(self, kind: str, dt: float) -> None:
        """Sub-attribute wall time already counted under a parent dispatch
        (the mux's per-inner-type split of `handle:HostEnvelope`).  Only
        the kind table is touched — `events`/`wall_s` belong to the parent
        dispatch, so sub-rows OVERLAP their parent in the report (their
        shares do not add to the total; they decompose the parent's row).
        """
        cell = self.by_kind.get(kind)
        if cell is None:
            cell = self.by_kind[kind] = [0, 0.0]
        cell[0] += 1
        cell[1] += dt

    @staticmethod
    def _kind(event) -> str:
        callback = event.callback
        name = getattr(callback, "__qualname__", None) or repr(callback)
        args = event.args
        if name.endswith("._handle") and len(args) >= 2:
            return f"handle:{type(args[1]).__name__}"
        if name.endswith("._deliver") and len(args) >= 3:
            return f"deliver:{type(args[2]).__name__}"
        if name.endswith("._fire"):
            # Timer._fire is argless: the armed callback lives on the timer
            # until the moment it runs (which is why `dispatch` classifies
            # before invoking).
            timer = getattr(callback, "__self__", None)
            inner = getattr(timer, "_callback", None)
            if inner is None and args:
                inner = args[0]
            if inner is not None:
                inner_name = (getattr(inner, "__qualname__", None)
                              or type(inner).__name__)
                return f"timer:{inner_name}"
            if timer is not None and getattr(timer, "name", None):
                return f"timer:{timer.name}"
        return name

    @staticmethod
    def _node(callback) -> Optional[str]:
        owner = getattr(callback, "__self__", None)
        if owner is None:
            return None
        node = getattr(owner, "node", owner)  # Timer._fire -> its node
        return getattr(node, "name", None)

    # -- reporting -----------------------------------------------------------

    def report(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Event kinds ranked by total wall-clock, most expensive first."""
        ranked = sorted(self.by_kind.items(),
                        key=lambda kv: (-kv[1][1], kv[0]))
        if top is not None:
            ranked = ranked[:top]
        total = self.wall_s or 1.0
        return [{"kind": kind, "count": int(count), "wall_s": wall,
                 "share": wall / total}
                for kind, (count, wall) in ranked]

    def node_report(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        ranked = sorted(self.by_node.items(),
                        key=lambda kv: (-kv[1][1], kv[0]))
        if top is not None:
            ranked = ranked[:top]
        return [{"node": node, "count": int(count), "wall_s": wall}
                for node, (count, wall) in ranked]

    def render(self, top: int = 12) -> str:
        lines = [f"SimProfiler: {self.events} events, "
                 f"{self.wall_s * 1e3:.1f} ms wall-clock in handlers"]
        for row in self.report(top):
            lines.append(
                f"  {row['share'] * 100:5.1f}%  {row['wall_s'] * 1e3:8.2f} ms  "
                f"{row['count']:>8}x  {row['kind']}")
        return "\n".join(lines)
