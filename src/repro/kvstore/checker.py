"""History recording and safety checks.

The checker consumes per-replica apply streams and per-client operation
histories and verifies the invariants the protocols promise:

* **committed-prefix agreement** — any two replicas' applied sequences agree
  on the common prefix (State Machine Safety);
* **monotonic reads per client** — a client never observes a key going back
  in version;
* **lease-read freshness** — a local (lease) read returns a value at least as
  new as every write committed before the read started (the PQL guarantee);
* **strict serializability of committed transactions**
  (`check_strict_serializability`) — the multi-key contract of the 2PC
  layer in `repro.shard.txn`, checked Elle-style over the per-key version
  orders the stores record.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocols.types import Command, OpType


@dataclass(frozen=True)
class HistoryEvent:
    """One completed client operation."""

    client: str
    seq: int
    op: OpType
    key: str
    value: Optional[str]
    start: int
    end: int
    server: str
    local_read: bool = False


class HistoryChecker:
    """Accumulates applies + client events, then checks invariants."""

    def __init__(self) -> None:
        self.applied: Dict[str, List[Tuple[int, Command]]] = {}
        self.events: List[HistoryEvent] = []
        self._write_commit_times: Dict[Tuple[str, str], int] = {}

    # -- recording ----------------------------------------------------------

    def record_apply(self, replica: str, index: int, command: Command) -> None:
        self.applied.setdefault(replica, []).append((index, command))

    def record_event(self, event: HistoryEvent) -> None:
        self.events.append(event)
        if event.op is OpType.PUT:
            self._write_commit_times[(event.key, event.value or "")] = event.end

    # -- checks ---------------------------------------------------------------

    def check_prefix_agreement(self) -> List[str]:
        """Return violation descriptions (empty list == safe)."""
        violations = []
        replicas = list(self.applied)
        for i, a in enumerate(replicas):
            for b in replicas[i + 1:]:
                seq_a = dict(self.applied[a])
                seq_b = dict(self.applied[b])
                for index in set(seq_a) & set(seq_b):
                    ca, cb = seq_a[index], seq_b[index]
                    if (ca.client_id, ca.seq, ca.op, ca.key, ca.value) != (
                        cb.client_id,
                        cb.seq,
                        cb.op,
                        cb.key,
                        cb.value,
                    ):
                        violations.append(
                            f"replicas {a} and {b} disagree at index {index}: "
                            f"{ca} vs {cb}"
                        )
        return violations

    def check_monotonic_reads(self) -> List[str]:
        """Per client per key, observed written values never regress to an
        older version across NON-OVERLAPPING reads, assuming distinct
        values per write (the workload generator guarantees unique values).

        Only reads ordered in real time constrain each other: a pipelined
        session keeps several reads of one key in flight at once, and two
        *concurrent* reads may legitimately linearize in either order — so
        a read is compared against the newest version observed by reads
        that COMPLETED before it STARTED.  (Depth-1 clients never overlap
        their own operations, so for them this is the old check exactly.)
        """
        violations = []
        write_order: Dict[str, Dict[str, int]] = {}
        for replica_applies in self.applied.values():
            for index, command in sorted(replica_applies):
                if command.op is OpType.PUT:
                    order = write_order.setdefault(command.key, {})
                    value = command.value or ""
                    if value not in order:
                        order[value] = len(order)
            break  # one replica's order suffices given prefix agreement

        # Per (client, key): completed reads as (end, running-max rank),
        # appended in end order so a bisect by start gives the newest
        # version any real-time-earlier read observed.
        seen: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        for event in sorted(self.events, key=lambda e: (e.client, e.end)):
            if event.op is not OpType.GET or event.value is None:
                continue
            order = write_order.get(event.key, {})
            if event.value not in order:
                continue
            rank = order[event.value]
            key = (event.client, event.key)
            history = seen.setdefault(key, [])
            index = bisect.bisect_right(history, (event.start, float("inf")))
            if index > 0 and rank < history[index - 1][1]:
                violations.append(
                    f"client {event.client} read {event.key} going backwards: "
                    f"rank {rank} after {history[index - 1][1]}"
                )
            running = max(rank, history[-1][1] if history else -1)
            history.append((event.end, running))
        return violations

    def check_lease_read_freshness(self) -> List[str]:
        """A local read starting after a write completed must not return a
        value older than that write (per key, unique values assumed)."""
        violations = []
        completed_writes: List[HistoryEvent] = [
            event for event in self.events if event.op is OpType.PUT
        ]
        # Build, per key, the value order from one replica's applies.
        write_rank: Dict[str, Dict[str, int]] = {}
        for replica_applies in self.applied.values():
            for index, command in sorted(replica_applies):
                if command.op is OpType.PUT:
                    rank = write_rank.setdefault(command.key, {})
                    rank.setdefault(command.value or "", len(rank))
            break
        for read in self.events:
            if read.op is not OpType.GET or not read.local_read:
                continue
            ranks = write_rank.get(read.key, {})
            read_rank = ranks.get(read.value or "", -1)
            for write in completed_writes:
                if write.key != read.key or write.end > read.start:
                    continue
                write_rank_value = ranks.get(write.value or "")
                if write_rank_value is not None and read_rank < write_rank_value:
                    violations.append(
                        f"stale lease read by {read.client}: key={read.key} "
                        f"returned rank {read_rank} but write rank "
                        f"{write_rank_value} completed before the read began"
                    )
        return violations

    def check_all(self) -> List[str]:
        return (
            self.check_prefix_agreement()
            + self.check_monotonic_reads()
            + self.check_lease_read_freshness()
        )


# ---------------------------------------------------------------------------
# Strict serializability of multi-key transactions (repro.shard.txn)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TxnEvent:
    """One committed (client-acknowledged) transaction.

    `ops` is a tuple of ``(op, key, value)``: for "put" the value written,
    for "get" the value observed at the 2PC serialization point.  `start`
    and `end` are the client-side issue and acknowledgement times — the
    real-time interval the serialization point must fall inside."""

    txn_id: str
    start: int
    end: int
    ops: Tuple[Tuple[str, str, Optional[str]], ...]


def check_strict_serializability(events: Sequence[TxnEvent],
                                 write_orders: Dict[str, List[str]],
                                 ) -> List[str]:
    """Verify the committed transactions admit a serial order that (a)
    explains every read and write and (b) respects real time.

    General serializability checking is NP-hard, but this workload gives
    two anchors that make it polynomial (the same ones Elle exploits):
    every written value is unique, and `write_orders` — the per-key install
    order recorded by the owning group's replicated store — is the actual
    per-key version order.  From those we build the classic precedence
    graph over committed transactions:

    * ww: consecutive installed writes of a key order their writers;
    * wr: a read of value v is ordered after v's writer;
    * rw: a read of version i is ordered before the writer of version i+1
      (a read of a missing key before the key's first writer);
    * rt: T1 precedes T2 whenever T1's ack returned before T2 was issued.

    A cycle in the union is a violation; acyclic means a topological order
    exists that is serial, explains the history, and embeds real time —
    i.e. the history is strictly serializable.  Transactions that committed
    but were never acknowledged (client still in flight) have no event:
    their writes hold positions in the version order but impose no
    constraints, so the check is sound (never a false violation) and
    complete over the acknowledged history.

    Also flags directly observable faults: a value installed twice (a
    retry that re-executed) and a read of a value no store ever installed
    (a dirty or invented read).
    """
    violations: List[str] = []
    txns: Dict[str, TxnEvent] = {event.txn_id: event for event in events}

    writer_of: Dict[Tuple[str, str], str] = {}
    for event in events:
        for op, key, value in event.ops:
            if op == "put" and value is not None:
                writer_of[(key, value)] = event.txn_id

    edges: Dict[str, set] = {txn_id: set() for txn_id in txns}

    def add_edge(a: Optional[str], b: Optional[str]) -> None:
        if a is not None and b is not None and a != b:
            edges[a].add(b)

    index_of: Dict[Tuple[str, str], int] = {}
    for key, order in write_orders.items():
        seen: Dict[str, int] = {}
        previous = None
        for position, value in enumerate(order):
            if value in seen:
                violations.append(
                    f"value {value!r} installed twice at key {key!r} "
                    f"(positions {seen[value]} and {position}): an "
                    f"acknowledged write re-executed")
            seen[value] = position
            index_of[(key, value)] = position
            writer = writer_of.get((key, value))
            if writer is not None:
                add_edge(previous, writer)   # ww (transitively via the chain)
                previous = writer

    def next_writer(key: str, after: int) -> Optional[str]:
        order = write_orders.get(key, [])
        for value in order[after + 1:]:
            writer = writer_of.get((key, value))
            if writer is not None:
                return writer
        return None

    for event in events:
        for op, key, value in event.ops:
            if op != "get":
                continue
            if value is None:
                add_edge(event.txn_id, next_writer(key, -1))  # rw from "missing"
                continue
            position = index_of.get((key, value))
            if position is None:
                violations.append(
                    f"txn {event.txn_id} read {value!r} at key {key!r}, a "
                    f"value no store ever installed (dirty or invented read)")
                continue
            add_edge(writer_of.get((key, value)), event.txn_id)   # wr
            add_edge(event.txn_id, next_writer(key, position))    # rw

    if violations:
        return violations

    # Topological elimination over dep edges + implicit real-time edges:
    # a transaction is removable once all its graph predecessors are gone
    # AND no remaining transaction finished before it started.
    indegree = {txn_id: 0 for txn_id in txns}
    for a, outs in edges.items():
        for b in outs:
            indegree[b] += 1
    remaining = set(txns)
    end_heap = [(txns[t].end, t) for t in remaining]
    heapq.heapify(end_heap)

    def min_ends() -> List[Tuple[int, str]]:
        """The two smallest (end, txn) entries still remaining.  Entries
        whose transaction was already eliminated are dropped for good —
        `remaining` only shrinks — keeping the sweep near-linear."""
        found: List[Tuple[int, str]] = []
        while end_heap and len(found) < 2:
            entry = heapq.heappop(end_heap)
            if entry[1] in remaining:
                found.append(entry)
        for entry in found:
            heapq.heappush(end_heap, entry)
        return found

    while remaining:
        smallest = min_ends()

        def rt_blocked(txn_id: str) -> bool:
            for end, other in smallest:
                if other != txn_id:
                    return end < txns[txn_id].start
            return False

        ready = [t for t in remaining if indegree[t] == 0 and not rt_blocked(t)]
        if not ready:
            sample = sorted(remaining)[:6]
            violations.append(
                f"dependency/real-time cycle among committed transactions "
                f"(no strict-serial order exists); {len(remaining)} involved, "
                f"e.g. {sample}")
            return violations
        for txn_id in ready:
            remaining.discard(txn_id)
            for successor in edges[txn_id]:
                indegree[successor] -= 1
    return violations
