"""History recording and safety checks.

The checker consumes per-replica apply streams and per-client operation
histories and verifies the invariants the protocols promise:

* **committed-prefix agreement** — any two replicas' applied sequences agree
  on the common prefix (State Machine Safety);
* **monotonic reads per client** — a client never observes a key going back
  in version;
* **lease-read freshness** — a local (lease) read returns a value at least as
  new as every write committed before the read started (the PQL guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.protocols.types import Command, OpType


@dataclass(frozen=True)
class HistoryEvent:
    """One completed client operation."""

    client: str
    seq: int
    op: OpType
    key: str
    value: Optional[str]
    start: int
    end: int
    server: str
    local_read: bool = False


class HistoryChecker:
    """Accumulates applies + client events, then checks invariants."""

    def __init__(self) -> None:
        self.applied: Dict[str, List[Tuple[int, Command]]] = {}
        self.events: List[HistoryEvent] = []
        self._write_commit_times: Dict[Tuple[str, str], int] = {}

    # -- recording ----------------------------------------------------------

    def record_apply(self, replica: str, index: int, command: Command) -> None:
        self.applied.setdefault(replica, []).append((index, command))

    def record_event(self, event: HistoryEvent) -> None:
        self.events.append(event)
        if event.op is OpType.PUT:
            self._write_commit_times[(event.key, event.value or "")] = event.end

    # -- checks ---------------------------------------------------------------

    def check_prefix_agreement(self) -> List[str]:
        """Return violation descriptions (empty list == safe)."""
        violations = []
        replicas = list(self.applied)
        for i, a in enumerate(replicas):
            for b in replicas[i + 1:]:
                seq_a = dict(self.applied[a])
                seq_b = dict(self.applied[b])
                for index in set(seq_a) & set(seq_b):
                    ca, cb = seq_a[index], seq_b[index]
                    if (ca.client_id, ca.seq, ca.op, ca.key, ca.value) != (
                        cb.client_id,
                        cb.seq,
                        cb.op,
                        cb.key,
                        cb.value,
                    ):
                        violations.append(
                            f"replicas {a} and {b} disagree at index {index}: "
                            f"{ca} vs {cb}"
                        )
        return violations

    def check_monotonic_reads(self) -> List[str]:
        """Per client per key, observed written values never regress to an
        older version, assuming distinct values per write (the workload
        generator guarantees unique values)."""
        violations = []
        write_order: Dict[str, Dict[str, int]] = {}
        for replica_applies in self.applied.values():
            for index, command in sorted(replica_applies):
                if command.op is OpType.PUT:
                    order = write_order.setdefault(command.key, {})
                    value = command.value or ""
                    if value not in order:
                        order[value] = len(order)
            break  # one replica's order suffices given prefix agreement

        seen: Dict[Tuple[str, str], int] = {}
        for event in sorted(self.events, key=lambda e: (e.client, e.end)):
            if event.op is not OpType.GET or event.value is None:
                continue
            order = write_order.get(event.key, {})
            if event.value not in order:
                continue
            rank = order[event.value]
            key = (event.client, event.key)
            if key in seen and rank < seen[key]:
                violations.append(
                    f"client {event.client} read {event.key} going backwards: "
                    f"rank {rank} after {seen[key]}"
                )
            seen[key] = max(seen.get(key, -1), rank)
        return violations

    def check_lease_read_freshness(self) -> List[str]:
        """A local read starting after a write completed must not return a
        value older than that write (per key, unique values assumed)."""
        violations = []
        completed_writes: List[HistoryEvent] = [
            event for event in self.events if event.op is OpType.PUT
        ]
        # Build, per key, the value order from one replica's applies.
        write_rank: Dict[str, Dict[str, int]] = {}
        for replica_applies in self.applied.values():
            for index, command in sorted(replica_applies):
                if command.op is OpType.PUT:
                    rank = write_rank.setdefault(command.key, {})
                    rank.setdefault(command.value or "", len(rank))
            break
        for read in self.events:
            if read.op is not OpType.GET or not read.local_read:
                continue
            ranks = write_rank.get(read.key, {})
            read_rank = ranks.get(read.value or "", -1)
            for write in completed_writes:
                if write.key != read.key or write.end > read.start:
                    continue
                write_rank_value = ranks.get(write.value or "")
                if write_rank_value is not None and read_rank < write_rank_value:
                    violations.append(
                        f"stale lease read by {read.client}: key={read.key} "
                        f"returned rank {read_rank} but write rank "
                        f"{write_rank_value} completed before the read began"
                    )
        return violations

    def check_all(self) -> List[str]:
        return (
            self.check_prefix_agreement()
            + self.check_monotonic_reads()
            + self.check_lease_read_freshness()
        )
