"""Replicated key-value state machine and safety checkers."""

from repro.kvstore.store import KVStore
from repro.kvstore.checker import HistoryChecker, HistoryEvent

__all__ = ["HistoryChecker", "HistoryEvent", "KVStore"]
