"""The replicated application: a key-value store.

Exactly the paper's workload target: `Put(k, v)` / `Get(k)` over ~100 K
records.  Commands are applied exactly once per (client, seq) pair so that
retries and replays during leader changes stay idempotent.  Pipelined
sessions keep up to `depth` commands in flight per client, so the
at-most-once state is a **sliding window** per client (`DedupSession`):
a window of cached results keyed by seq, plus a low-water mark — stamped
by the client into every command (`Command.acked_low_water`) — below
which slots are acked and safe to evict.  Eviction is NOT by distance
from the newest seq: a dropped reply can leave the oldest in-flight seq
retrying long after far newer seqs applied, and its slot must survive
until the client itself acks it (see DESIGN.md §8).

Sharded deployments add two concerns:

* a **key filter** restricting the store to the keys its group owns (a
  safety net behind the router and the replica ownership guard);
* **range migration** (`MIGRATE_OUT` / `MIGRATE_IN` commands) for live
  resharding: a donor exports a hash range — the records *and* the
  dedup-window slots whose key lies in the range — and a recipient
  imports it (slots union, low-water marks join by max), both through the
  committed log so every replica of a group transitions at the same log
  position.

Cross-shard transactions (`repro.shard.txn`) add a third: the store is one
**participant** in two-phase commit, and every 2PC step is itself a
committed command, so the lock table and staged writes below are rebuilt
identically on every replica of the group (and by crash-recovery replay):

* `TXN_PREPARE` locks the keys, stages the writes, performs the reads, and
  votes — conflicts are resolved **wait-die** (an older transaction's
  prepare is told to wait and retried by its coordinator while it keeps
  its other locks; a younger one "dies" and is retried from scratch with
  its original priority, so it eventually becomes the oldest and wins);
* `TXN_COMMIT` installs the staged writes and releases the locks;
  `TXN_ABORT` drops them; both are idempotent;
* `TXN_DECIDE` records the coordinator's decision in the transaction's
  *home* shard — the first decision recorded wins, and the apply result
  always returns the winner, which is how a recovered coordinator's
  presumed-abort race against its own pre-crash decision stays safe;
* `TXN_RECOVER` fences a coordinator incarnation (stale prepares from the
  crashed incarnation are refused, so they cannot leave orphan locks) and
  reports the prepared transactions and logged decisions it must resolve.

Ordering matters: the duplicate check runs **before** the ownership check.
A retried command whose original already applied, but whose key has since
migrated away, must return the cached result — rejecting it would make the
client re-route and double-execute on the new owner.  Lock-conflict
rejections (`ApplyResult.conflict`) are deliberately NOT recorded in the
dedup tables: the client retries the same sequence number once the lock is
released, and the retry must actually apply.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.protocols.types import Command, OpType


@dataclass(slots=True)
class ApplyResult:
    ok: bool
    value: Optional[str] = None
    # True when the command was rejected because this store does not own
    # its key — the replica turns this into a redirect, not a plain failure.
    wrong_shard: bool = False
    # True when the command was rejected because a prepared transaction
    # holds a lock on one of its keys.  Not dedup-recorded: the client's
    # retry with the same sequence number must apply once the lock clears.
    conflict: bool = False


# Shared success results for the hot plain-write path.  ApplyResult is
# never mutated after construction (results are cached in dedup windows
# and exported by value), so the no-payload successes can be singletons.
_OK = ApplyResult(ok=True)
_WRONG_SHARD = ApplyResult(ok=False, wrong_shard=True)
_CONFLICT = ApplyResult(ok=False, conflict=True)


class DedupSession:
    """One client's at-most-once window: a sliding set of cached results.

    Pipelined sessions keep up to `depth` commands in flight, and a
    dropped reply can leave the *oldest* of them retrying long after much
    newer sequence numbers applied — so eviction cannot be by distance
    from the newest seq.  Instead the client stamps every command with its
    **acked low-water mark** (`Command.acked_low_water`): the largest L
    such that every seq <= L has been acknowledged client-side.  Slots at
    or below L can never be retried (only stale retransmits of already
    answered requests can still arrive, and their replies are discarded by
    request-id matching), so they are safe to evict; everything above L
    stays cached.  The window therefore holds at most the client's
    pipeline depth of un-acked slots plus the acked ones the next command
    has not yet swept.

    `entries` maps seq -> (key, result); the key decides which slots
    travel with a migrated hash range (None for non-data commands, whose
    dedup must stay with the group the client talked to).
    """

    __slots__ = ("low_water", "entries")

    def __init__(self, low_water: int = -1,
                 entries: Optional[Dict[int, Tuple[Optional[str], ApplyResult]]] = None,
                 ) -> None:
        self.low_water = low_water
        self.entries: Dict[int, Tuple[Optional[str], ApplyResult]] = entries or {}

    def lookup(self, seq: int) -> Optional[ApplyResult]:
        """The cached duplicate answer for `seq`, or None if it is new.
        Evicted seqs (<= low_water) were acked: the bare ok marker is
        enough, the client discards the reply anyway."""
        if seq <= self.low_water:
            return _OK
        entry = self.entries.get(seq)
        return entry[1] if entry is not None else None

    def record(self, seq: int, key: Optional[str], result: ApplyResult) -> None:
        self.entries[seq] = (key, result)

    def evict_upto(self, low_water: int) -> None:
        """Advance the floor (monotonic) and drop the acked slots."""
        if low_water <= self.low_water:
            return
        self.low_water = low_water
        entries = self.entries
        # In place, not a dict rebuild: this runs on nearly every apply
        # (the floor advances with the client's pipeline) and the window
        # holds only a pipeline-depth of slots.
        acked = [seq for seq in entries if seq <= low_water]
        for seq in acked:
            del entries[seq]

    # -- migration wire format ----------------------------------------------

    def export_payload(self, entries: Dict[int, Tuple[Optional[str], ApplyResult]],
                       ) -> Dict:
        return {"low_water": self.low_water,
                "entries": {seq: [key, result.ok, result.value]
                            for seq, (key, result) in entries.items()}}

    @staticmethod
    def from_payload(payload) -> "DedupSession":
        """Parse an exported session.  Accepts the current windowed format
        and the legacy single-slot ``[seq, key, ok, value]`` list (treated
        as a one-entry window with the floor just below it)."""
        if isinstance(payload, (list, tuple)):
            seq, key, ok, value = payload
            return DedupSession(low_water=seq - 1, entries={
                int(seq): (key, ApplyResult(ok=ok, value=value))})
        entries = {
            int(seq): (key, ApplyResult(ok=ok, value=value))
            for seq, (key, ok, value) in payload.get("entries", {}).items()
        }
        return DedupSession(low_water=payload.get("low_water", -1),
                            entries=entries)

    def merge(self, other: "DedupSession") -> None:
        """Fold an imported window in: floors join by max (never regress),
        slots union (existing entries win — duplicates are identical)."""
        for seq, entry in other.entries.items():
            self.entries.setdefault(seq, entry)
        self.evict_upto(other.low_water)


class KVStore:
    """Deterministic state machine with at-most-once apply semantics."""

    def __init__(self, key_filter: Optional[Callable[[str], bool]] = None) -> None:
        self._table: Dict[str, str] = {}
        self._versions: Dict[str, int] = {}
        # At-most-once state, one sliding window per client (see
        # `DedupSession`): retries of any in-window seq return the cached
        # result; the client-stamped low-water mark drives eviction.
        self._sessions: Dict[str, DedupSession] = {}
        self.applied_count = 0
        self.key_filter = key_filter
        self.filtered_count = 0
        # -- 2PC participant state (all advanced only by applied commands,
        #    so every replica of the group holds identical copies) --------
        self._locks: Dict[str, str] = {}          # key -> holding txn handle
        self._staged: Dict[str, Dict[str, str]] = {}   # handle -> writes
        self._txn_meta: Dict[str, Dict] = {}      # handle -> prepare metadata
        self._decisions: Dict[str, Dict] = {}     # handle -> decision record
        self._txn_commits: Dict[str, Dict] = {}   # txn id -> winning commit
        self._txn_fence: Dict[str, int] = {}      # coordinator -> min incarnation
        # Hash ranges a refused MIGRATE_OUT is draining: new prepares for
        # fenced keys die so the existing locks can clear and the export's
        # retry can land (lifted when it does).  Plain reads/writes and
        # atomic single-shard TXNs keep being served — they hold no locks
        # across entries, so the snapshot at the export's log position
        # includes them.
        self._migrate_fences: set = set()         # {(lo, hi)}
        # Per-key install order of every write (PUT or committed txn
        # write), for the strict-serializability checker.
        self._write_log: Dict[str, List[str]] = {}

    def set_key_filter(self, key_filter: Optional[Callable[[str], bool]]) -> None:
        """Restrict the store to the keys it owns (sharded deployments).

        Commands for keys outside the filter fail with `ok=False` instead
        of mutating state — a safety net behind the router: with correct
        shard routing it never fires, and `filtered_count` stays 0.
        """
        self.key_filter = key_filter

    def owns(self, key: str) -> bool:
        return self.key_filter is None or self.key_filter(key)

    def apply(self, command: Command) -> ApplyResult:
        """Apply a committed command; duplicate (client, seq) pairs return
        the original result without re-executing."""
        op = command.op
        if op is OpType.NOP:
            return _OK
        client = command.client_id
        # At-most-once first, ownership second: a duplicate whose key moved
        # to another shard after the original applied still gets its cached
        # result (the ownership check would wrongly fail it and trigger a
        # re-execution on the new owner once the client re-routes).
        session = None
        if client:
            session = self._sessions.get(client)
            if session is not None:
                cached = session.lookup(command.seq)
                if cached is not None:
                    return cached

        # PUT/GET first: the data fast path is ~all of a benchmark run,
        # with its bookkeeping inlined (refusals return before it).
        if op is OpType.PUT or op is OpType.GET:
            key = command.key
            key_filter = self.key_filter
            if key_filter is not None and not key_filter(key):
                self.filtered_count += 1
                return _WRONG_SHARD
            if self._locks and key in self._locks:
                # A prepared transaction holds this key: plain reads/writes
                # wait it out via the client's ordinary backoff-retry
                # machinery.
                return _CONFLICT
            if op is OpType.PUT:
                self._put_local(key, command.value if command.value is not None else "")
                result = _OK
            else:
                result = ApplyResult(ok=True, value=self._table.get(key))
            self.applied_count += 1
            if client:
                if session is None:
                    session = self._sessions[client] = DedupSession()
                session.entries[command.seq] = (key, result)
                if command.acked_low_water > session.low_water:
                    session.evict_upto(command.acked_low_water)
            return result

        if op is OpType.MIGRATE_OUT:
            result = self._apply_migrate_out(command)
        elif op is OpType.MIGRATE_IN:
            result = self._apply_migrate_in(command)
        elif op is OpType.TXN_PREPARE:
            result = self._apply_txn_prepare(command)
        elif op is OpType.TXN_COMMIT:
            result = self._apply_txn_finish(command, commit=True)
        elif op is OpType.TXN_ABORT:
            result = self._apply_txn_finish(command, commit=False)
        elif op is OpType.TXN_DECIDE:
            result = self._apply_txn_decide(command)
        elif op is OpType.TXN_RECOVER:
            result = self._apply_txn_recover(command)
        elif op is OpType.TXN:
            result = self._apply_txn_single(command)
        elif op is OpType.CONFIG:
            # A membership change mutates the PROTOCOL's voter view, not
            # the store: the replica reacts when this entry applies
            # (`ReplicaBase._on_config_applied`).  It still flows through
            # the dedup window below so a driver's retried change is
            # answered from cache instead of proposing a second epoch.
            result = _OK
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown op {op}")

        if result.conflict or result.wrong_shard:
            # Retryable refusals — a held lock, a draining migration, a
            # misrouted or migrated-away key — NEVER burn the client's
            # dedup slot: the retry with the same sequence number must
            # actually apply once the lock clears or the client re-routes.
            return result

        self.applied_count += 1
        if client:
            if session is None:
                session = self._sessions[client] = DedupSession()
            # Non-data commands (migration, 2PC steps) record no key: the
            # coordinator's dedup state stays on the group it talked to.
            session.record(command.seq,
                           command.key if command.is_data else None, result)
            session.evict_upto(command.acked_low_water)
        return result

    def apply_batch(self, log, start: int, stop: int) -> None:
        """Apply the committed entries ``log[start:stop]`` in order.

        The replica's no-observers fast path (`_apply_committed` with no
        apply hooks, no waiting clients/relays, and no obs collector):
        semantically identical to one `apply()` call per entry — every
        dedup, ownership, and lock decision is made per command exactly
        as the scalar path would — with the per-entry loop overhead
        hoisted out of the replica layer.  Results are discarded because
        by construction nobody is waiting for them."""
        apply = self.apply
        for index in range(start, stop):
            apply(log[index].command)

    def _put_local(self, key: str, value: str) -> None:
        self._table[key] = value
        versions = self._versions
        versions[key] = versions.get(key, 0) + 1
        log = self._write_log.get(key)
        if log is None:
            log = self._write_log[key] = []
        log.append(value)

    # -- transactions (2PC participant) --------------------------------------

    @staticmethod
    def _txn_json(**payload) -> str:
        return json.dumps(payload, sort_keys=True)

    def _apply_txn_single(self, command: Command) -> ApplyResult:
        """A single-shard transaction: every op applies atomically in one
        log entry, respecting the 2PC lock table (so single-shard and
        cross-shard transactions serialize against each other)."""
        ops = json.loads(command.value or "{}").get("ops", [])
        keys = [key for _, key, _ in ops]
        if any(not self.owns(key) for key in keys):
            self.filtered_count += 1
            return ApplyResult(ok=False, wrong_shard=True)
        if any(key in self._locks for key in keys):
            return ApplyResult(ok=False, conflict=True)
        reads: Dict[str, Optional[str]] = {}
        for op, key, value in ops:
            if op == "get":
                reads[key] = self._table.get(key)
            else:
                self._put_local(key, value if value is not None else "")
        return ApplyResult(ok=True, value=self._txn_json(reads=reads))

    def _vote(self, vote: str, **extra) -> ApplyResult:
        return ApplyResult(ok=True, value=self._txn_json(vote=vote, **extra))

    def _apply_txn_prepare(self, command: Command) -> ApplyResult:
        """Lock-stage-read-vote.  Deterministic per log position, so every
        replica of the group casts the identical vote and holds the
        identical lock table."""
        meta = json.loads(command.value or "{}")
        handle = meta["handle"]
        if meta["inc"] < self._txn_fence.get(meta["coord"], -1):
            # A prepare from a fenced (crashed) coordinator incarnation:
            # refusing it here is what keeps orphan locks impossible.
            return self._vote("no", reason="fenced")
        if handle in self._staged:
            # Re-prepare of an already-granted attempt (lost reply, new
            # sequence number): idempotent re-vote.
            return self._vote("yes", reads=self._txn_meta[handle]["reads"])
        keys = [key for _, key, _ in meta["ops"]]
        if any(not self.owns(key) for key in keys):
            self.filtered_count += 1
            return self._vote("no", reason="wrong_shard")
        if self._fenced(keys):
            # The key's range is draining for a refused migration: voting
            # no (die-and-retry) here is what lets the existing locks
            # clear — otherwise a steady 2PC stream could re-lock the
            # range forever and the export would never find its window.
            return self._vote("no", reason="migrating")
        verdict = "yes"
        for key in keys:
            holder = self._locks.get(key)
            if holder is None:
                continue
            holder_meta = self._txn_meta.get(holder, {})
            if (meta["ts"], handle) < (holder_meta.get("ts", -1), holder):
                # Requester is older: wait (its coordinator re-sends this
                # prepare while the transaction keeps its other locks).
                verdict = "wait" if verdict == "yes" else verdict
            else:
                # Requester is younger: die (abort + retry from scratch
                # with the original ts, so its priority only ever ages).
                verdict = "no"
        if verdict != "yes":
            return self._vote(verdict, reason="conflict")
        reads: Dict[str, Optional[str]] = {}
        writes: Dict[str, str] = {}
        for op, key, value in meta["ops"]:
            if op == "get":
                reads[key] = self._table.get(key)
            else:
                writes[key] = value if value is not None else ""
        for key in keys:
            self._locks[key] = handle
        self._staged[handle] = writes
        self._txn_meta[handle] = dict(meta, reads=reads)
        return self._vote("yes", reads=reads)

    def _release(self, handle: str) -> None:
        self._locks = {key: holder for key, holder in self._locks.items()
                       if holder != handle}

    def _apply_txn_finish(self, command: Command, commit: bool) -> ApplyResult:
        """Phase 2: install (commit) or drop (abort) the staged writes and
        release the locks.  Idempotent — an unknown handle is a finished or
        never-prepared attempt, both of which are no-ops."""
        handle = json.loads(command.value or "{}")["handle"]
        staged = self._staged.pop(handle, None)
        if staged is not None:
            if commit:
                for key in sorted(staged):
                    self._put_local(key, staged[key])
            self._release(handle)
            self._txn_meta.pop(handle, None)
        return ApplyResult(ok=True, value=self._txn_json(done=True))

    def _apply_txn_decide(self, command: Command) -> ApplyResult:
        """Record the coordinator's decision; the FIRST decision for a
        handle wins and the reply always carries the winner, so a recovered
        coordinator racing its own pre-crash decision converges on one
        outcome.

        Commits are additionally first-wins *per transaction*: with
        coordinator failover a client can retry one txn through a second
        coordinator while the first attempt's commit is still in flight.
        The second attempt's commit-decide finds the transaction already
        committed under another handle and is bound to ABORT, with the
        winning record attached so the losing coordinator can answer the
        client from the winner's result.  Abort decisions bind only their
        own handle — a presumed-abort of one attempt must not block the
        transaction from committing on a later attempt."""
        meta = json.loads(command.value or "{}")
        handle, txn = meta["handle"], meta.get("txn")
        existing = self._decisions.get(handle)
        if existing is None:
            if meta.get("outcome") == "commit" and txn is not None:
                winner = self._txn_commits.get(txn)
                if winner is None:
                    self._txn_commits[txn] = meta
                elif winner["handle"] != handle:
                    meta = dict(meta, outcome="abort", winner=winner)
            self._decisions[handle] = meta
            existing = meta
        return ApplyResult(ok=True, value=json.dumps(existing, sort_keys=True))

    def _apply_txn_recover(self, command: Command) -> ApplyResult:
        """Fence the coordinator's crashed incarnations, then report every
        prepared transaction and logged decision it owns.  Ordered through
        the log, so any prepare committed before this query is visible in
        the report and any prepare still in flight behind it is fenced."""
        meta = json.loads(command.value or "{}")
        coord = meta["coord"]
        self._txn_fence[coord] = max(self._txn_fence.get(coord, -1), meta["inc"])
        prepared = [self._txn_meta[handle] for handle in sorted(self._txn_meta)
                    if self._txn_meta[handle].get("coord") == coord]
        decisions = [self._decisions[handle] for handle in sorted(self._decisions)
                     if self._decisions[handle].get("coord") == coord]
        return ApplyResult(ok=True, value=self._txn_json(
            prepared=prepared, decisions=decisions))

    # -- range migration ----------------------------------------------------

    def export_range(self, lo: int, hi: int) -> Dict:
        """Remove and return everything owned in hash range [lo, hi): the
        records, their versions, and every client's dedup-window slots
        whose key lies in the range (the low-water mark is copied, not
        moved — both sides keep the floor, which only ever rises).
        Deterministic: replicas applying the same log prefix export
        identical snapshots."""
        from repro.shard.partition import key_point  # lazy: kvstore sits below shard

        moved = sorted(k for k in self._table if lo <= key_point(k) < hi)
        table = {k: self._table.pop(k) for k in moved}
        versions = {k: self._versions.pop(k) for k in moved if k in self._versions}
        # The per-key install order travels too: the strict-serializability
        # checker anchors on it, and a reshard must not amputate a key's
        # history prefix.  (Keys can have a write log without a live table
        # entry only transiently; sweep by hash range, not by `moved`.)
        write_log = {}
        for key in sorted(self._write_log):
            if lo <= key_point(key) < hi:
                write_log[key] = self._write_log.pop(key)
        sessions = {}
        for client in sorted(self._sessions):
            # System clients (coordinators, reshard drivers — "__"-prefixed)
            # keep their dedup windows on the donor: the reshard driver's
            # own cached step replies must stay answerable from here, or a
            # failed-over driver redoing an export would re-execute it
            # against the already-emptied range and install an empty
            # snapshot.
            if client.startswith("__"):
                continue
            session = self._sessions[client]
            taken = {seq: entry for seq, entry in session.entries.items()
                     if entry[0] is not None and lo <= key_point(entry[0]) < hi}
            if not taken:
                continue
            for seq in taken:
                del session.entries[seq]
            sessions[client] = session.export_payload(taken)
        return {"table": table, "versions": versions, "sessions": sessions,
                "write_log": write_log}

    def import_range(self, payload: Dict) -> int:
        """Install an exported range: records, versions, and dedup windows
        (slots union, floors join by max — an already-present slot or a
        higher floor never regresses)."""
        self._table.update(payload.get("table", {}))
        self._versions.update(payload.get("versions", {}))
        for key, log in payload.get("write_log", {}).items():
            # The imported history is the key's prefix: writes the importer
            # somehow already has (none, under correct routing) stay after.
            self._write_log[key] = list(log) + self._write_log.get(key, [])
        for client, exported in payload.get("sessions", {}).items():
            session = self._sessions.setdefault(client, DedupSession())
            session.merge(DedupSession.from_payload(exported))
        return len(payload.get("table", {}))

    def _apply_migrate_out(self, command: Command) -> ApplyResult:
        meta = json.loads(command.value or "{}")
        lo, hi = meta["lo"], meta["hi"]
        if self._range_locked(lo, hi):
            # A prepared (voted) 2PC transaction holds keys in the range.
            # Exporting now would strand its staged writes on a group that
            # no longer owns them — phase 2 would install ghost writes the
            # new owner never sees.  Refuse, and fence the range against
            # NEW prepares so the held locks drain (wait-die guarantees
            # they clear); the coordinator's backoff-retry picks the
            # export up again.  Deterministic: the lock table is
            # replicated state, so every replica of the group refuses —
            # and fences — at the same log position.
            self._migrate_fences.add((lo, hi))
            return ApplyResult(ok=False, conflict=True)
        self._migrate_fences.discard((lo, hi))
        export = self.export_range(lo, hi)
        return ApplyResult(ok=True, value=json.dumps(export, sort_keys=True))

    def _range_locked(self, lo: int, hi: int) -> bool:
        from repro.shard.partition import key_point  # lazy: kvstore sits below shard

        return any(lo <= key_point(key) < hi for key in self._locks)

    def _fenced(self, keys: List[str]) -> bool:
        if not self._migrate_fences:
            return False
        from repro.shard.partition import key_point  # lazy: kvstore sits below shard

        points = [key_point(key) for key in keys]
        return any(lo <= point < hi
                   for point in points for lo, hi in self._migrate_fences)

    def _apply_migrate_in(self, command: Command) -> ApplyResult:
        payload = json.loads(command.value or "{}")
        imported = self.import_range(payload)
        return ApplyResult(ok=True, value=str(imported))

    # -- reads / introspection ----------------------------------------------

    def read_local(self, key: str) -> Optional[str]:
        """Local (lease-protected) read path; does not go through the log."""
        return self._table.get(key)

    def version(self, key: str) -> int:
        """Number of writes applied to `key` (used by safety checkers)."""
        return self._versions.get(key, 0)

    def write_order(self, key: str) -> List[str]:
        """Every value installed at `key`, in apply order (the per-key
        version order the strict-serializability checker anchors on)."""
        return list(self._write_log.get(key, []))

    def locked_keys(self) -> Dict[str, str]:
        """Current prepared-lock table (key -> holding handle)."""
        return dict(self._locks)

    @property
    def lock_count(self) -> int:
        """Current prepared-lock table size (the repro.obs gauge probe)."""
        return len(self._locks)

    def prepared_handles(self) -> List[str]:
        return sorted(self._staged)

    def snapshot(self) -> Dict[str, str]:
        return dict(self._table)

    # -- catch-up snapshots (dynamic membership) -----------------------------

    def export_full(self) -> Dict:
        """The whole store as a catch-up snapshot: records, versions,
        per-key install orders, and every client's dedup window —
        everything a joining replica needs so that replaying the log
        suffix after the snapshot position reproduces the donor's state
        machine exactly (the property `tests/membership` pins with
        `digest`)."""
        return {
            "table": dict(self._table),
            "versions": dict(self._versions),
            "write_log": {key: list(log)
                          for key, log in self._write_log.items()},
            "sessions": {client: session.export_payload(dict(session.entries))
                         for client, session in sorted(self._sessions.items())},
            "applied": self.applied_count,
        }

    def install_full(self, payload: Dict) -> None:
        """Install a catch-up snapshot into a FRESH store (replaces, not
        merges — a joiner starts empty)."""
        self._table = dict(payload.get("table", {}))
        self._versions = dict(payload.get("versions", {}))
        self._write_log = {key: list(log)
                          for key, log in payload.get("write_log", {}).items()}
        self._sessions = {
            client: DedupSession.from_payload(exported)
            for client, exported in payload.get("sessions", {}).items()
        }
        self.applied_count = payload.get("applied", 0)

    def digest(self) -> str:
        """Stable content digest of the replicated state.  Two stores that
        processed the same committed commands — directly, or via a
        catch-up snapshot plus the log suffix — report the same digest."""
        import hashlib

        payload = json.dumps(self.export_full(), sort_keys=True)
        return hashlib.sha1(payload.encode()).hexdigest()

    def __len__(self) -> int:
        return len(self._table)
