"""The replicated application: a key-value store.

Exactly the paper's workload target: `Put(k, v)` / `Get(k)` over ~100 K
records.  Commands are applied exactly once per (client, seq) pair so that
retries and replays during leader changes stay idempotent.

Sharded deployments add two concerns:

* a **key filter** restricting the store to the keys its group owns (a
  safety net behind the router and the replica ownership guard);
* **range migration** (`MIGRATE_OUT` / `MIGRATE_IN` commands) for live
  resharding: a donor exports a hash range — the records *and* the
  at-most-once dedup state of clients whose last command touched it — and
  a recipient imports it, both through the committed log so every replica
  of a group transitions at the same log position.

Ordering matters: the duplicate check runs **before** the ownership check.
A retried command whose original already applied, but whose key has since
migrated away, must return the cached result — rejecting it would make the
client re-route and double-execute on the new owner.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.protocols.types import Command, OpType


@dataclass
class ApplyResult:
    ok: bool
    value: Optional[str] = None
    # True when the command was rejected because this store does not own
    # its key — the replica turns this into a redirect, not a plain failure.
    wrong_shard: bool = False


class KVStore:
    """Deterministic state machine with at-most-once apply semantics."""

    def __init__(self, key_filter: Optional[Callable[[str], bool]] = None) -> None:
        self._table: Dict[str, str] = {}
        self._versions: Dict[str, int] = {}
        self._last_seq: Dict[str, int] = {}
        self._last_result: Dict[str, ApplyResult] = {}
        # The key of each client's last applied data command: decides which
        # dedup entries travel with a migrated range.
        self._last_key: Dict[str, str] = {}
        self.applied_count = 0
        self.key_filter = key_filter
        self.filtered_count = 0

    def set_key_filter(self, key_filter: Optional[Callable[[str], bool]]) -> None:
        """Restrict the store to the keys it owns (sharded deployments).

        Commands for keys outside the filter fail with `ok=False` instead
        of mutating state — a safety net behind the router: with correct
        shard routing it never fires, and `filtered_count` stays 0.
        """
        self.key_filter = key_filter

    def owns(self, key: str) -> bool:
        return self.key_filter is None or self.key_filter(key)

    def apply(self, command: Command) -> ApplyResult:
        """Apply a committed command; duplicate (client, seq) pairs return
        the original result without re-executing."""
        if command.op is OpType.NOP:
            return ApplyResult(ok=True)
        client = command.client_id
        # At-most-once first, ownership second: a duplicate whose key moved
        # to another shard after the original applied still gets its cached
        # result (the ownership check would wrongly fail it and trigger a
        # re-execution on the new owner once the client re-routes).
        if client and command.seq <= self._last_seq.get(client, -1):
            return self._last_result.get(client, ApplyResult(ok=True))

        if command.op is OpType.MIGRATE_OUT:
            result = self._apply_migrate_out(command)
        elif command.op is OpType.MIGRATE_IN:
            result = self._apply_migrate_in(command)
        elif not self.owns(command.key):
            self.filtered_count += 1
            # Not recorded in the dedup tables: once the client re-routes
            # (or this store later imports the range) the retry must apply.
            return ApplyResult(ok=False, wrong_shard=True)
        elif command.op is OpType.PUT:
            self._table[command.key] = command.value if command.value is not None else ""
            self._versions[command.key] = self._versions.get(command.key, 0) + 1
            result = ApplyResult(ok=True)
        elif command.op is OpType.GET:
            result = ApplyResult(ok=True, value=self._table.get(command.key))
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown op {command.op}")

        self.applied_count += 1
        if client:
            self._last_seq[client] = command.seq
            self._last_result[client] = result
            if command.is_data:
                # Migration commands keep no _last_key: the coordinator's
                # own dedup state must stay on the group it talked to.
                self._last_key[client] = command.key
        return result

    # -- range migration ----------------------------------------------------

    def export_range(self, lo: int, hi: int) -> Dict:
        """Remove and return everything owned in hash range [lo, hi): the
        records, their versions, and the dedup state of every client whose
        last applied command touched a key in the range.  Deterministic:
        replicas applying the same log prefix export identical snapshots."""
        from repro.shard.partition import key_point  # lazy: kvstore sits below shard

        moved = sorted(k for k in self._table if lo <= key_point(k) < hi)
        table = {k: self._table.pop(k) for k in moved}
        versions = {k: self._versions.pop(k) for k in moved if k in self._versions}
        sessions = {}
        for client in sorted(self._last_key):
            key = self._last_key[client]
            if lo <= key_point(key) < hi:
                del self._last_key[client]
                last = self._last_result.pop(client, ApplyResult(ok=True))
                sessions[client] = [self._last_seq.pop(client, -1), key,
                                    last.ok, last.value]
        return {"table": table, "versions": versions, "sessions": sessions}

    def import_range(self, payload: Dict) -> int:
        """Install an exported range: records, versions, and dedup state
        (newest seq wins if this store already has an entry)."""
        self._table.update(payload.get("table", {}))
        self._versions.update(payload.get("versions", {}))
        for client, (seq, key, ok, value) in payload.get("sessions", {}).items():
            if seq > self._last_seq.get(client, -1):
                self._last_seq[client] = seq
                self._last_result[client] = ApplyResult(ok=ok, value=value)
                self._last_key[client] = key
        return len(payload.get("table", {}))

    def _apply_migrate_out(self, command: Command) -> ApplyResult:
        meta = json.loads(command.value or "{}")
        export = self.export_range(meta["lo"], meta["hi"])
        return ApplyResult(ok=True, value=json.dumps(export, sort_keys=True))

    def _apply_migrate_in(self, command: Command) -> ApplyResult:
        payload = json.loads(command.value or "{}")
        imported = self.import_range(payload)
        return ApplyResult(ok=True, value=str(imported))

    # -- reads / introspection ----------------------------------------------

    def read_local(self, key: str) -> Optional[str]:
        """Local (lease-protected) read path; does not go through the log."""
        return self._table.get(key)

    def version(self, key: str) -> int:
        """Number of writes applied to `key` (used by safety checkers)."""
        return self._versions.get(key, 0)

    def snapshot(self) -> Dict[str, str]:
        return dict(self._table)

    def __len__(self) -> int:
        return len(self._table)
