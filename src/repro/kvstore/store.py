"""The replicated application: a key-value store.

Exactly the paper's workload target: `Put(k, v)` / `Get(k)` over ~100 K
records.  Commands are applied exactly once per (client, seq) pair so that
retries and replays during leader changes stay idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.protocols.types import Command, OpType


@dataclass
class ApplyResult:
    ok: bool
    value: Optional[str] = None


class KVStore:
    """Deterministic state machine with at-most-once apply semantics."""

    def __init__(self, key_filter: Optional[Callable[[str], bool]] = None) -> None:
        self._table: Dict[str, str] = {}
        self._versions: Dict[str, int] = {}
        self._last_seq: Dict[str, int] = {}
        self._last_result: Dict[str, ApplyResult] = {}
        self.applied_count = 0
        self.key_filter = key_filter
        self.filtered_count = 0

    def set_key_filter(self, key_filter: Optional[Callable[[str], bool]]) -> None:
        """Restrict the store to the keys it owns (sharded deployments).

        Commands for keys outside the filter fail with `ok=False` instead
        of mutating state — a safety net behind the router: with correct
        shard routing it never fires, and `filtered_count` stays 0.
        """
        self.key_filter = key_filter

    def owns(self, key: str) -> bool:
        return self.key_filter is None or self.key_filter(key)

    def apply(self, command: Command) -> ApplyResult:
        """Apply a committed command; duplicate (client, seq) pairs return
        the original result without re-executing."""
        if command.op is OpType.NOP:
            return ApplyResult(ok=True)
        if not self.owns(command.key):
            self.filtered_count += 1
            return ApplyResult(ok=False)
        client = command.client_id
        if client and command.seq <= self._last_seq.get(client, -1):
            return self._last_result.get(client, ApplyResult(ok=True))

        if command.op is OpType.PUT:
            self._table[command.key] = command.value if command.value is not None else ""
            self._versions[command.key] = self._versions.get(command.key, 0) + 1
            result = ApplyResult(ok=True)
        elif command.op is OpType.GET:
            result = ApplyResult(ok=True, value=self._table.get(command.key))
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown op {command.op}")

        self.applied_count += 1
        if client:
            self._last_seq[client] = command.seq
            self._last_result[client] = result
        return result

    def read_local(self, key: str) -> Optional[str]:
        """Local (lease-protected) read path; does not go through the log."""
        return self._table.get(key)

    def version(self, key: str) -> int:
        """Number of writes applied to `key` (used by safety checkers)."""
        return self._versions.get(key, 0)

    def snapshot(self) -> Dict[str, str]:
        return dict(self._table)

    def __len__(self) -> int:
        return len(self._table)
