"""Plain Raft, finite specification — the §3 negative result.

Raft differs from Raft* in exactly the two ways §3 identifies, and each one
breaks the direct refinement to MultiPaxos:

1. **Erasing.**  A follower whose log is longer than the leader's append
   erases the extra entries.  Mapped to MultiPaxos, an acceptor would be
   deleting a previously accepted value — no Paxos action does that.
2. **Immutable terms.**  A new leader replicates old entries with their
   original terms; the mapped step writes an instance at a ballot *below*
   the acceptor's current ballot, which Paxos' `Accept` guard forbids.

`tests/specs/test_raft_negative.py` runs `check_refinement` on this machine
and asserts that it FAILS, with a counterexample exercising the erasing
step — the mechanical version of the paper's argument for why Raft* is
needed.

The spec shares the structure (and clause implementations where behaviour
coincides) of `specs.raftstar`; the differences:

* vote replies carry no log (no extras), BecomeLeader merges nothing;
* `AcceptEntries` has no `no-erase` guard and replaces the whole log with
  the message's entries (which keep their original terms);
* `ProposeEntries` stamps only the new entry with the current term; earlier
  entries keep their terms (no ballot rewriting).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.refinement import RefinementMapping
from repro.core.state import FMap, State, fmap_const
from repro.specs import multipaxos as mp
from repro.specs.raftstar import last_bal, log_as_instances, up_to_date

EMPTY_ENTRY = mp.EMPTY_ENTRY


def default_config(**kwargs) -> Dict[str, Any]:
    return mp.default_config(**kwargs)


def _acceptors(c, s):
    return c["acceptors"]


def _terms(c, s):
    return range(1, c["max_ballot"] + 1)


def _values(c, s):
    return c["values"]


def _vmsgs1a(c, s):
    return s["vmsgs1a"]


def _pmsgs(c, s):
    return s["pmsgs"]


def _vote_sets(c, s):
    import itertools

    by_term: Dict[int, list] = {}
    for msg in s["vmsgs1b"]:
        by_term.setdefault(msg[1], []).append(msg)
    result = []
    for msgs in by_term.values():
        for size in range(1, len(msgs) + 1):
            for combo in itertools.combinations(sorted(msgs), size):
                if len({m[0] for m in combo}) == len(combo):
                    result.append(frozenset(combo))
    return result


def _mk(name, kind, fn, var=None) -> Clause:
    return Clause(name=name, kind=kind, fn=fn, var=var)


def build(constants: Dict[str, Any]) -> SpecMachine:
    maj = mp.majority(constants)
    max_index = constants["max_index"]

    increase_term = Action(
        name="IncreaseTerm",
        params={"a": _acceptors, "t": _terms},
        clauses=(
            _mk("term-is-higher", "guard", lambda s, p: p["t"] > s["term"][p["a"]]),
            _mk("adopt-term", "update",
                lambda s, p: s["term"].set(p["a"], p["t"]), var="term"),
            _mk("drop-leadership", "update",
                lambda s, p: s["isleader"].set(p["a"], False), var="isleader"),
        ),
    )

    request_vote = Action(
        name="RequestVote",
        params={"a": _acceptors},
        clauses=(
            _mk("not-leader", "guard", lambda s, p: not s["isleader"][p["a"]]),
            _mk("owns-term", "guard",
                lambda s, p: mp.owner(constants, s["term"][p["a"]]) == p["a"]
                and s["term"][p["a"]] >= 1),
            _mk("send-requestvote", "update",
                lambda s, p: s["vmsgs1a"] | {(
                    p["a"], s["term"][p["a"]],
                    len(s["rlog"][p["a"]]) - 1, last_bal(s["rlog"][p["a"]]),
                )},
                var="vmsgs1a"),
        ),
    )

    receive_vote = Action(
        name="ReceiveVote",
        params={"a": _acceptors, "m": _vmsgs1a},
        clauses=(
            _mk("vote-term-higher", "guard",
                lambda s, p: p["m"][1] > s["term"][p["a"]]),
            _mk("candidate-up-to-date", "guard",
                lambda s, p: up_to_date(p["m"][2], p["m"][3], s["rlog"][p["a"]])),
            _mk("adopt-vote-term", "update",
                lambda s, p: s["term"].set(p["a"], p["m"][1]), var="term"),
            _mk("vote-drop-leadership", "update",
                lambda s, p: s["isleader"].set(p["a"], False), var="isleader"),
            # Plain Raft: the reply carries no extra entries.  The voter's
            # log at grant time is recorded as a *history* component (not
            # transmitted, never read by BecomeLeader) purely so the mapped
            # Paxos prepareOK message is well-formed.
            _mk("send-vote-reply", "update",
                lambda s, p: s["vmsgs1b"] | {(p["a"], p["m"][1], s["rlog"][p["a"]])},
                var="vmsgs1b"),
        ),
    )

    become_leader = Action(
        name="BecomeLeader",
        params={"a": _acceptors, "S": _vote_sets},
        clauses=(
            _mk("not-yet-leader", "guard", lambda s, p: not s["isleader"][p["a"]]),
            _mk("votes-match-term", "guard",
                lambda s, p: all(m[1] == s["term"][p["a"]] for m in p["S"])
                and len(p["S"]) > 0),
            _mk("owns-voted-term", "guard",
                lambda s, p: mp.owner(constants, s["term"][p["a"]]) == p["a"]),
            _mk("vote-quorum-with-self", "guard",
                lambda s, p: len({m[0] for m in p["S"]} | {p["a"]}) >= maj),
            # Plain Raft: no safe-value merge; the candidate's log stands.
            _mk("become-leader", "update",
                lambda s, p: s["isleader"].set(p["a"], True), var="isleader"),
        ),
    )

    propose_entries = Action(
        name="ProposeEntries",
        params={"a": _acceptors, "v": _values},
        clauses=(
            _mk("is-leader", "guard", lambda s, p: s["isleader"][p["a"]]),
            _mk("log-has-room", "guard",
                lambda s, p: len(s["rlog"][p["a"]]) <= max_index),
            # Plain Raft: the append replicates the leader's log verbatim —
            # old entries keep their original terms.
            _mk("send-append", "update",
                lambda s, p: s["pmsgs"] | {(
                    s["term"][p["a"]],
                    s["rlog"][p["a"]] + ((s["term"][p["a"]], p["v"]),),
                )},
                var="pmsgs"),
        ),
    )

    accept_entries = Action(
        name="AcceptEntries",
        params={"a": _acceptors, "pe": _pmsgs},
        clauses=(
            _mk("append-term-ok", "guard",
                lambda s, p: p["pe"][0] >= s["term"][p["a"]]),
            # NOTE: no 'no-erase' guard — the follower matches the leader's
            # log even when its own log is longer (the erasing step).
            _mk("adopt-append-term", "update",
                lambda s, p: s["term"].set(p["a"], p["pe"][0]), var="term"),
            _mk("append-maybe-demote", "update",
                lambda s, p: s["isleader"].set(p["a"], False)
                if p["pe"][0] > s["term"][p["a"]] else s["isleader"],
                var="isleader"),
            _mk("replace-log", "update",
                lambda s, p: s["rlog"].set(p["a"], p["pe"][1]), var="rlog"),
            _mk("record-votes", "update",
                lambda s, p: s["votes"].set(p["a"], s["votes"][p["a"]] | {
                    (j, entry[0], entry[1])
                    for j, entry in enumerate(p["pe"][1])
                }),
                var="votes"),
        ),
    )

    def init(c) -> Iterable[State]:
        yield State({
            "term": fmap_const(c["acceptors"], 0),
            "isleader": fmap_const(c["acceptors"], False),
            "rlog": fmap_const(c["acceptors"], ()),
            "votes": fmap_const(c["acceptors"], frozenset()),
            "vmsgs1a": frozenset(),
            "vmsgs1b": frozenset(),
            "pmsgs": frozenset(),
        })

    return SpecMachine(
        name="Raft",
        variables=("term", "isleader", "rlog", "votes",
                   "vmsgs1a", "vmsgs1b", "pmsgs"),
        constants=constants,
        init=init,
        actions=[increase_term, request_vote, receive_vote, become_leader,
                 propose_entries, accept_entries],
    )


def raft_to_multipaxos(constants) -> RefinementMapping:
    """The Figure-3-style mapping attempted on plain Raft.  Plain Raft has
    no `proposed` variable; the mapped `proposed` is reconstructed as every
    (index, term, value) occurring in any append message — the most generous
    reading.  The refinement still fails (that is the point)."""

    def state_map(state: State) -> State:
        acceptors = constants["acceptors"]
        proposed = set()
        for term, entries in state["pmsgs"]:
            for index, entry in enumerate(entries):
                proposed.add((index, entry[0], entry[1]))
        return State({
            "ballot": state["term"],
            "leader": state["isleader"],
            "logs": FMap({
                a: log_as_instances(constants, state["rlog"][a]) for a in acceptors
            }),
            "votes": state["votes"],
            "proposed": frozenset(proposed),
            "msgs1a": frozenset((m[0], m[1]) for m in state["vmsgs1a"]),
            "msgs1b": frozenset(
                (m[0], m[1], log_as_instances(constants, m[2]))
                for m in state["vmsgs1b"]
            ),
        })

    return RefinementMapping(name="figure-3-on-plain-raft", state_map=state_map)
