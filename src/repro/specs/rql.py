"""Raft*-PQL (Appendix B.4), **generated** by the porting algorithm.

This module does not hand-write the optimized protocol: it calls
`core.porting.port_optimization` with

  A  = MultiPaxos (B.1)      A∆ = PQL (B.3)
  B  = Raft* (B.2)           f  = the Figure 3 mapping

and returns B∆ = Raft*-PQL.  The correspondence and expansions encode the
Figure 3 function table, including the one-to-many cases (one Raft*
`ProposeEntries`/`AcceptEntries` step implies a Paxos `Propose`/`Accept`
step per covered index).

Because PQL's lease machinery reads MultiPaxos state only through derived
notions (`CanCommitAt`, `LeaseIsActive`), the ported subactions evaluate
those notions *through the refinement mapping* — e.g. the ported `Apply`
checks `CanCommitAt` over the mapped `votes`, which is exactly the
`commitIndex`-based condition of Figure 8 expressed at the spec level.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.core.machine import SpecMachine
from repro.core.porting import (
    PortSpec,
    port_optimization,
    ported_to_optimized_mapping,
    ported_to_target_mapping,
)
from repro.core.refinement import RefinementMapping
from repro.specs import multipaxos as mp
from repro.specs import pql
from repro.specs import raftstar as rs


def correspondence() -> Dict[str, tuple]:
    """The Figure 3 function table, B action -> implied A actions."""
    return {
        "IncreaseTerm": ("IncreaseHighestBallot",),
        "RequestVote": ("Phase1a",),
        "ReceiveVote": ("Phase1b",),
        "BecomeLeader": ("BecomeLeader",),
        "ProposeEntries": ("Propose",),
        "AcceptEntries": ("Accept",),
    }


def expansions(constants) -> Dict[tuple, Any]:
    """One Raft* step -> the list of Paxos bindings it implies."""

    def propose_entries(state, binding) -> List[Mapping]:
        a, v = binding["a"], binding["v"]
        log = state["rlog"][a]
        out = [
            {"a": a, "i": j, "v": log[j][1]} for j in range(len(log))
        ]
        out.append({"a": a, "i": len(log), "v": v})
        return out

    def accept_entries(state, binding) -> List[Mapping]:
        a, pe = binding["a"], binding["pe"]
        term, entries = pe
        return [
            {"a": a, "pv": (j, term, entry[1])}
            for j, entry in enumerate(entries)
        ]

    def become_leader(state, binding) -> List[Mapping]:
        a, S = binding["a"], binding["S"]
        mapped = frozenset(
            (m[0], m[1], rs.log_as_instances(constants, m[2])) for m in S
        )
        return [{"a": a, "S": mapped}]

    return {
        ("ProposeEntries", "Propose"): propose_entries,
        ("AcceptEntries", "Accept"): accept_entries,
        ("BecomeLeader", "BecomeLeader"): become_leader,
    }


def port_spec(constants) -> PortSpec:
    return PortSpec(
        state_map=rs.raftstar_to_multipaxos(constants),
        correspondence=correspondence(),
        expansions=expansions(constants),
    )


def build(constants: Dict[str, Any] = None) -> SpecMachine:
    """Generate Raft*-PQL."""
    constants = constants or pql.default_config()
    A = mp.build(constants)
    A_delta = pql.build(constants)
    B = rs.build(constants)
    return port_optimization(A, A_delta, B, port_spec(constants), name="RaftStar-PQL")


def mapping_to_pql(constants) -> RefinementMapping:
    """B∆ ⇒ A∆ (Figure 5, left edge)."""
    A = mp.build(constants)
    A_delta = pql.build(constants)
    B = rs.build(constants)
    return ported_to_optimized_mapping(port_spec(constants), A, A_delta, B)


def mapping_to_raftstar(constants) -> RefinementMapping:
    """B∆ ⇒ B (Figure 5, bottom edge)."""
    return ported_to_target_mapping(rs.build(constants))


# -- invariants carried over from PQL, evaluated on the ported state --------------

def lease_invariants(constants) -> Dict[str, Any]:
    """PQL's invariants, evaluated on Raft*-PQL states through the
    refinement mapping (B∆ inherits A∆'s invariants — §4.3 Correctness)."""
    mapping = rs.raftstar_to_multipaxos(constants)
    raftstar_vars = rs.build(constants).variables

    def combined(state):
        mapped = mapping(state.restrict(raftstar_vars))
        return mapped.assign({v: state[v] for v in pql.NEW_VARIABLES})

    return {
        "lease-safe": lambda s, c: pql.lease_safe(combined(s), c),
        "reads-see-chosen-prefix":
            lambda s, c: pql.reads_see_chosen_prefix(combined(s), c),
    }
