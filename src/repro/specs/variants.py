"""Figure 6: the landscape of Paxos variants and optimizations.

The paper studies the known Paxos variants and sorts them into

* **non-mutating optimizations of Paxos** (double-lined box; candidates for
  the automatic port),
* **protocols Paxos refines** (Flexible Paxos — the arrow points the other
  way),
* **variants with no refinement mapping to Paxos in either direction**
  (left-most box), each with its reason.

This module is the machine-readable version of that figure, and `render()`
regenerates it as a table (`benchmarks/test_fig6_variants.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

NON_MUTATING = "non-mutating optimization"
PAXOS_REFINES_IT = "generalization (Paxos refines it)"
NO_REFINEMENT = "no refinement mapping"


@dataclass(frozen=True)
class Variant:
    name: str
    classification: str
    reference: str
    reason: str
    portable: bool

    @property
    def port_candidate(self) -> bool:
        return self.portable


FIGURE6: Tuple[Variant, ...] = (
    # The double-lined box: non-mutating optimizations on Paxos.
    Variant("Paxos Quorum Lease", NON_MUTATING, "Moraru et al. 2014",
            "lease state is additive; commit waits read votes but never "
            "change Paxos variables", True),
    Variant("Mencius", NON_MUTATING, "Mao et al. 2008",
            "skip tags / executable set are additive over coordinated "
            "instance ownership", True),
    Variant("S-Paxos", NON_MUTATING, "Biely et al. 2012",
            "request dissemination layer is additive; ordering unchanged", True),
    Variant("HT-Paxos", NON_MUTATING, "Kumar & Agarwal 2015",
            "like S-Paxos: extra dissemination/ordering staging state", True),
    Variant("Ring Paxos", NON_MUTATING, "Marandi et al. 2010",
            "ring dissemination is additive routing state", True),
    Variant("Multi-Ring Paxos", NON_MUTATING, "Marandi et al. 2012",
            "partitions across rings; per-ring state additive", True),
    Variant("WPaxos", NON_MUTATING + " (of Flexible Paxos)", "Ailijiang et al. 2017",
            "object stealing is additive over flexible quorums; ports onto "
            "anything refining Flexible Paxos", True),
    # Generalizations: Paxos refines them, not vice versa.
    Variant("Flexible Paxos", PAXOS_REFINES_IT, "Howard et al. 2016",
            "relaxes majority quorums to intersecting phase-1/phase-2 "
            "quorums; Paxos is the special case", False),
    # No refinement mapping in either direction.
    Variant("Fast Paxos", NO_REFINEMENT, "Lamport 2005",
            "super-majority fast quorums change the quorum structure; also "
            "misses Paxos transitions (no mapping either way)", False),
    Variant("Generalized Paxos", NO_REFINEMENT, "Lamport 2005",
            "agrees on command structs/partial orders, not a single "
            "sequence", False),
    Variant("EPaxos", NO_REFINEMENT, "Moraru et al. 2013",
            "leaderless dependency graphs; ordering decided at execution",
            False),
    Variant("Cheap Paxos", NO_REFINEMENT, "Lamport & Massa 2004",
            "auxiliary servers change the process/quorum model", False),
    Variant("Vertical Paxos", NO_REFINEMENT, "Lamport et al. 2009",
            "reconfiguration master changes ballots' meaning", False),
    Variant("Stoppable Paxos", NO_REFINEMENT, "Lamport et al. 2010",
            "stopping commands alter the transition structure", False),
    Variant("Disk Paxos", NO_REFINEMENT, "Gafni & Lamport 2003",
            "disk blocks replace acceptors", False),
    Variant("Fast Genuine Generalized Paxos", NO_REFINEMENT, "Sutra & Shapiro 2011",
            "generalized + fast quorums", False),
    Variant("Multicoordinated Paxos", NO_REFINEMENT, "Camargos et al. 2007",
            "fast/coordinated quorums as in Fast Paxos", False),
    Variant("NetPaxos", NO_REFINEMENT, "Dang et al. 2015",
            "network-level ordering assumptions replace acceptor logic", False),
    Variant("Speculative Paxos", NO_REFINEMENT, "Ports et al. 2015",
            "speculative execution with rollback has no Paxos counterpart",
            False),
    Variant("Omega Meets Paxos", NO_REFINEMENT, "Malkhi et al. 2005",
            "leader-election oracle changes liveness machinery", False),
)


def port_candidates() -> List[Variant]:
    return [v for v in FIGURE6 if v.port_candidate]


def by_classification(classification: str) -> List[Variant]:
    return [v for v in FIGURE6 if v.classification.startswith(classification)]


def render() -> str:
    lines = [
        "Figure 6: Paxos variants and optimizations",
        "=" * 78,
        f"{'variant':<24} {'classification':<38} portable?",
        "-" * 78,
    ]
    for variant in FIGURE6:
        flag = "yes" if variant.portable else "no"
        lines.append(f"{variant.name:<24} {variant.classification:<38} {flag}")
    lines.append("-" * 78)
    lines.append(
        f"{len(port_candidates())} of {len(FIGURE6)} studied variants are "
        f"candidates for the automatic port (the paper reports 6 on Paxos "
        f"plus WPaxos on Flexible Paxos)."
    )
    return "\n".join(lines)
