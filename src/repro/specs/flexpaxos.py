"""Flexible Paxos (Howard et al. 2016) — the §4.4 generalization claim.

Flexible Paxos relaxes MultiPaxos' majority rule: phase-1 quorums (Q1) and
phase-2 quorums (Q2) may be any sets as long as every Q1 intersects every
Q2.  The paper's Figure 6 places it in its own box: **Paxos refines
Flexible Paxos but not the other way around**, which is why a non-mutating
optimization of Flexible Paxos (WPaxos) can be ported *to* Paxos.

Both directions are mechanically checkable here:

* instantiate Flexible Paxos with Q1 = Q2 = majorities, and MultiPaxos
  refines it under the identity mapping (`test_paxos_refines_flexpaxos`);
* instantiate it with singleton phase-1 quorums (legal: they intersect
  full-set phase-2 quorums) and the reverse check fails — a
  single-promise `BecomeLeader` has no MultiPaxos counterpart.

The spec reuses `specs.multipaxos` wholesale and replaces exactly two
things: the phase-1 quorum guard and the (derived) chosen-ness notion.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.refinement import RefinementMapping
from repro.core.state import State
from repro.specs import multipaxos as mp


def majorities(acceptors: Tuple[str, ...]) -> FrozenSet[FrozenSet[str]]:
    need = len(acceptors) // 2 + 1
    return frozenset(
        frozenset(combo)
        for size in range(need, len(acceptors) + 1)
        for combo in itertools.combinations(acceptors, size)
    )


def singletons(acceptors: Tuple[str, ...]) -> FrozenSet[FrozenSet[str]]:
    return frozenset(frozenset({a}) for a in acceptors)


def full_set(acceptors: Tuple[str, ...]) -> FrozenSet[FrozenSet[str]]:
    return frozenset({frozenset(acceptors)})


def default_config(q1=None, q2=None, **kwargs) -> Dict[str, Any]:
    """MultiPaxos constants plus explicit quorum systems.  Defaults to the
    majority instantiation (the configuration Paxos refines)."""
    config = mp.default_config(**kwargs)
    acceptors = config["acceptors"]
    config["q1"] = q1 if q1 is not None else majorities(acceptors)
    config["q2"] = q2 if q2 is not None else majorities(acceptors)
    for one in config["q1"]:
        for two in config["q2"]:
            if not (one & two):
                raise ValueError(
                    f"invalid Flexible Paxos quorums: {set(one)} does not "
                    f"intersect {set(two)}"
                )
    return config


def build(constants: Dict[str, Any]) -> SpecMachine:
    """Flexible Paxos = MultiPaxos with the phase-1 quorum guard replaced."""
    base = mp.build(constants)
    q1 = constants["q1"]

    become_leader = base.action("BecomeLeader")
    replaced = tuple(
        Clause(
            name="phase1-quorum-in-Q1",
            kind="guard",
            fn=lambda s, p: frozenset({m[0] for m in p["S"]} | {p["a"]}) in q1
            or any(quorum <= frozenset({m[0] for m in p["S"]} | {p["a"]})
                   for quorum in q1),
        ) if clause.name == "quorum-with-self" else clause
        for clause in become_leader.clauses
    )
    actions = [
        action if action.name != "BecomeLeader" else Action(
            name="BecomeLeader", params=dict(become_leader.params),
            clauses=replaced,
        )
        for action in base.actions
    ]
    return base.replaced(name="FlexiblePaxos", actions=actions)


# -- derived chosen-ness over Q2 and the safety invariant -----------------------

def chosen_values(state: State, constants) -> Dict[int, set]:
    """ChosenAt over phase-2 quorums."""
    tally: Dict[Tuple[int, int, Any], set] = {}
    for acceptor in constants["acceptors"]:
        for vote in state["votes"][acceptor]:
            tally.setdefault(vote, set()).add(acceptor)
    result: Dict[int, set] = {}
    for (index, _ballot, value), voters in tally.items():
        if any(quorum <= frozenset(voters) for quorum in constants["q2"]):
            result.setdefault(index, set()).add(value)
    return result


def agreement(state: State, constants) -> bool:
    return all(len(vals) <= 1 for vals in chosen_values(state, constants).values())


INVARIANTS = {"agreement-q2": agreement}


def identity_mapping() -> RefinementMapping:
    """MultiPaxos and Flexible Paxos share their entire state space."""
    return RefinementMapping(name="identity", state_map=lambda s: s)
