"""MultiPaxos, finite specification (Appendix B.1).

Faithful to Figure 1 / Appendix B.1 with three deliberate clean-ups, each
documented in DESIGN.md:

* **Proposer-owned ballots.**  Ballot b belongs to acceptor `b mod n`; only
  the owner runs phase 1 / proposes at b.  (The appendix uses plain natural
  ballots shared by all proposers, which would let two leaders coexist at
  one ballot; real MultiPaxos deployments use the `b mod n` scheme.)
* **One value per ballot at the source.**  `Propose` refuses a second value
  for the same (instance, ballot) — the OneValuePerBallot invariant holds
  by construction instead of only being checked.
* **No commit state.**  Chosen-ness is derived from the `votes` history
  variable (`ChosenAt`), exactly as the appendix's `chosen` definition.

State:
  ballot[a]   - highestBallot
  leader[a]   - phase1Succeeded
  logs[a]     - FMap index -> (bal, val); (-1, None) when empty
  votes[a]    - frozenset of (index, bal, val) ever accepted by a
  proposed    - frozenset of (index, bal, val) proposed in phase 2
  msgs1a      - frozenset of (proposer, bal)
  msgs1b      - frozenset of (acceptor, bal, log snapshot)
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.state import FMap, State, fmap_const

EMPTY_ENTRY = (-1, None)


def default_config(n: int = 3, values: Tuple[str, ...] = ("a", "b"),
                   max_ballot: int = 2, max_index: int = 0) -> Dict[str, Any]:
    """Finite-instance constants.  Indexes run 0..max_index, ballots
    1..max_ballot (0 is the pre-phase-1 floor)."""
    return {
        "acceptors": tuple(f"p{i}" for i in range(n)),
        "values": tuple(values),
        "max_ballot": max_ballot,
        "max_index": max_index,
    }


def owner(constants: Dict[str, Any], ballot: int) -> str:
    acceptors = constants["acceptors"]
    return acceptors[ballot % len(acceptors)]


def majority(constants: Dict[str, Any]) -> int:
    return len(constants["acceptors"]) // 2 + 1


# -- domains -----------------------------------------------------------------

def _acceptors(c, s):
    return c["acceptors"]


def _ballots(c, s):
    return range(1, c["max_ballot"] + 1)


def _indexes(c, s):
    return range(c["max_index"] + 1)


def _values(c, s):
    return c["values"]


def _msgs1a(c, s):
    return s["msgs1a"]


def _promise_sets(c, s):
    """Subsets of msgs1b (grouped by ballot) that could form a quorum —
    enumerating per-ballot keeps this small."""
    by_ballot: Dict[int, list] = {}
    for msg in s["msgs1b"]:
        by_ballot.setdefault(msg[1], []).append(msg)
    result = []
    for msgs in by_ballot.values():
        senders = {m[0] for m in msgs}
        for size in range(1, len(msgs) + 1):
            for combo in itertools.combinations(sorted(msgs), size):
                if len({m[0] for m in combo}) == len(combo):  # distinct senders
                    result.append(frozenset(combo))
    return result


def _proposed(c, s):
    return s["proposed"]


# -- helpers --------------------------------------------------------------------

def merge_logs(constants, own_log: FMap, snapshots: Iterable[FMap]) -> FMap:
    """Phase1Succeed's safe-value selection: per index, the highest-ballot
    entry among the quorum's reports and the proposer's own log."""
    merged = {}
    for index in range(constants["max_index"] + 1):
        best = own_log[index]
        for snapshot in snapshots:
            entry = snapshot[index]
            if entry[0] > best[0]:
                best = entry
        merged[index] = best
    return FMap(merged)


def log_tail(constants, log: FMap) -> int:
    tail = -1
    for index in range(constants["max_index"] + 1):
        if log[index] != EMPTY_ENTRY:
            tail = max(tail, index)
    return tail


# -- clauses / actions ---------------------------------------------------------------

def _mk(name, kind, fn, var=None) -> Clause:
    return Clause(name=name, kind=kind, fn=fn, var=var)


def build(constants: Dict[str, Any]) -> SpecMachine:
    """Construct the MultiPaxos machine for the given finite constants."""
    maj = majority(constants)

    increase_ballot = Action(
        name="IncreaseHighestBallot",
        params={"a": _acceptors, "b": _ballots},
        clauses=(
            _mk("ballot-is-higher", "guard",
                lambda s, p: p["b"] > s["ballot"][p["a"]]),
            _mk("adopt-ballot", "update",
                lambda s, p: s["ballot"].set(p["a"], p["b"]), var="ballot"),
            _mk("drop-leadership", "update",
                lambda s, p: s["leader"].set(p["a"], False), var="leader"),
        ),
    )

    phase1a = Action(
        name="Phase1a",
        params={"a": _acceptors},
        clauses=(
            _mk("not-leader", "guard", lambda s, p: not s["leader"][p["a"]]),
            _mk("owns-ballot", "guard",
                lambda s, p: owner(constants, s["ballot"][p["a"]]) == p["a"]
                and s["ballot"][p["a"]] >= 1),
            _mk("send-1a", "update",
                lambda s, p: s["msgs1a"] | {(p["a"], s["ballot"][p["a"]])},
                var="msgs1a"),
        ),
    )

    phase1b = Action(
        name="Phase1b",
        params={"a": _acceptors, "m": _msgs1a},
        clauses=(
            _mk("1a-ballot-higher", "guard",
                lambda s, p: p["m"][1] > s["ballot"][p["a"]]),
            _mk("adopt-1a-ballot", "update",
                lambda s, p: s["ballot"].set(p["a"], p["m"][1]), var="ballot"),
            _mk("1b-drop-leadership", "update",
                lambda s, p: s["leader"].set(p["a"], False), var="leader"),
            _mk("send-1b", "update",
                lambda s, p: s["msgs1b"] | {(p["a"], p["m"][1], s["logs"][p["a"]])},
                var="msgs1b"),
        ),
    )

    become_leader = Action(
        name="BecomeLeader",
        params={"a": _acceptors, "S": _promise_sets},
        clauses=(
            _mk("not-yet-leader", "guard", lambda s, p: not s["leader"][p["a"]]),
            _mk("promises-match-ballot", "guard",
                lambda s, p: all(m[1] == s["ballot"][p["a"]] for m in p["S"])
                and len(p["S"]) > 0),
            _mk("owns-promised-ballot", "guard",
                lambda s, p: owner(constants, s["ballot"][p["a"]]) == p["a"]),
            _mk("quorum-with-self", "guard",
                lambda s, p: len({m[0] for m in p["S"]} | {p["a"]}) >= maj),
            _mk("merge-safe-values", "update",
                lambda s, p: s["logs"].set(p["a"], merge_logs(
                    constants, s["logs"][p["a"]], [m[2] for m in p["S"]])),
                var="logs"),
            _mk("become-leader", "update",
                lambda s, p: s["leader"].set(p["a"], True), var="leader"),
        ),
    )

    propose = Action(
        name="Propose",
        params={"a": _acceptors, "i": _indexes, "v": _values},
        clauses=(
            _mk("is-leader", "guard", lambda s, p: s["leader"][p["a"]]),
            _mk("value-safe-at-instance", "guard",
                lambda s, p: s["logs"][p["a"]][p["i"]][1] in (p["v"], None)),
            _mk("dense-proposals", "guard",
                lambda s, p: p["i"] <= log_tail(constants, s["logs"][p["a"]]) + 1),
            _mk("one-value-per-ballot", "guard",
                lambda s, p: not any(
                    t[0] == p["i"] and t[1] == s["ballot"][p["a"]] and t[2] != p["v"]
                    for t in s["proposed"])),
            _mk("add-proposal", "update",
                lambda s, p: s["proposed"] | {(p["i"], s["ballot"][p["a"]], p["v"])},
                var="proposed"),
        ),
    )

    accept = Action(
        name="Accept",
        params={"a": _acceptors, "pv": _proposed},
        clauses=(
            _mk("accept-ballot-ok", "guard",
                lambda s, p: p["pv"][1] >= s["ballot"][p["a"]]),
            _mk("accept-adopt-ballot", "update",
                lambda s, p: s["ballot"].set(p["a"], p["pv"][1]), var="ballot"),
            _mk("accept-maybe-demote", "update",
                lambda s, p: s["leader"].set(p["a"], False)
                if p["pv"][1] > s["ballot"][p["a"]] else s["leader"],
                var="leader"),
            _mk("record-vote", "update",
                lambda s, p: s["votes"].set(
                    p["a"], s["votes"][p["a"]] | {p["pv"]}),
                var="votes"),
            _mk("write-log", "update",
                lambda s, p: s["logs"].set(p["a"], s["logs"][p["a"]].set(
                    p["pv"][0], (p["pv"][1], p["pv"][2]))),
                var="logs"),
        ),
    )

    def init(c) -> Iterable[State]:
        empty_log = fmap_const(range(c["max_index"] + 1), EMPTY_ENTRY)
        yield State({
            "ballot": fmap_const(c["acceptors"], 0),
            "leader": fmap_const(c["acceptors"], False),
            "logs": fmap_const(c["acceptors"], empty_log),
            "votes": fmap_const(c["acceptors"], frozenset()),
            "proposed": frozenset(),
            "msgs1a": frozenset(),
            "msgs1b": frozenset(),
        })

    return SpecMachine(
        name="MultiPaxos",
        variables=("ballot", "leader", "logs", "votes", "proposed",
                   "msgs1a", "msgs1b"),
        constants=constants,
        init=init,
        actions=[increase_ballot, phase1a, phase1b, become_leader, propose, accept],
    )


# -- derived notions + invariants -----------------------------------------------------

def chosen_values(state: State, constants) -> Dict[int, set]:
    """ChosenAt: values voted for by a quorum at the same ballot."""
    maj = majority(constants)
    tally: Dict[Tuple[int, int, Any], set] = {}
    for acceptor in constants["acceptors"]:
        for vote in state["votes"][acceptor]:
            tally.setdefault(vote, set()).add(acceptor)
    result: Dict[int, set] = {}
    for (index, _ballot, value), voters in tally.items():
        if len(voters) >= maj:
            result.setdefault(index, set()).add(value)
    return result


def agreement(state: State, constants) -> bool:
    """At most one value is ever chosen per instance."""
    return all(len(vals) <= 1 for vals in chosen_values(state, constants).values())


def one_value_per_ballot(state: State, constants) -> bool:
    seen: Dict[Tuple[int, int], Any] = {}
    for acceptor in constants["acceptors"]:
        for index, ballot, value in state["votes"][acceptor]:
            key = (index, ballot)
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
    return True


INVARIANTS = {
    "agreement": agreement,
    "one-value-per-ballot": one_value_per_ballot,
}
