"""Coordinated Paxos — Mencius' substrate (Appendix B.5) — as a
non-mutating optimization of MultiPaxos.

Mencius partitions instances round-robin: acceptor `i mod n` is instance
i's *default leader*.  The optimization adds skip machinery:

New variables
  skipTags         - skipTags[a][i]: a believes instance i is a default no-op
  executable       - executable[a]: (i, v) pairs a may execute before commit
  proposedDefaults - proposals made by an instance's default leader
                     (B.5 widens `proposedValues` with an `isDefault` flag;
                     widening a base variable would be a mutation, so the
                     flag lives in a parallel new set)
  skipMsgs         - skip tags attached to 1b messages (B.5 widens msgs1b;
                     same treatment)

Modified subactions (Case-3 material for the port):
  Propose      + guard: only the default leader proposes real values (a
                 recovery leader may only propose no-op or re-propose an
                 already-accepted value), and never over its own skip
               + update: track default-leader proposals; a default leader
                 proposing no-op marks its own skip tag immediately
  Accept       + update: accepting a default leader's no-op sets the skip
                 tag and makes the instance executable without phase 2
                 (Figure 14 Phase2b lines 26-29)
  Phase1b      + update: attach skip tags to the promise (Figure 14 line 3)
  BecomeLeader + update: adopt the skip tags reported alongside the safe
                 values (Figure 14 Phase1Succeed lines 9-10)

The headline invariant: an executable no-op can never conflict with a
chosen real value (`executable_consistent`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.state import FMap, State, fmap_const
from repro.specs import multipaxos as mp

NOP = "nop"
NEW_VARIABLES = ("skipTags", "executable", "proposedDefaults", "skipMsgs")


def default_config(n: int = 3, values: Tuple[str, ...] = (NOP, "v"),
                   max_ballot: int = 2, max_index: int = 1) -> Dict[str, Any]:
    if NOP not in values:
        raise ValueError("Mencius needs the no-op value in the value set")
    return mp.default_config(n=n, values=values, max_ballot=max_ballot,
                             max_index=max_index)


def instance_owner(constants, index: int) -> str:
    return constants["acceptors"][index % len(constants["acceptors"])]


def _mk(name, kind, fn, var=None) -> Clause:
    return Clause(name=name, kind=kind, fn=fn, var=var)


# -- the added clauses ---------------------------------------------------------

def propose_clauses(constants) -> Tuple[Clause, ...]:
    def allowed(s, p) -> bool:
        a, i, v = p["a"], p["i"], p["v"]
        if s["skipTags"][a][i] and v != NOP:
            return False  # never propose a real value over our own skip
        if instance_owner(constants, i) == a:
            return True  # the default leader proposes freely
        # A recovery leader proposes no-op, or re-proposes a value it
        # learned in phase 1 (already in its own log).
        return v == NOP or s["logs"][a][i][1] == v

    def track_defaults(s, p):
        a, i, v = p["a"], p["i"], p["v"]
        if instance_owner(constants, i) != a:
            return s["proposedDefaults"]
        return s["proposedDefaults"] | {(i, s["ballot"][a], v)}

    def own_skip(s, p):
        a, i, v = p["a"], p["i"], p["v"]
        if instance_owner(constants, i) == a and v == NOP:
            return s["skipTags"].set(a, s["skipTags"][a].set(i, True))
        return s["skipTags"]

    return (
        _mk("mencius-coordinated-propose", "guard", allowed),
        _mk("mencius-track-defaults", "update", track_defaults, var="proposedDefaults"),
        _mk("mencius-own-skip", "update", own_skip, var="skipTags"),
    )


def accept_clauses(constants) -> Tuple[Clause, ...]:
    def skip_on_default_nop(s, p):
        a, pv = p["a"], p["pv"]
        if pv[2] == NOP and pv in s["proposedDefaults"]:
            return s["skipTags"].set(a, s["skipTags"][a].set(pv[0], True))
        return s["skipTags"]

    def executable_on_default_nop(s, p):
        a, pv = p["a"], p["pv"]
        if pv[2] == NOP and pv in s["proposedDefaults"]:
            return s["executable"].set(a, s["executable"][a] | {(pv[0], pv[2])})
        return s["executable"]

    return (
        _mk("mencius-skip-on-nop", "update", skip_on_default_nop, var="skipTags"),
        _mk("mencius-executable-on-nop", "update", executable_on_default_nop,
            var="executable"),
    )


def phase1b_clauses(constants) -> Tuple[Clause, ...]:
    def attach_tags(s, p):
        a, m = p["a"], p["m"]
        return s["skipMsgs"] | {(a, m[1], s["skipTags"][a])}

    return (
        _mk("mencius-attach-skiptags", "update", attach_tags, var="skipMsgs"),
    )


def become_leader_clauses(constants) -> Tuple[Clause, ...]:
    max_index = constants["max_index"]

    def merge_tags(s, p):
        a, S = p["a"], p["S"]
        tags = s["skipTags"][a]
        for index in range(max_index + 1):
            best_bal = s["logs"][a][index][0]
            best_src = None
            for msg in S:
                entry = msg[2][index]
                if entry[0] > best_bal:
                    best_bal = entry[0]
                    best_src = (msg[0], msg[1])
            if best_src is None:
                continue
            for acc, bal, tag_map in s["skipMsgs"]:
                if (acc, bal) == best_src and tag_map[index]:
                    tags = tags.set(index, True)
        return s["skipTags"].set(a, tags)

    return (
        _mk("mencius-merge-skiptags", "update", merge_tags, var="skipTags"),
    )


def build(constants: Dict[str, Any]) -> SpecMachine:
    base = mp.build(constants)
    by_name = {action.name: action for action in base.actions}

    actions = [
        by_name["IncreaseHighestBallot"],
        by_name["Phase1a"],
        by_name["Phase1b"].with_clauses(phase1b_clauses(constants)),
        by_name["BecomeLeader"].with_clauses(become_leader_clauses(constants)),
        by_name["Propose"].with_clauses(propose_clauses(constants)),
        by_name["Accept"].with_clauses(accept_clauses(constants)),
    ]

    def init(c) -> Iterable[State]:
        no_tags = fmap_const(range(c["max_index"] + 1), False)
        for base_state in base.init(c):
            yield base_state.assign({
                "skipTags": fmap_const(c["acceptors"], no_tags),
                "executable": fmap_const(c["acceptors"], frozenset()),
                "proposedDefaults": frozenset(),
                "skipMsgs": frozenset(),
            })

    return SpecMachine(
        name="CoordinatedPaxos",
        variables=base.variables + NEW_VARIABLES,
        constants=constants,
        init=init,
        actions=actions,
    )


# -- invariants ------------------------------------------------------------------

def executable_consistent(state: State, constants) -> bool:
    """An executable entry never conflicts with a chosen value: learning a
    default no-op without phase 2 is safe."""
    chosen = mp.chosen_values(state, constants)
    for acceptor in constants["acceptors"]:
        for index, value in state["executable"][acceptor]:
            for chosen_value in chosen.get(index, set()):
                if chosen_value != value:
                    return False
    return True


def skip_tags_sound(state: State, constants) -> bool:
    """A skip tag at the instance's own default leader implies the leader
    proposed (or adopted) the no-op there — it will never propose a real
    value at that instance (the guard enforces it; this checks the tag's
    provenance)."""
    for acceptor in constants["acceptors"]:
        for index in range(constants["max_index"] + 1):
            if not state["skipTags"][acceptor][index]:
                continue
            owner = instance_owner(constants, index)
            nop_seen = any(
                t[0] == index and t[2] == NOP for t in state["proposedDefaults"]
            )
            if not nop_seen:
                return False
    return True


MENCIUS_INVARIANTS = {
    "executable-consistent": executable_consistent,
    "skip-tags-sound": skip_tags_sound,
}
