"""Raft*, finite specification (Appendix B.2), and the Figure 3 refinement
mapping onto MultiPaxos.

The spec mirrors Figure 2 (including the blue Raft* additions) with the
simplifications Appendix B/C themselves adopt, documented in DESIGN.md:

* vote replies carry the voter's **full log** (Appendix C: "without loss of
  generality, we can still assume Raft* includes the full log");
* append messages carry the **full log prefix** 0..lIndex, so one
  AppendEntries step maps to a bounded sequence of Paxos Propose/Accept
  steps (the paper's stuttering argument, Appendix C 2.4/2.5);
* the per-entry ballot *is* the Paxos-mapped ballot (`logBallot` in B.2);
  merged safe entries keep their reported ballot until re-accepted, exactly
  as B.2's `UpdateLog` writes `logBallot' = reported ballot`;
* terms are proposer-owned (`t mod n`), matching the ballot discipline of
  our MultiPaxos spec.

Raft-vs-Raft* differences live in two guards:
* `no-erase`: an acceptor rejects appends that would shorten its log
  (`lastIndex <= pe.lIndex`, Figure 2b line 16);
* vote replies include extras / BecomeLeader merges safe values.

`repro.specs.raft` relaxes these to plain Raft and demonstrates §3's
negative result.

State:
  term[a]     - currentTerm          (maps to ballot)
  isleader[a] - leader flag          (maps to phase1Succeeded)
  rlog[a]     - tuple of (bal, val)  (maps to instances; index = position)
  votes[a]    - history of (index, bal, val) acceptances (maps to votes)
  proposed    - (index, bal, val) proposals      (maps to proposedValues)
  vmsgs1a     - (candidate, term, last_index, last_bal)   (maps to msgs1a)
  vmsgs1b     - (voter, term, log tuple)                  (maps to msgs1b)
  pmsgs       - append messages (term, entries tuple); dropped by the mapping
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.refinement import RefinementMapping
from repro.core.state import FMap, State, fmap_const
from repro.specs import multipaxos as mp

EMPTY_ENTRY = mp.EMPTY_ENTRY


def default_config(**kwargs) -> Dict[str, Any]:
    return mp.default_config(**kwargs)


# -- domains ------------------------------------------------------------------

def _acceptors(c, s):
    return c["acceptors"]


def _terms(c, s):
    return range(1, c["max_ballot"] + 1)


def _values(c, s):
    return c["values"]


def _vmsgs1a(c, s):
    return s["vmsgs1a"]


def _pmsgs(c, s):
    return s["pmsgs"]


def _vote_sets(c, s):
    import itertools

    by_term: Dict[int, list] = {}
    for msg in s["vmsgs1b"]:
        by_term.setdefault(msg[1], []).append(msg)
    result = []
    for msgs in by_term.values():
        for size in range(1, len(msgs) + 1):
            for combo in itertools.combinations(sorted(msgs), size):
                if len({m[0] for m in combo}) == len(combo):
                    result.append(frozenset(combo))
    return result


# -- log helpers -----------------------------------------------------------------

def last_bal(log: Tuple) -> int:
    return log[-1][0] if log else -1


def up_to_date(candidate_last_index: int, candidate_last_bal: int, log: Tuple) -> bool:
    """Figure 2a's vote restriction: the candidate's log must not be behind
    the voter's, comparing (last ballot, length)."""
    mine = (last_bal(log), len(log) - 1)
    theirs = (candidate_last_bal, candidate_last_index)
    return theirs >= mine


def merged_log(own: Tuple, snapshots: Iterable[Tuple]) -> Tuple:
    """BecomeLeader (Figure 2a lines 22-29): keep own entries; beyond them,
    adopt the highest-ballot entry per index among the quorum's extras."""
    length = max([len(own)] + [len(snap) for snap in snapshots])
    out = list(own)
    for index in range(len(own), length):
        best = None
        for snap in snapshots:
            if index < len(snap):
                if best is None or snap[index][0] > best[0]:
                    best = snap[index]
        if best is None:
            break  # hole: cannot extend further
        out.append(best)
    return tuple(out)


def _mk(name, kind, fn, var=None) -> Clause:
    return Clause(name=name, kind=kind, fn=fn, var=var)


# -- machine ------------------------------------------------------------------------

def build(constants: Dict[str, Any]) -> SpecMachine:
    maj = mp.majority(constants)
    max_index = constants["max_index"]

    increase_term = Action(
        name="IncreaseTerm",
        params={"a": _acceptors, "t": _terms},
        clauses=(
            _mk("term-is-higher", "guard", lambda s, p: p["t"] > s["term"][p["a"]]),
            _mk("adopt-term", "update",
                lambda s, p: s["term"].set(p["a"], p["t"]), var="term"),
            _mk("drop-leadership", "update",
                lambda s, p: s["isleader"].set(p["a"], False), var="isleader"),
        ),
    )

    request_vote = Action(
        name="RequestVote",
        params={"a": _acceptors},
        clauses=(
            _mk("not-leader", "guard", lambda s, p: not s["isleader"][p["a"]]),
            _mk("owns-term", "guard",
                lambda s, p: mp.owner(constants, s["term"][p["a"]]) == p["a"]
                and s["term"][p["a"]] >= 1),
            _mk("send-requestvote", "update",
                lambda s, p: s["vmsgs1a"] | {(
                    p["a"], s["term"][p["a"]],
                    len(s["rlog"][p["a"]]) - 1, last_bal(s["rlog"][p["a"]]),
                )},
                var="vmsgs1a"),
        ),
    )

    receive_vote = Action(
        name="ReceiveVote",
        params={"a": _acceptors, "m": _vmsgs1a},
        clauses=(
            _mk("vote-term-higher", "guard",
                lambda s, p: p["m"][1] > s["term"][p["a"]]),
            _mk("candidate-up-to-date", "guard",
                lambda s, p: up_to_date(p["m"][2], p["m"][3], s["rlog"][p["a"]])),
            _mk("adopt-vote-term", "update",
                lambda s, p: s["term"].set(p["a"], p["m"][1]), var="term"),
            _mk("vote-drop-leadership", "update",
                lambda s, p: s["isleader"].set(p["a"], False), var="isleader"),
            _mk("send-vote-reply", "update",
                lambda s, p: s["vmsgs1b"] | {(p["a"], p["m"][1], s["rlog"][p["a"]])},
                var="vmsgs1b"),
        ),
    )

    become_leader = Action(
        name="BecomeLeader",
        params={"a": _acceptors, "S": _vote_sets},
        clauses=(
            _mk("not-yet-leader", "guard", lambda s, p: not s["isleader"][p["a"]]),
            _mk("votes-match-term", "guard",
                lambda s, p: all(m[1] == s["term"][p["a"]] for m in p["S"])
                and len(p["S"]) > 0),
            _mk("owns-voted-term", "guard",
                lambda s, p: mp.owner(constants, s["term"][p["a"]]) == p["a"]),
            _mk("vote-quorum-with-self", "guard",
                lambda s, p: len({m[0] for m in p["S"]} | {p["a"]}) >= maj),
            _mk("merge-extra-entries", "update",
                lambda s, p: s["rlog"].set(p["a"], merged_log(
                    s["rlog"][p["a"]], [m[2] for m in p["S"]])),
                var="rlog"),
            _mk("become-leader", "update",
                lambda s, p: s["isleader"].set(p["a"], True), var="isleader"),
        ),
    )

    def propose_prefix(s, p) -> Tuple:
        """The (index, term, value) tuples a ProposeEntries adds: the whole
        log prefix re-stamped at the current term, plus the new value."""
        a, v = p["a"], p["v"]
        term = s["term"][a]
        log = s["rlog"][a]
        tuples = [(j, term, log[j][1]) for j in range(len(log))]
        tuples.append((len(log), term, v))
        return tuple(tuples)

    propose_entries = Action(
        name="ProposeEntries",
        params={"a": _acceptors, "v": _values},
        clauses=(
            _mk("is-leader", "guard", lambda s, p: s["isleader"][p["a"]]),
            _mk("log-has-room", "guard",
                lambda s, p: len(s["rlog"][p["a"]]) <= max_index),
            _mk("one-value-per-ballot", "guard",
                lambda s, p: all(
                    not any(t2[0] == t[0] and t2[1] == t[1] and t2[2] != t[2]
                            for t2 in s["proposed"])
                    for t in propose_prefix(s, p))),
            _mk("add-proposals", "update",
                lambda s, p: s["proposed"] | set(propose_prefix(s, p)),
                var="proposed"),
            _mk("send-append", "update",
                lambda s, p: s["pmsgs"] | {(
                    s["term"][p["a"]],
                    tuple((s["term"][p["a"]], t[2]) for t in propose_prefix(s, p)),
                )},
                var="pmsgs"),
        ),
    )

    accept_entries = Action(
        name="AcceptEntries",
        params={"a": _acceptors, "pe": _pmsgs},
        clauses=(
            _mk("append-term-ok", "guard",
                lambda s, p: p["pe"][0] >= s["term"][p["a"]]),
            _mk("no-erase", "guard",
                lambda s, p: len(p["pe"][1]) >= len(s["rlog"][p["a"]])),
            _mk("adopt-append-term", "update",
                lambda s, p: s["term"].set(p["a"], p["pe"][0]), var="term"),
            _mk("append-maybe-demote", "update",
                lambda s, p: s["isleader"].set(p["a"], False)
                if p["pe"][0] > s["term"][p["a"]] else s["isleader"],
                var="isleader"),
            _mk("replace-log", "update",
                lambda s, p: s["rlog"].set(p["a"], p["pe"][1]), var="rlog"),
            _mk("record-votes", "update",
                lambda s, p: s["votes"].set(p["a"], s["votes"][p["a"]] | {
                    (j, p["pe"][0], entry[1])
                    for j, entry in enumerate(p["pe"][1])
                }),
                var="votes"),
        ),
    )

    def init(c) -> Iterable[State]:
        yield State({
            "term": fmap_const(c["acceptors"], 0),
            "isleader": fmap_const(c["acceptors"], False),
            "rlog": fmap_const(c["acceptors"], ()),
            "votes": fmap_const(c["acceptors"], frozenset()),
            "proposed": frozenset(),
            "vmsgs1a": frozenset(),
            "vmsgs1b": frozenset(),
            "pmsgs": frozenset(),
        })

    return SpecMachine(
        name="RaftStar",
        variables=("term", "isleader", "rlog", "votes", "proposed",
                   "vmsgs1a", "vmsgs1b", "pmsgs"),
        constants=constants,
        init=init,
        actions=[increase_term, request_vote, receive_vote, become_leader,
                 propose_entries, accept_entries],
    )


# -- the Figure 3 refinement mapping --------------------------------------------------

def log_as_instances(constants, log: Tuple) -> FMap:
    entries = {}
    for index in range(constants["max_index"] + 1):
        entries[index] = log[index] if index < len(log) else EMPTY_ENTRY
    return FMap(entries)


def raftstar_to_multipaxos(constants) -> RefinementMapping:
    """Figure 3: currentTerm -> ballot, isLeader -> phase1Succeeded,
    entries -> instances, requestVote -> prepare, requestVoteOK -> prepareOK;
    append messages have no Paxos-state counterpart (they are implied
    accepts) and are dropped."""

    def state_map(state: State) -> State:
        acceptors = constants["acceptors"]
        return State({
            "ballot": state["term"],
            "leader": state["isleader"],
            "logs": FMap({
                a: log_as_instances(constants, state["rlog"][a]) for a in acceptors
            }),
            "votes": state["votes"],
            "proposed": state["proposed"],
            "msgs1a": frozenset((m[0], m[1]) for m in state["vmsgs1a"]),
            "msgs1b": frozenset(
                (m[0], m[1], log_as_instances(constants, m[2]))
                for m in state["vmsgs1b"]
            ),
        })

    return RefinementMapping(
        name="figure-3",
        state_map=state_map,
        action_map={
            "IncreaseTerm": ("IncreaseHighestBallot",),
            "RequestVote": ("Phase1a",),
            "ReceiveVote": ("Phase1b",),
            "BecomeLeader": ("BecomeLeader",),
            "ProposeEntries": ("Propose",),
            "AcceptEntries": ("Accept",),
        },
    )


# -- invariants --------------------------------------------------------------------------

def election_safety(state: State, constants) -> bool:
    """At most one leader per term."""
    leaders: Dict[int, str] = {}
    for acceptor in constants["acceptors"]:
        if state["isleader"][acceptor]:
            term = state["term"][acceptor]
            if term in leaders and leaders[term] != acceptor:
                return False
            leaders[term] = acceptor
    return True


def agreement(state: State, constants) -> bool:
    """State-machine safety via the derived chosen set (same definition as
    MultiPaxos, over the mapped votes)."""
    return mp.agreement(state, constants)


INVARIANTS = {
    "agreement": agreement,
    "election-safety": election_safety,
}
