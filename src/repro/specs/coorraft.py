"""Coordinated Raft* / Raft*-Mencius (Appendix B.6), **generated** by the
porting algorithm.

B∆ = port(A = MultiPaxos, A∆ = Coordinated Paxos, B = Raft*, f = Figure 3).

This port is the paper's showcase for why hand-porting goes wrong (§4.4 /
A.4): Paxos' `Phase2b` is implied by *two* Raft* subactions — the leader's
local append inside `ProposeEntries`+`AcceptEntries` on itself, and the
follower-side `AcceptEntries` — and a batched append implies one `Accept`
per entry.  The expansion machinery applies Mencius' Phase2b clauses to
every implied step, so no case is missed ("if the handworked solution only
applies changes on Phase2b to ReceiveAppend ... the solution could miss
some optimization opportunities or even generate an incorrect protocol").
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.machine import SpecMachine
from repro.core.porting import (
    PortSpec,
    port_optimization,
    ported_to_optimized_mapping,
    ported_to_target_mapping,
)
from repro.core.refinement import RefinementMapping
from repro.specs import coorpaxos
from repro.specs import multipaxos as mp
from repro.specs import raftstar as rs
from repro.specs import rql


def port_spec(constants) -> PortSpec:
    """Same Figure 3 correspondence/expansions as the PQL port, plus the
    parameter mapping ReceiveVote.m -> Phase1b.m (the Mencius diff modifies
    Phase1b, which reads its message parameter)."""
    spec = PortSpec(
        state_map=rs.raftstar_to_multipaxos(constants),
        correspondence=rql.correspondence(),
        expansions=rql.expansions(constants),
        param_maps={
            # requestVote (candidate, term, lastIdx, lastBal) -> prepare
            # (proposer, ballot): the Figure 3 message mapping.
            ("ReceiveVote", "Phase1b"): lambda p: {"m": (p["m"][0], p["m"][1])},
        },
    )
    return spec


def build(constants: Dict[str, Any] = None) -> SpecMachine:
    constants = constants or coorpaxos.default_config()
    A = mp.build(constants)
    A_delta = coorpaxos.build(constants)
    B = rs.build(constants)
    return port_optimization(A, A_delta, B, port_spec(constants),
                             name="CoordinatedRaftStar")


def mapping_to_coorpaxos(constants) -> RefinementMapping:
    A = mp.build(constants)
    A_delta = coorpaxos.build(constants)
    B = rs.build(constants)
    return ported_to_optimized_mapping(port_spec(constants), A, A_delta, B)


def mapping_to_raftstar(constants) -> RefinementMapping:
    return ported_to_target_mapping(rs.build(constants))


def mencius_invariants(constants) -> Dict[str, Any]:
    """Coordinated Paxos' invariants evaluated on the ported state."""
    mapping = rs.raftstar_to_multipaxos(constants)
    raftstar_vars = rs.build(constants).variables

    def combined(state):
        mapped = mapping(state.restrict(raftstar_vars))
        return mapped.assign({v: state[v] for v in coorpaxos.NEW_VARIABLES})

    return {
        "executable-consistent":
            lambda s, c: coorpaxos.executable_consistent(combined(s), c),
        "skip-tags-sound":
            lambda s, c: coorpaxos.skip_tags_sound(combined(s), c),
    }
