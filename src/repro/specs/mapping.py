"""Figure 3: the mapping between Raft* and MultiPaxos, as data.

The table is the paper's tabular artifact for §3; `render()` regenerates it
(see `benchmarks/test_fig3_mapping.py`).  The *function* rows are also used
as the correspondence input to the porting algorithm, and
`verified_correspondence()` cross-checks the table against what the
refinement checker actually observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class MappingRow:
    section: str  # variables | messages | functions
    raftstar: str
    multipaxos: str
    note: str = ""


FIGURE3: Tuple[MappingRow, ...] = (
    # variables (per server)
    MappingRow("variables", "Quorums", "Quorums", "constant"),
    MappingRow("variables", "currentTerm", "ballot"),
    MappingRow("variables", "isLeader", "phase1Succeeded"),
    MappingRow("variables", "entries with index <= commitIndex", "chosenSet"),
    # variables (per instance)
    MappingRow("variables", "entry.index", "instance.id"),
    MappingRow("variables", "entry.val", "instance.val"),
    MappingRow("variables", "entry.bal", "instance.bal"),
    # messages
    MappingRow("messages", "requestVote", "prepare"),
    MappingRow("messages", "requestVoteOK", "prepareOK"),
    MappingRow("messages", "(im/ex) append", "accept", "im = implicit (self)"),
    MappingRow("messages", "(im/ex) appendOK", "acceptOK", "im = implicit (self)"),
    # functions
    MappingRow("functions", "RequestVote", "Phase1a"),
    MappingRow("functions", "RecieveVote", "Phase1b"),
    MappingRow("functions", "BecomeLeader", "Phase1Succeed + Phase2a + Phase2b"),
    MappingRow("functions", "AppendEntries", "Phase2a + Phase2b"),
    MappingRow("functions", "RecieveAppend", "Phase2b"),
    MappingRow("functions", "LeaderLearn", "Learn"),
)


def rows(section: str = None) -> List[MappingRow]:
    if section is None:
        return list(FIGURE3)
    return [row for row in FIGURE3 if row.section == section]


def render() -> str:
    """The Figure 3 table, paper-style."""
    lines = ["Figure 3: Mapping between Raft* and MultiPaxos",
             "=" * 60]
    for section in ("variables", "messages", "functions"):
        lines.append(f"\n[{section}]")
        lines.append(f"{'Raft*':<38} {'MultiPaxos':<30}")
        lines.append("-" * 60)
        for row in rows(section):
            note = f"  ({row.note})" if row.note else ""
            lines.append(f"{row.raftstar:<38} {row.multipaxos:<30}{note}")
    return "\n".join(lines)


def spec_correspondence() -> dict:
    """The Figure 3 function table at the granularity of our executable
    specs (where append/accept messages are folded into the propose/accept
    subactions)."""
    return {
        "IncreaseTerm": ("IncreaseHighestBallot",),
        "RequestVote": ("Phase1a",),
        "ReceiveVote": ("Phase1b",),
        "BecomeLeader": ("BecomeLeader",),
        "ProposeEntries": ("Propose",),
        "AcceptEntries": ("Accept",),
    }
