"""Paxos Quorum Lease, finite specification (Appendix B.3).

PQL as a *non-mutating optimization* of `specs.multipaxos`:

New variables
  timer       - the global lease timer (bounded; B.3 assumes a global timer)
  leases      - leases[p][q]: expiry of the lease p granted to q
  applyIndex  - applyIndex[a]: last instance a has applied
  localReads  - history of local reads (acceptor, applyIndex, prefix values)
                — observable for the linearizability invariant

Added subactions (B.3): `GrantLease`, `UpdateTimer`, `Apply`, `ReadAtLocal`.
Modified subactions: none in this formulation — B.3's lease checks live in
the *derived* `CanCommitAt`/`executable` notions, which read MultiPaxos'
`votes` without touching them, so the lease machinery is purely additive.

The key safety argument of §4.4/A.1 is checkable as `LEASE_INVARIANTS`:
every executable value is chosen AND known to every active lease holder
(quorum-intersection does the work), and everything a local read returns is
a chosen prefix.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.state import FMap, State, fmap_const
from repro.specs import multipaxos as mp

NEW_VARIABLES = ("timer", "leases", "applyIndex", "localReads")


def default_config(n: int = 3, values: Tuple[str, ...] = ("a",),
                   max_ballot: int = 1, max_index: int = 0,
                   max_timer: int = 1, lease_duration: int = 1,
                   holders: Tuple[str, ...] = None) -> Dict[str, Any]:
    config = mp.default_config(n=n, values=values, max_ballot=max_ballot,
                               max_index=max_index)
    config["max_timer"] = max_timer
    config["lease_duration"] = lease_duration
    config["holders"] = holders if holders is not None else config["acceptors"]
    return config


# -- lease-derived notions (read-only over MultiPaxos state) --------------------

def _quorums(constants) -> Iterable[frozenset]:
    acceptors = constants["acceptors"]
    maj = mp.majority(constants)
    for combo in itertools.combinations(acceptors, maj):
        yield frozenset(combo)


def lease_is_active(state, constants, holder: str) -> bool:
    """LeaseIsActive(p): p holds unexpired leases from some quorum."""
    timer = state["timer"]
    return any(
        all(state["leases"][grantor][holder] >= timer for grantor in quorum)
        for quorum in _quorums(constants)
    )


def granted_holders(state, constants, quorum) -> frozenset:
    timer = state["timer"]
    return frozenset(
        holder for holder in constants["holders"]
        if any(state["leases"][grantor][holder] >= timer for grantor in quorum)
    )


def can_commit_at(state, constants, index: int, ballot: int, value) -> bool:
    """CanCommitAt: chosen by a quorum all of whose granted lease holders
    also voted (the write-waits-for-holders rule)."""
    vote = (index, ballot, value)
    for quorum in _quorums(constants):
        if not all(vote in state["votes"][acceptor] for acceptor in quorum):
            continue
        if all(vote in state["votes"][holder]
               for holder in granted_holders(state, constants, quorum)):
            return True
    return False


def executable_set(state, constants) -> frozenset:
    out = set()
    for acceptor in constants["acceptors"]:
        for vote in state["votes"][acceptor]:
            if can_commit_at(state, constants, *vote):
                out.add(vote)
    return frozenset(out)


# -- added subactions ------------------------------------------------------------

def _acceptors(c, s):
    return c["acceptors"]


def _holders(c, s):
    return c["holders"]


def _mk(name, kind, fn, var=None) -> Clause:
    return Clause(name=name, kind=kind, fn=fn, var=var)


def added_actions(constants) -> list:
    grant_lease = Action(
        name="GrantLease",
        params={"p": _acceptors, "q": _holders},
        clauses=(
            _mk("grant-writes-lease", "update",
                lambda s, p: s["leases"].set(p["p"], s["leases"][p["p"]].set(
                    p["q"], s["timer"] + constants["lease_duration"])),
                var="leases"),
        ),
    )

    update_timer = Action(
        name="UpdateTimer",
        params={},
        clauses=(
            _mk("timer-bounded", "guard",
                lambda s, p: s["timer"] < constants["max_timer"]),
            _mk("tick", "update", lambda s, p: s["timer"] + 1, var="timer"),
        ),
    )

    def _next_apply(s, p):
        return s["applyIndex"][p["a"]] + 1

    apply_action = Action(
        name="Apply",
        params={"a": _acceptors},
        clauses=(
            _mk("next-instance-exists", "guard",
                lambda s, p: _next_apply(s, p) <= constants["max_index"]
                and s["logs"][p["a"]][_next_apply(s, p)] != mp.EMPTY_ENTRY),
            _mk("next-instance-committable", "guard",
                lambda s, p: can_commit_at(
                    s, constants, _next_apply(s, p),
                    s["logs"][p["a"]][_next_apply(s, p)][0],
                    s["logs"][p["a"]][_next_apply(s, p)][1])),
            _mk("advance-apply-index", "update",
                lambda s, p: s["applyIndex"].set(p["a"], _next_apply(s, p)),
                var="applyIndex"),
        ),
    )

    def _read_snapshot(s, p):
        a = p["a"]
        upto = s["applyIndex"][a]
        values = tuple(s["logs"][a][i][1] for i in range(upto + 1))
        return s["localReads"] | {(a, upto, values)}

    read_local = Action(
        name="ReadAtLocal",
        params={"a": _acceptors},
        clauses=(
            _mk("holds-quorum-lease", "guard",
                lambda s, p: lease_is_active(s, constants, p["a"])),
            _mk("applied-everything-accepted", "guard",
                lambda s, p: mp.log_tail(constants, s["logs"][p["a"]])
                == s["applyIndex"][p["a"]]),
            _mk("record-local-read", "update", _read_snapshot, var="localReads"),
        ),
    )

    return [grant_lease, update_timer, apply_action, read_local]


def build(constants: Dict[str, Any]) -> SpecMachine:
    """PQL = MultiPaxos + the added lease subactions (sharing the base
    machine's action objects, as an edited TLA+ spec shares its text)."""
    base = mp.build(constants)

    def init(c) -> Iterable[State]:
        for base_state in base.init(c):
            yield base_state.assign({
                "timer": 0,
                "leases": fmap_const(
                    c["acceptors"], fmap_const(c["holders"], -1)),
                "applyIndex": fmap_const(c["acceptors"], -1),
                "localReads": frozenset(),
            })

    return SpecMachine(
        name="PQL",
        variables=base.variables + NEW_VARIABLES,
        constants=constants,
        init=init,
        actions=list(base.actions) + added_actions(constants),
    )


# -- invariants (B.3's LeaseInv + read linearizability) --------------------------

def lease_safe(state: State, constants) -> bool:
    """LeaseInv: every executable value is chosen, and every *active* lease
    holder has voted for it (so its local reads cannot miss it)."""
    chosen = mp.chosen_values(state, constants)
    for index, ballot, value in executable_set(state, constants):
        if value not in chosen.get(index, set()):
            return False
        for holder in constants["holders"]:
            if lease_is_active(state, constants, holder):
                if (index, ballot, value) not in state["votes"][holder]:
                    return False
    return True


def reads_see_chosen_prefix(state: State, constants) -> bool:
    """Everything a local read returned was chosen at its instance."""
    chosen = mp.chosen_values(state, constants)
    for _acceptor, upto, values in state["localReads"]:
        for index in range(upto + 1):
            if values[index] not in chosen.get(index, set()):
                return False
    return True


def applied_prefix_committable(state: State, constants) -> bool:
    for acceptor in constants["acceptors"]:
        for index in range(state["applyIndex"][acceptor] + 1):
            ballot, value = state["logs"][acceptor][index]
            if value is None:
                return False
    return True


LEASE_INVARIANTS = {
    "lease-safe": lease_safe,
    "reads-see-chosen-prefix": reads_see_chosen_prefix,
    "applied-prefix-accepted": applied_prefix_committable,
}
