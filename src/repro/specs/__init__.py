"""Executable TLA+-style specifications of the paper's protocols.

Appendix B, in Python:

* `kvexample`  — the Figure 4 key-value/log porting example;
* `multipaxos` — B.1 MultiPaxos;
* `raftstar`   — B.2 Raft* and the Figure 3 refinement mapping to MultiPaxos;
* `raft`       — plain Raft, demonstrating §3's negative result (no direct
  refinement: the erasing step has no Paxos counterpart);
* `pql`        — B.3 Paxos Quorum Lease as a non-mutating diff on MultiPaxos;
* `rql`        — B.4 Raft*-PQL, *generated* by `core.porting`;
* `coorpaxos`  — B.5 Coordinated Paxos (Mencius) as a non-mutating diff;
* `coorraft`   — B.6 Coordinated Raft*, *generated* by `core.porting`;
* `mapping`    — the Figure 3 table, rendered from the mapping objects;
* `variants`   — the Figure 6 landscape of Paxos variants.
"""
