"""repro: reproduction of "On the Parallels between Paxos and Raft, and how
to Port Optimizations" (PODC 2019).

Two halves:

* `repro.core` + `repro.specs` — the paper's formal contribution: executable
  TLA+-style specifications, a bounded model checker, refinement-mapping
  checking, and the automatic porting algorithm for non-mutating
  optimizations.
* `repro.sim` + `repro.protocols` + `repro.bench` — the evaluation half:
  a discrete-event WAN simulator, runnable MultiPaxos / Raft / Raft* /
  PQL / Leader-Lease / Mencius implementations, and a harness regenerating
  every figure of §5.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
