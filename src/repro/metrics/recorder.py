"""Per-request records and windowed aggregation.

The paper's methodology: each trial runs for a fixed duration with warm-up
and cool-down trimmed; latencies are reported as 50th/90th/99th percentiles
split by whether the client talked to the leader's region or a follower's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.stats import summarize
from repro.protocols.types import OpType
from repro.sim.units import to_ms, to_sec


@dataclass(frozen=True, slots=True)
class RequestRecord:
    client: str
    site: str
    server: str
    op: OpType
    start: int
    end: int
    ok: bool
    local_read: bool = False

    @property
    def latency_us(self) -> int:
        return self.end - self.start

    @property
    def latency_ms(self) -> float:
        return to_ms(self.latency_us)


class MetricsRecorder:
    """Collects completed requests and answers windowed queries."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []
        self.failures = 0
        # Named event counters (redirects, capped redirects, ...): cheap
        # shared tallies for paths that do not produce a RequestRecord.
        self.counters: Dict[str, int] = {}
        # Time-series gauges (repro.obs.GaugeSampler): series name ->
        # [(time_us, value), ...] in sample order.
        self.gauges: Dict[str, List[Tuple[int, float]]] = {}

    def add(self, record: RequestRecord) -> None:
        if record.ok:
            self.records.append(record)
        else:
            self.failures += 1

    def incr(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def gauge(self, name: str, time_us: int, value: float) -> None:
        self.gauges.setdefault(name, []).append((time_us, value))

    def gauge_summary(self, name: str) -> Dict[str, float]:
        """Summary statistics over one gauge series' sampled values."""
        return summarize([value for _, value in self.gauges.get(name, [])])

    def window(self, start_us: int, end_us: int) -> List[RequestRecord]:
        return [r for r in self.records if r.start >= start_us and r.end <= end_us]

    def throughput_ops(self, start_us: int, end_us: int,
                       predicate: Optional[Callable[[RequestRecord], bool]] = None) -> float:
        """Completed ops per second within the steady window."""
        span = to_sec(end_us - start_us)
        if span <= 0:
            return 0.0
        selected = self.window(start_us, end_us)
        if predicate is not None:
            selected = [r for r in selected if predicate(r)]
        return len(selected) / span

    def latency_summary_ms(self, start_us: int, end_us: int,
                           predicate: Optional[Callable[[RequestRecord], bool]] = None,
                           ) -> Dict[str, float]:
        selected = self.window(start_us, end_us)
        if predicate is not None:
            selected = [r for r in selected if predicate(r)]
        return summarize([r.latency_ms for r in selected])

    def completion_throughput(self, start_us: int, end_us: int) -> float:
        """Completions per second whose ACK landed in the window, whatever
        their submission time.  The open-loop achieved-throughput measure:
        past the saturation knee a request's latency can exceed the
        steady window, and requiring start AND end inside (like
        `throughput_ops`) would undercount a server that is in fact
        completing work at capacity."""
        span = to_sec(end_us - start_us)
        if span <= 0:
            return 0.0
        return sum(1 for r in self.records
                   if start_us <= r.end <= end_us) / span

    def completion_latency_summary_ms(self, start_us: int, end_us: int,
                                      ) -> Dict[str, float]:
        """Latency summary over completions whose ACK landed in the
        window, whatever their submission time — pairs with
        `completion_throughput`: requiring submission inside the window
        too would exclude precisely the most-delayed (long-queued)
        requests at saturation and understate the knee."""
        return summarize([r.latency_ms for r in self.records
                          if start_us <= r.end <= end_us])

    def split_by_site(self, start_us: int, end_us: int, leader_site: str,
                      op: Optional[OpType] = None) -> Dict[str, Dict[str, float]]:
        """The paper's Leader/Followers split for latency figures."""

        def match(record: RequestRecord, want_leader: bool) -> bool:
            if op is not None and record.op is not op:
                return False
            return (record.site == leader_site) == want_leader

        return {
            "leader": self.latency_summary_ms(start_us, end_us, lambda r: match(r, True)),
            "followers": self.latency_summary_ms(start_us, end_us, lambda r: match(r, False)),
        }

    def local_read_fraction(self, start_us: int, end_us: int) -> float:
        reads = [r for r in self.window(start_us, end_us) if r.op is OpType.GET]
        if not reads:
            return 0.0
        return sum(1 for r in reads if r.local_read) / len(reads)

    def throughput_by(self, start_us: int, end_us: int,
                      key: Callable[[RequestRecord], str]) -> Dict[str, float]:
        """Per-group throughput (ops/s) within the window, grouped by `key`
        (e.g. the owning shard of each record's server)."""
        span = to_sec(end_us - start_us)
        if span <= 0:
            return {}
        counts: Dict[str, int] = {}
        for record in self.window(start_us, end_us):
            group = key(record)
            counts[group] = counts.get(group, 0) + 1
        return {group: count / span for group, count in counts.items()}

    @classmethod
    def merge(cls, recorders: "List[MetricsRecorder]") -> "MetricsRecorder":
        """Combine several groups' recorders into one aggregate view."""
        merged = cls()
        for recorder in recorders:
            merged.records.extend(recorder.records)
            merged.failures += recorder.failures
            for name, count in recorder.counters.items():
                merged.incr(name, count)
            for name, samples in recorder.gauges.items():
                merged.gauges.setdefault(name, []).extend(samples)
        merged.records.sort(key=lambda r: r.end)
        return merged
