"""Latency/throughput measurement."""

from repro.metrics.stats import percentile, summarize
from repro.metrics.recorder import MetricsRecorder, RequestRecord

__all__ = ["MetricsRecorder", "RequestRecord", "percentile", "summarize"]
