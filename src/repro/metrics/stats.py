"""Pure statistics helpers (no simulator dependencies)."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; pct in [0, 100].  Raises on empty input."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} out of range")
    ordered = sorted(values)
    if pct == 0:
        return ordered[0]
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Standard latency summary: count/mean/p50/p90/p99/p999/max."""
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                "p999": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "p999": percentile(values, 99.9),
        "max": max(values),
    }
