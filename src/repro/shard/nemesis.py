"""Seeded fault injection for sharded and transactional clusters.

Howard & Mortier's comparison argues the interesting Paxos/Raft differences
only surface under leader failure — which is exactly what steady-state
benchmarks never exercise.  A `Nemesis` schedules faults at sim times
against a built (not yet run) `ShardedCluster`/`TxnCluster`:

* **leader_kill** — crash the current leader of a consensus group (or a
  random alive replica if the group is mid-election), recover it later;
* **leader_partition** — cut the leader off from its group peers for a
  while (a gray failure: clients can still reach it, it just cannot
  commit), then heal exactly those links;
* **coordinator_kill** — crash a transaction coordinator mid-2PC and
  recover it, forcing the fenced decision-log replay in
  `repro.shard.txn.TxnCoordinator.on_recover`;
* **host_kill** — crash a whole machine, taking every colocated node (group
  replicas, a coordinator and its control replica, the host's mux with
  whatever it had buffered) down together, then recover them all.  With
  shared hosts the machine is the real crash unit — one box failing
  degrades every group it hosted at once;
* **coordinator_host_kill** — the targeted failover fault: crash the HOST
  of an alive transaction coordinator (or of the reshard fleet's current
  lease-holding driver), machine-granular, so the coordinator and its
  local control replica die together and a hot standby in another site
  must take over through the control journal;
* **host_replace** — the permanent-loss fault: crash a data machine with
  NO recovery, then splice a replacement in through the cluster's live
  membership path (`ShardedCluster.replace_host`) — every group the dead
  box served drives a logged config change swapping the dead replica for
  a fresh one that catches up from a snapshot.

Everything is driven by a named stream off the experiment seed, so a
failing schedule replays exactly.  `tests/shard/nemesis.py` provides the
schedule presets the test suite uses; `random_schedule` is the generic
generator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.rng import SplitRng
from repro.sim.units import sec

KINDS = ("leader_kill", "leader_partition", "coordinator_kill", "host_kill",
         "coordinator_host_kill", "host_replace")


class Nemesis:
    """Schedules seeded faults against a built cluster before `run()`."""

    def __init__(self, cluster, seed: int = 0,
                 leader_down_s: float = 1.2,
                 partition_s: float = 1.2,
                 coordinator_down_s: float = 1.0,
                 host_down_s: float = 1.2) -> None:
        self.cluster = cluster
        self.rng = SplitRng(0xFA11 + seed).stream("nemesis")
        self.leader_down_s = leader_down_s
        self.partition_s = partition_s
        self.coordinator_down_s = coordinator_down_s
        self.host_down_s = host_down_s
        self.log: List[Tuple[float, str]] = []
        self.kills = 0
        self.partitions = 0
        self.coordinator_kills = 0
        self.host_kills = 0
        self.host_replaces = 0

    # -- scheduling ----------------------------------------------------------

    def leader_kill_at(self, at_s: float, shard: Optional[int] = None) -> None:
        self.cluster.sim.schedule_at(sec(at_s), self._leader_kill, shard)

    def leader_partition_at(self, at_s: float,
                            shard: Optional[int] = None) -> None:
        self.cluster.sim.schedule_at(sec(at_s), self._leader_partition, shard)

    def coordinator_kill_at(self, at_s: float,
                            index: Optional[int] = None) -> None:
        self.cluster.sim.schedule_at(sec(at_s), self._coordinator_kill, index)

    def host_kill_at(self, at_s: float, host: Optional[str] = None) -> None:
        self.cluster.sim.schedule_at(sec(at_s), self._host_kill, host)

    def coordinator_host_kill_at(self, at_s: float,
                                 role: str = "txn") -> None:
        """Kill the machine under an alive coordinator at `at_s`: a random
        txn coordinator's host (``role="txn"``) or the host of the reshard
        fleet's current lease-holding driver (``role="reshard"``)."""
        self.cluster.sim.schedule_at(sec(at_s), self._coordinator_host_kill,
                                     role)

    def host_replace_at(self, at_s: float,
                        host: Optional[str] = None) -> None:
        """Permanently kill a data machine at `at_s` and replace it live
        (random alive data host when `host` is None)."""
        self.cluster.sim.schedule_at(sec(at_s), self._host_replace, host)

    def random_schedule(self, events: int, start_s: float, end_s: float,
                        kinds: Sequence[str] = ("leader_kill",
                                                "leader_partition")) -> None:
        """`events` faults at random times in [start_s, end_s)."""
        for _ in range(events):
            at_s = self.rng.uniform(start_s, end_s)
            kind = self.rng.choice(list(kinds))
            if kind == "leader_kill":
                self.leader_kill_at(at_s)
            elif kind == "leader_partition":
                self.leader_partition_at(at_s)
            elif kind == "coordinator_kill":
                self.coordinator_kill_at(at_s)
            elif kind == "host_kill":
                self.host_kill_at(at_s)
            elif kind == "coordinator_host_kill":
                self.coordinator_host_kill_at(at_s)
            elif kind == "host_replace":
                self.host_replace_at(at_s)
            else:  # pragma: no cover - caller typo
                raise ValueError(f"unknown nemesis kind {kind!r}")

    # -- fault actions -------------------------------------------------------

    def _note(self, what: str) -> None:
        self.log.append((self.cluster.sim.now / 1e6, what))

    def _pick_victim(self, shard: Optional[int]):
        groups = self.cluster.groups
        if shard is None:
            shard = self.rng.choice(sorted(groups))
        replicas = groups[shard]
        alive = [r for r in replicas.values() if r.alive]
        if not alive:
            return shard, None
        leaders = [r for r in alive if getattr(r, "is_leader", False)]
        return shard, (leaders[0] if leaders else self.rng.choice(
            sorted(alive, key=lambda r: r.name)))

    def _leader_kill(self, shard: Optional[int]) -> None:
        shard, victim = self._pick_victim(shard)
        if victim is None:
            self._note(f"leader_kill g{shard}: no replica alive, skipped")
            return
        victim.crash()
        self.kills += 1
        self._note(f"leader_kill g{shard}: crashed {victim.name}")

        def recover() -> None:
            if not victim.alive:
                victim.recover()
                self._note(f"leader_kill g{shard}: recovered {victim.name}")
        self.cluster.sim.schedule(sec(self.leader_down_s), recover)

    def _leader_partition(self, shard: Optional[int]) -> None:
        shard, victim = self._pick_victim(shard)
        if victim is None:
            self._note(f"leader_partition g{shard}: no replica alive, skipped")
            return
        peers = [name for name in self.cluster.groups[shard]
                 if name != victim.name]
        network = self.cluster.network
        for peer in peers:
            network.block(victim.name, peer)
        self.partitions += 1
        self._note(f"leader_partition g{shard}: isolated {victim.name} "
                   f"from its group")

        def heal() -> None:
            for peer in peers:
                network.unblock(victim.name, peer)
            self._note(f"leader_partition g{shard}: healed {victim.name}")
        self.cluster.sim.schedule(sec(self.partition_s), heal)

    def _host_kill(self, host_name: Optional[str]) -> None:
        hosts = getattr(self.cluster, "hosts", {})
        alive = sorted(name for name, host in hosts.items() if host.alive)
        if not alive:
            self._note("host_kill: no shared host alive, skipped")
            return
        if host_name is None:
            host_name = self.rng.choice(alive)
        host = hosts[host_name]
        victims = [node for node in host.nodes if node.alive]
        host.crash()
        self.host_kills += 1
        self._note(f"host_kill: crashed {host_name} "
                   f"({len(victims)} colocated nodes)")

        def recover() -> None:
            # Revive the specific nodes THIS kill took down, not whatever
            # Host.alive derives: an interleaved leader_kill recovering
            # one cohabitant early must not cancel the machine's restart
            # for everyone else.
            revived = [node for node in victims if not node.alive]
            for node in revived:
                node.recover()
            if revived:
                self._note(f"host_kill: recovered {host_name}")
        self.cluster.sim.schedule(sec(self.host_down_s), recover)

    def _host_replace(self, host_name: Optional[str]) -> None:
        cluster = self.cluster
        pool = getattr(cluster, "data_host_names", set())
        hosts = getattr(cluster, "hosts", {})
        alive = sorted(name for name in pool
                       if name in hosts and hosts[name].alive)
        if not alive:
            self._note("host_replace: no data host alive, skipped")
            return
        if host_name is None:
            host_name = self.rng.choice(alive)
        try:
            new_host = cluster.replace_host(host_name)
        except Exception as exc:  # leaderless protocol, no layout, ...
            self._note(f"host_replace: {host_name} refused ({exc})")
            return
        self.host_replaces += 1
        self._note(f"host_replace: {host_name} -> {new_host} (permanent)")

    def _coordinator_host_kill(self, role: str) -> None:
        host = None
        if role == "reshard":
            plane = getattr(self.cluster, "coordinator", None)
            active = (plane.active
                      if plane is not None and not plane.done else None)
            if active is not None and active.alive:
                host = active.host
        else:
            coordinators = [c for c in getattr(self.cluster,
                                               "coordinators", [])
                            if c.alive and c.host is not None]
            if coordinators:
                victim = self.rng.choice(
                    sorted(coordinators, key=lambda c: c.name))
                host = victim.host
        if host is None or not host.alive:
            self._note(f"coordinator_host_kill ({role}): "
                       f"no live coordinator host, skipped")
            return
        self._host_kill(host.name)

    def _coordinator_kill(self, index: Optional[int]) -> None:
        coordinators = getattr(self.cluster, "coordinators", [])
        alive = [c for c in coordinators if c.alive]
        if not alive:
            self._note("coordinator_kill: none alive, skipped")
            return
        victim = (coordinators[index] if index is not None
                  else self.rng.choice(sorted(alive, key=lambda c: c.name)))
        if not victim.alive:
            self._note(f"coordinator_kill: {victim.name} already down, skipped")
            return
        victim.crash()
        self.coordinator_kills += 1
        self._note(f"coordinator_kill: crashed {victim.name}")

        def recover() -> None:
            if not victim.alive:
                victim.recover()
                self._note(f"coordinator_kill: recovered {victim.name}")
        self.cluster.sim.schedule(sec(self.coordinator_down_s), recover)
