"""The replicated control plane: coordinator decision logs as consensus.

Both shard-layer coordinators (`TxnCoordinator`, `ReshardCoordinator`)
used to be single reliable nodes — the exact caveat the paper's
protocol-agnostic thesis exists to remove.  This module runs each
coordinator family's decision log as **its own consensus group**, reusing
the unmodified protocol stack underneath:

* `ControlGroup` — a dedicated replica group (one replica per site, any
  leader-based protocol from the registry) whose log carries only small
  JSON *journal records*.  Its timers are tightened relative to the data
  groups (elections in hundreds of milliseconds, not seconds): the control
  log is tiny, so fast elections are safe, and failover latency is bounded
  by them.  Each site's control replica shares a `Host` with that site's
  coordinator — the machine is the crash unit, so a host kill takes the
  coordinator *and* its local journal access down together (the honest
  case).

* `ControlView` — one site's materialized state of the journal, updated by
  the local replica's `on_apply_hooks`.  Every update is idempotent and
  monotone (fence epochs and lease stamps only rise, ownership claims are
  first-wins in log order), because a recovering replica re-applies its
  log from index 0 and re-fires every hook — including entries whose dedup
  slot answered a retransmit.

* `ReplicatedCoordinator` — the coordinator base: `journal()` appends a
  record through the local control replica (at-most-once via a
  stable-storage sequence number, retried on the jittered-exponential
  `RetryPolicy`), a lease tick renews this coordinator's liveness claim,
  and lease expiry is what standbys act on — takeover is *itself a journal
  record* (first committed claim wins in log order), so two standbys
  racing to adopt a dead peer converge without talking to each other.

The journal record schema (JSON, discriminated by `"k"`):

    {"k": "lease", "o": <member>, "t": <us>}            liveness renewal
    {"k": "fence", "o": <member>, "fe": <epoch>, ...}   member (re)join
    {"k": "take",  "v": <victim>, "by": <member>,
     "fe": <epoch>, ...}                                peer-fence takeover
    {"k": "claim", "o": <member>, "e": <owner epoch>,
     ...}                                               single-owner claim
    anything else                                       subclass records

`fence`/`take` raise a per-member fence epoch (max-merge): commands
stamped with an older epoch are refused by the data-plane stores, which is
what makes a fenced coordinator's in-flight work inert.  `claim` rotates a
single-owner role (the reshard driver): a claim commits only if its `e` is
exactly the successor of the current owner epoch, so exactly one standby
wins each rotation no matter how many raced.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.config import geo_cluster
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import Command, OpType
from repro.sim.node import Host, Node, NodeCosts
from repro.sim.units import ms, sec
from repro.workload.session import AckFloor, RetryPolicy

CONTROL_CLIENT_PREFIX = "__ctl__:"

#: Journal retries: the control group is one (usually local) hop away, so
#: the base timeout is far below the WAN client default — a lost journal
#: append must not stall failover for seconds.
CONTROL_RETRY = RetryPolicy(retry_timeout=ms(250), retry_cap=sec(2),
                            backoff_base=ms(20), backoff_cap=ms(320))


class ControlView:
    """One site's materialized journal state (idempotent under replay)."""

    def __init__(self, initial_owner: Optional[str] = None,
                 clock: Optional[Callable[[], int]] = None) -> None:
        # member -> highest fence epoch journaled for it.  A member's
        # commands stamped below its fence are refused by the data plane.
        self.fence: Dict[str, int] = {}
        # member -> newest journal-stamped liveness time (sender's clock).
        self.lease_t: Dict[str, int] = {}
        # victim -> (fence epoch, janitor) of the winning takeover.
        self.taken_by: Dict[str, Tuple[int, str]] = {}
        # Single-owner role (the reshard driver); epoch 1 is assigned at
        # construction without a journal round, deterministically.
        self.owner: Optional[str] = initial_owner
        self.owner_epoch: int = 1 if initial_owner is not None else 0
        # When THIS observer learned of the current owner epoch (local
        # clock, not the record's sender stamp).  Liveness stamps age by
        # sender time, so right after a rotation the new owner's freshest
        # evidence is the claim record itself — already one control-log
        # commit plus a WAN propagation old when it applies here.  The
        # grace below keeps standbys from reading that transport lag as
        # expiry and stealing the role back (replay-safe: re-applying the
        # log just re-stamps with the replay time, which only widens the
        # grace).
        self.clock = clock if clock is not None else (lambda: 0)
        self.owner_since: int = 0
        # Subclass-record listeners, called with every applied record
        # (duplicates included — listeners must be idempotent).
        self.listeners: List[Callable[[Dict], None]] = []

    def on_apply(self, replica: str, index: int, command: Command) -> None:
        """`on_apply_hooks` hook on this site's control replica."""
        if (command.op is not OpType.PUT
                or not command.client_id.startswith(CONTROL_CLIENT_PREFIX)):
            return
        record = json.loads(command.value or "{}")
        kind = record.get("k")
        if kind == "lease":
            self._renew(record["o"], record["t"])
        elif kind == "fence":
            member, fe = record["o"], record["fe"]
            if fe > self.fence.get(member, 1):
                self.fence[member] = fe
            self._renew(member, record["t"])
        elif kind == "take":
            victim, fe = record["v"], record["fe"]
            if fe > self.fence.get(victim, 1):
                # First raise wins: a second janitor's take at the same
                # target epoch fails this comparison and is inert.
                self.fence[victim] = fe
                self.taken_by[victim] = (fe, record["by"])
            self._renew(record["by"], record["t"])
        elif kind == "claim":
            if record["e"] == self.owner_epoch + 1:
                self.owner_epoch = record["e"]
                self.owner = record["o"]
                self.owner_since = self.clock()
            self._renew(record["o"], record["t"])
        for listener in self.listeners:
            listener(record)

    def _renew(self, member: str, t: int) -> None:
        if t > self.lease_t.get(member, 0):
            self.lease_t[member] = t

    def fence_of(self, member: str) -> int:
        return self.fence.get(member, 1)


class ControlGroup:
    """A dedicated consensus group carrying one coordinator family's
    journal, with a per-site materialized `ControlView`.

    The group's replicas are placed on per-site hosts that the
    coordinators are expected to share (`host_of`), so machine-granularity
    faults hit a coordinator and its local journal replica together."""

    def __init__(self, tag: str, sim, network, sites, protocol: str,
                 members: Optional[List[str]] = None,
                 election_timeout: Tuple[int, int] = (ms(400), ms(800)),
                 heartbeat: int = ms(60),
                 initial_leader_site: Optional[str] = None,
                 initial_owner: Optional[str] = None,
                 costs: Optional[NodeCosts] = None) -> None:
        # Deferred registry import (shard -> bench -> shard cycle).
        from repro.bench.harness import LEADERLESS, PROTOCOLS

        if protocol in LEADERLESS:
            # The journal needs a leader to converge on quickly; a
            # leaderless data plane still gets a leader-based control log
            # (heterogeneous stacks are the registry's whole point).
            protocol = "raft"
        self.tag = tag
        self.sites = list(sites)
        # The coordinator names this journal arbitrates between (used by
        # peers-watching-peers takeover loops).
        self.members = list(members) if members is not None else []
        prefix = f"{tag}_r"
        self.hosts: Dict[str, Host] = {
            site: Host(f"{tag}_h_{site}", sim, site=site) for site in sites
        }
        kwargs: Dict[str, Any] = dict(
            initial_leader=f"{prefix}_{initial_leader_site or sites[0]}",
            election_timeout_min=election_timeout[0],
            election_timeout_max=election_timeout[1],
            heartbeat_interval=heartbeat,
            hosts={f"{prefix}_{site}": self.hosts[site] for site in sites},
        )
        if costs is not None:
            kwargs["costs"] = costs
        self.config = geo_cluster(sites, prefix=prefix, **kwargs)
        replica_cls = PROTOCOLS[protocol]
        self.replicas = {
            name: replica_cls(name, sim, network, self.config)
            for name in self.config.names
        }
        self.views: Dict[str, ControlView] = {}
        for site in sites:
            view = ControlView(initial_owner=initial_owner,
                               clock=lambda: sim.now)
            self.views[site] = view
            self.replicas[f"{prefix}_{site}"].on_apply_hooks.append(
                view.on_apply)

    def replica_name(self, site: str) -> str:
        return f"{self.tag}_r_{site}"

    def view_of(self, site: str) -> ControlView:
        return self.views[site]

    def host_of(self, site: str) -> Host:
        return self.hosts[site]


class _PendingJournal:
    __slots__ = ("command", "timer", "on_ok", "attempts", "rejections")

    def __init__(self, command: Command, timer, on_ok) -> None:
        self.command = command
        self.timer = timer
        self.on_ok = on_ok
        self.attempts = 0
        self.rejections = 0


class ReplicatedCoordinator(Node):
    """Base class for coordinators whose state transitions are journaled
    through a `ControlGroup`.

    Provides: `journal()` (stable-seq at-most-once appends with retry),
    the lease tick (`on_lease_tick` in subclasses acts on the view), the
    expiry predicate standbys use, and failover accounting.  The node is
    placed on the same host as its site's control replica."""

    LEASE_INTERVAL = ms(80)
    LEASE_EXPIRY = ms(320)

    def __init__(self, name, sim, network, site: str, control: ControlGroup,
                 rng, metrics: Optional[MetricsRecorder] = None,
                 costs: Optional[NodeCosts] = None) -> None:
        super().__init__(name, sim, network, site=site, costs=costs,
                         host=control.host_of(site))
        self.control = control
        self.view = control.view_of(site)
        self.view.listeners.append(self._dispatch_control_record)
        self.rng = rng
        self.metrics = metrics
        self.ctl_retry = CONTROL_RETRY
        self._journal_pending: Dict[Tuple[str, int], _PendingJournal] = {}
        self._ctl_floor = AckFloor()
        # Failover accounting: how many times this coordinator adopted a
        # dead peer's duties, with the adoption sim-times (the figure's
        # failover latency is takeover time minus kill time).
        self.failovers = 0
        self.takeovers: List[Tuple[int, str]] = []
        # Planned handoffs: ownership transfers this coordinator received
        # via a committed handoff claim (no lease expiry involved).
        self.handoffs = 0
        self._handoff_to: Optional[str] = None
        self._handoff_inflight = False
        self._lease_inflight = False
        self._lease_timer = self.timer("ctl-lease")
        self._arm_lease()

    # -- journaling ----------------------------------------------------------

    def journal(self, record: Dict,
                on_ok: Optional[Callable[[], None]] = None) -> None:
        """Append `record` to the control log (at-most-once, retried until
        committed).  The sequence number comes from stable storage, so a
        crash-restarted coordinator cannot reuse a slot and have a fresh
        record suppressed by its predecessor's dedup entry."""
        seq = self.stable.get("ctl_seq", 0) + 1
        self.stable["ctl_seq"] = seq
        value = json.dumps(dict(record, t=self.sim.now), sort_keys=True)
        command = Command(
            op=OpType.PUT, key=f"ctl:{self.name}", value=value,
            client_id=f"{CONTROL_CLIENT_PREFIX}{self.name}", seq=seq,
            value_size=len(value), acked_low_water=self._ctl_floor.floor)
        pending = _PendingJournal(command, self.timer(f"ctl-j{seq}"), on_ok)
        self._journal_pending[command.request_id] = pending
        self._journal_send(pending)

    def _journal_send(self, pending: _PendingJournal) -> None:
        if self._journal_pending.get(pending.command.request_id) is not pending:
            return
        pending.attempts += 1
        self.send(self.control.replica_name(self.site),
                  ClientRequest(command=pending.command))
        pending.timer.arm(
            self.ctl_retry.retry_delay(pending.attempts - 1, self.rng),
            lambda: self._journal_send(pending))

    def handle_control_reply(self, message) -> bool:
        """Consume a `ClientReply` for a journal append; returns whether
        the message belonged to the control path."""
        if not isinstance(message, ClientReply):
            return False
        client_id, seq = message.request_id
        if client_id != f"{CONTROL_CLIENT_PREFIX}{self.name}":
            return False
        pending = self._journal_pending.get(message.request_id)
        if pending is None:
            return True  # stale duplicate of an acked append
        if not message.ok:
            # No control leader yet (election in progress): back off.
            pending.rejections += 1
            pending.timer.arm(
                self.ctl_retry.backoff_delay(pending.rejections, self.rng),
                lambda: self._journal_send(pending))
            return True
        pending.timer.cancel()
        del self._journal_pending[message.request_id]
        self._ctl_floor.ack(seq)
        if pending.on_ok is not None:
            pending.on_ok()
        return True

    # -- leases / takeover ---------------------------------------------------

    def journal_lease(self) -> None:
        """Renew this member's liveness claim, at most one append in
        flight: while the control group is electing, ticks must not pile
        a retrying lease record on top of the last one."""
        if self._lease_inflight:
            return
        self._lease_inflight = True

        def landed() -> None:
            self._lease_inflight = False
        self.journal({"k": "lease", "o": self.name}, on_ok=landed)

    def _arm_lease(self) -> None:
        # Jittered so a site's coordinators don't tick in lockstep.
        delay = self.LEASE_INTERVAL + self.rng.randint(
            0, max(1, self.LEASE_INTERVAL // 4))
        self._lease_timer.arm(delay, self._lease_tick)

    def _lease_tick(self) -> None:
        self.on_lease_tick()
        self._maybe_handoff()
        self._arm_lease()

    def on_lease_tick(self) -> None:
        """Override: renew own lease, watch peers, act on expiry."""

    def lease_expired(self, member: str) -> bool:
        """Whether `member`'s last journaled liveness stamp is stale.  A
        member that never journaled is not expired — there is nothing to
        take over from it yet."""
        t = self.view.lease_t.get(member)
        return t is not None and self.sim.now - t > self.LEASE_EXPIRY

    def owner_lease_expired(self) -> bool:
        """`lease_expired` for the single-owner role, with a rotation
        grace: after observing a claim, a standby gives the new owner one
        full expiry (by its OWN clock) to land a fresh lease before
        reading staleness into the sender-stamped evidence — the claim
        record is already a commit plus a WAN hop old on arrival."""
        owner = self.view.owner
        if owner is None:
            return False
        if self.sim.now - self.view.owner_since <= self.LEASE_EXPIRY:
            return False
        return self.lease_expired(owner)

    def record_failover(self, role: str) -> None:
        self.failovers += 1
        self.takeovers.append((self.sim.now, role))
        if self.metrics is not None:
            self.metrics.incr("coordinator_failovers")

    # -- planned handoff -----------------------------------------------------

    def handoff(self, to: str) -> None:
        """Planned ownership transfer: once in-flight work is drained
        (`_handoff_ready`), journal a claim naming `to` at the successor
        epoch, stamped as a handoff.  The receiver starts driving the
        moment the claim commits — no lease has to expire first, which is
        why a planned handoff's gap is bounded by a control-log commit
        (milliseconds) instead of `LEASE_EXPIRY`."""
        self._handoff_to = to
        self._maybe_handoff()

    def _handoff_ready(self) -> bool:
        """Override: whether this coordinator's in-flight work is drained
        enough to transfer ownership."""
        return True

    def _maybe_handoff(self) -> None:
        if self._handoff_to is None:
            return
        if self.view.owner == self._handoff_to:
            self._handoff_to = None  # transfer committed
            return
        if (self._handoff_inflight or not self.alive
                or self.view.owner != self.name
                or not self._handoff_ready()):
            return
        self._handoff_inflight = True

        def landed() -> None:
            self._handoff_inflight = False
        self.journal({"k": "claim", "e": self.view.owner_epoch + 1,
                      "o": self._handoff_to, "h": 1}, on_ok=landed)

    def record_handoff(self, role: str) -> None:
        self.handoffs += 1
        self.takeovers.append((self.sim.now, f"handoff:{role}"))
        if self.metrics is not None:
            self.metrics.incr("coordinator_handoffs")

    # -- control-record dispatch ---------------------------------------------

    def _dispatch_control_record(self, record: Dict) -> None:
        # View listeners fire whenever the local control replica applies,
        # including while this coordinator is crashed; a dead coordinator
        # must not react (it catches up from the view after recovery).
        if self.alive:
            self.on_control_record(record)

    def on_control_record(self, record: Dict) -> None:
        """Override: react to an applied journal record (idempotently —
        recovery replay re-delivers the whole log)."""

    # -- lifecycle -----------------------------------------------------------

    def on_crash(self) -> None:
        # In-flight journal appends are volatile (their stable seqs are
        # not: a re-journaled transition gets a fresh slot).
        self._journal_pending.clear()
        self._lease_inflight = False
        self._handoff_inflight = False

    def on_recover(self) -> None:
        self._arm_lease()
