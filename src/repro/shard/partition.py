"""Key-space partitioning.

Shards own contiguous ranges of a hashed key space: a key is hashed to a
point in [0, 2^32) and the point space is split into `num_shards` equal
ranges.  Hashing first (rather than range-partitioning raw key ids) gives
every shard an equal slice of a uniform workload regardless of how clients
draw keys, which is the property the scaling benchmarks rely on.

The hash is content-derived (sha1), not Python's builtin `hash`, so shard
ownership is stable across processes and seeds — a router and a server
computing ownership independently always agree.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Sequence

HASH_SPACE = 1 << 32


def key_point(key: str) -> int:
    """Map a key to its stable point on the hash ring."""
    digest = hashlib.sha1(key.encode()).digest()
    return int.from_bytes(digest[:4], "big")


class Partitioner:
    """Interface: ownership of keys by shard id (0..num_shards-1)."""

    num_shards: int

    def shard_of(self, key: str) -> int:
        raise NotImplementedError

    def owns(self, shard: int, key: str) -> bool:
        return self.shard_of(key) == shard

    def predicate(self, shard: int) -> Callable[[str], bool]:
        """A key filter bound to `shard` (for `KVStore.set_key_filter`)."""
        return lambda key: self.shard_of(key) == shard


class HashRangePartitioner(Partitioner):
    """Equal hash-ranges: shard i owns points [i*span, (i+1)*span)."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards
        self._span = HASH_SPACE // num_shards

    def shard_of(self, key: str) -> int:
        # The last shard absorbs the remainder of the hash space.
        return min(key_point(key) // self._span, self.num_shards - 1)

    def range_of(self, shard: int) -> range:
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        start = shard * self._span
        end = HASH_SPACE if shard == self.num_shards - 1 else start + self._span
        return range(start, end)

    def load_split(self, keys: Sequence[str]) -> List[int]:
        """How many of `keys` each shard owns (balance diagnostic)."""
        counts = [0] * self.num_shards
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts
