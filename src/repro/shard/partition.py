"""Key-space partitioning.

Shards own contiguous ranges of a hashed key space: a key is hashed to a
point in [0, 2^32) and the point space is split into `num_shards` equal
ranges.  Hashing first (rather than range-partitioning raw key ids) gives
every shard an equal slice of a uniform workload regardless of how clients
draw keys, which is the property the scaling benchmarks rely on.

The hash is content-derived (sha1), not Python's builtin `hash`, so shard
ownership is stable across processes and seeds — a router and a server
computing ownership independently always agree.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

HASH_SPACE = 1 << 32


# key -> ring point, filled on first sight.  Workloads draw from a bounded
# keyspace, and routers/stores hash the same keys over and over (every
# routing decision and every ownership check), so the sha1 runs once per
# distinct key per process.
_POINT_CACHE: dict = {}


def key_point(key: str) -> int:
    """Map a key to its stable point on the hash ring."""
    point = _POINT_CACHE.get(key)
    if point is None:
        digest = hashlib.sha1(key.encode()).digest()
        point = _POINT_CACHE[key] = int.from_bytes(digest[:4], "big")
    return point


class Partitioner:
    """Interface: ownership of keys by shard id (0..num_shards-1)."""

    num_shards: int

    def shard_of(self, key: str) -> int:
        raise NotImplementedError

    def owns(self, shard: int, key: str) -> bool:
        return self.shard_of(key) == shard

    def predicate(self, shard: int) -> Callable[[str], bool]:
        """A key filter bound to `shard` (for `KVStore.set_key_filter`)."""
        return lambda key: self.shard_of(key) == shard


class HashRangePartitioner(Partitioner):
    """Equal hash-ranges: shard i owns points [i*span, (i+1)*span)."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards
        self._span = HASH_SPACE // num_shards

    def shard_of_point(self, point: int) -> int:
        # The last shard absorbs the remainder of the hash space.
        return min(point // self._span, self.num_shards - 1)

    def shard_of(self, key: str) -> int:
        return self.shard_of_point(key_point(key))

    def range_of(self, shard: int) -> range:
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        start = shard * self._span
        end = HASH_SPACE if shard == self.num_shards - 1 else start + self._span
        return range(start, end)

    def load_split(self, keys: Sequence[str]) -> List[int]:
        """How many of `keys` each shard owns (balance diagnostic)."""
        counts = [0] * self.num_shards
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts


# ---------------------------------------------------------------------------
# Epoch-versioned maps and N -> M transition plans (live resharding)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangeMove:
    """One migration step of a transition plan: the half-open hash range
    [start, end) leaves `donor`'s group and joins `recipient`'s."""

    donor: int
    recipient: int
    start: int
    end: int


def plan_transition(old: HashRangePartitioner,
                    new: HashRangePartitioner) -> List[RangeMove]:
    """The minimal set of range moves turning `old` ownership into `new`.

    Both maps cut the hash ring into equal ranges; overlaying the two cut
    sets yields segments with a single owner under each map.  Segments
    whose owner changes become moves; adjacent segments with the same
    (donor, recipient) pair are coalesced.  N == M yields an empty plan,
    and the plan works in both directions (split and merge).
    """
    cuts = sorted({0, HASH_SPACE}
                  | {old.range_of(s).start for s in range(old.num_shards)}
                  | {new.range_of(s).start for s in range(new.num_shards)})
    moves: List[RangeMove] = []
    for start, end in zip(cuts, cuts[1:]):
        donor = old.shard_of_point(start)
        recipient = new.shard_of_point(start)
        if donor == recipient:
            continue
        if (moves and moves[-1].donor == donor
                and moves[-1].recipient == recipient
                and moves[-1].end == start):
            moves[-1] = RangeMove(donor, recipient, moves[-1].start, end)
        else:
            moves.append(RangeMove(donor, recipient, start, end))
    return moves


class VersionedPartitioner(Partitioner):
    """An epoch-stamped partition map.

    Every reshard advances the epoch by one; routers and replicas compare
    epochs to decide who is stale, and a server ahead of a client ships the
    newer map (`ShardMap`) instead of just a shard id.
    """

    def __init__(self, inner: HashRangePartitioner, epoch: int = 0) -> None:
        self.inner = inner
        self.epoch = epoch
        self.num_shards = inner.num_shards

    @classmethod
    def initial(cls, num_shards: int) -> "VersionedPartitioner":
        return cls(HashRangePartitioner(num_shards), epoch=0)

    def shard_of(self, key: str) -> int:
        return self.inner.shard_of(key)

    def shard_of_point(self, point: int) -> int:
        return self.inner.shard_of_point(point)

    def range_of(self, shard: int) -> range:
        return self.inner.range_of(shard)

    def advanced(self, new_num_shards: int
                 ) -> Tuple["VersionedPartitioner", List[RangeMove]]:
        """The next-epoch map for `new_num_shards` groups plus the
        transition plan from this map to it."""
        target = VersionedPartitioner(HashRangePartitioner(new_num_shards),
                                      epoch=self.epoch + 1)
        return target, plan_transition(self.inner, target.inner)


# -- owned-range set algebra (per-replica ownership during a transition) -----


def add_range(ranges: List[Tuple[int, int]], lo: int, hi: int
              ) -> List[Tuple[int, int]]:
    """`ranges` (sorted, disjoint, half-open) with [lo, hi) merged in."""
    merged: List[Tuple[int, int]] = []
    for a, b in sorted(ranges + [(lo, hi)]):
        if merged and a <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


def subtract_range(ranges: List[Tuple[int, int]], lo: int, hi: int
                   ) -> List[Tuple[int, int]]:
    """`ranges` with every point in [lo, hi) removed."""
    out: List[Tuple[int, int]] = []
    for a, b in ranges:
        if b <= lo or a >= hi:
            out.append((a, b))
            continue
        if a < lo:
            out.append((a, lo))
        if b > hi:
            out.append((hi, b))
    return out


def ranges_contain(ranges: List[Tuple[int, int]], point: int) -> bool:
    return any(a <= point < b for a, b in ranges)
