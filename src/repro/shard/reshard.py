"""Live resharding: epoch-versioned ownership and log-driven migration.

A reshard N -> M is a sequence of `RangeMove`s (see `partition`): each move
exports a hash range from its donor group and imports it into its recipient
group, both as ordinary commands through the groups' committed logs, so
every replica of a group flips ownership at the same log position:

* `MIGRATE_OUT` applied on the donor removes the range's records *and* the
  at-most-once dedup state of clients whose last command touched it, and
  returns the snapshot (the donor's leader ships it back to the
  coordinator in the reply);
* `MIGRATE_IN` applied on the recipient installs the snapshot.

`ShardOwnership` is the per-replica view: the set of owned hash ranges
(advanced by applied migrate commands) plus the newest epoch-stamped map
the replica has learned.  The ownership guard answers misrouted keys with
a hint under that newest map, and — when the requester's epoch is behind —
the map itself, which is how clients configured before a reshard repair
their routing tables.

`ReshardCoordinator` is a simulated node driving the plan move by move
under live load, with the same retry discipline as ordinary clients (named
timers, at-most-once via (client, seq) dedup).  Mid-transition the two
sides can disagree about a boundary key — the donor has exported it, the
recipient has not yet imported it — which is exactly the redirect
ping-pong the router's hop cap and backoff fall-back exist for.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.protocols.messages import ClientReply, ClientRequest, ShardMap
from repro.protocols.types import Command, OpType
from repro.shard.partition import (
    HashRangePartitioner,
    RangeMove,
    VersionedPartitioner,
    add_range,
    key_point,
    ranges_contain,
    subtract_range,
)
from repro.sim.node import Node, NodeCosts
from repro.sim.units import ms, sec

RESHARD_CLIENT = "__reshard__"


class ShardOwnership:
    """One replica's epoch-versioned view of what its group owns."""

    def __init__(self, shard: int, versioned: VersionedPartitioner,
                 owned: bool = True) -> None:
        self.shard = shard
        self.map = versioned  # newest map this replica has learned
        if owned and shard < versioned.num_shards:
            span = versioned.range_of(shard)
            self.ranges: List[Tuple[int, int]] = [(span.start, span.stop)]
        else:
            # A group spun up mid-reshard owns nothing until it imports.
            self.ranges = []

    @property
    def epoch(self) -> int:
        return self.map.epoch

    def shard_map(self) -> ShardMap:
        return ShardMap(epoch=self.map.epoch, num_shards=self.map.num_shards)

    def owns_key(self, key: str) -> bool:
        return ranges_contain(self.ranges, key_point(key))

    def guard(self, command: Command) -> Optional[int]:
        """`ReplicaBase.ownership_guard`: None for keys this group owns,
        else the owner under the newest map this replica knows (which can
        transiently be this very group, for a range awaiting import — the
        router's hop cap turns that into backoff rather than a spin).
        Single-shard transactions are checked on every key they touch."""
        for key in self._guarded_keys(command):
            if not self.owns_key(key):
                return self.map.shard_of(key)
        return None

    @staticmethod
    def _guarded_keys(command: Command) -> List[str]:
        if command.op is OpType.TXN:
            ops = json.loads(command.value or "{}").get("ops", [])
            return [key for _, key, _ in ops]
        return [command.key]

    def on_apply(self, replica: str, index: int, command: Command) -> None:
        """`on_apply_hooks` hook: advance ownership when a migrate command
        applies.  Idempotent, so dedup-suppressed duplicates are harmless."""
        if command.op is OpType.MIGRATE_OUT:
            meta = json.loads(command.value or "{}")
            self._learn(meta)
            self.ranges = subtract_range(self.ranges, meta["lo"], meta["hi"])
        elif command.op is OpType.MIGRATE_IN:
            meta = json.loads(command.value or "{}")
            self._learn(meta)
            self.ranges = add_range(self.ranges, meta["lo"], meta["hi"])

    def _learn(self, meta: Dict) -> None:
        if meta.get("epoch", -1) > self.map.epoch:
            self.map = VersionedPartitioner(
                HashRangePartitioner(meta["num_shards"]), meta["epoch"])


class ReshardCoordinator(Node):
    """Drives a transition plan through the groups' logs, move by move."""

    RETRY = sec(1)
    BACKOFF = ms(50)

    def __init__(self, name, sim, network, site: str,
                 target: VersionedPartitioner, moves: List[RangeMove],
                 on_done: Optional[Callable[[], None]] = None) -> None:
        # Like clients, the coordinator is not the measured resource.
        super().__init__(name, sim, network, site=site,
                         costs=NodeCosts(per_message=0, per_byte=0.0))
        self.target = target
        self.moves = list(moves)
        self.on_done = on_done
        self.seq = 0
        self.completed_at: Optional[int] = None
        self._move_idx = 0
        self._phase = ""  # "export" | "import"
        self._command: Optional[Command] = None
        self._dst = ""
        self._retry_timer = self.timer("reshard-retry")
        self.sim.schedule(0, self._next_move)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def _meta(self, move: RangeMove) -> Dict:
        return {"lo": move.start, "hi": move.end,
                "epoch": self.target.epoch,
                "num_shards": self.target.num_shards}

    def _next_move(self) -> None:
        if self._move_idx >= len(self.moves):
            self.completed_at = self.sim.now
            self._command = None
            if self.on_done is not None:
                self.on_done()
            return
        move = self.moves[self._move_idx]
        value = json.dumps(self._meta(move), sort_keys=True)
        self._phase = "export"
        self._issue(move.donor, Command(
            op=OpType.MIGRATE_OUT, key=f"reshard:{self.target.epoch}:{move.start}",
            value=value, client_id=RESHARD_CLIENT, seq=self._next_seq(),
            value_size=len(value)))

    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def _issue(self, shard: int, command: Command) -> None:
        self._command = command
        # First hop is the group's replica in the coordinator's own site;
        # forwarding finds the leader, elections just delay the reply.
        self._dst = f"g{shard}_r_{self.site}"
        self._send()

    def _send(self) -> None:
        if self._command is None:
            return
        self.send(self._dst, ClientRequest(command=self._command,
                                           epoch=self.target.epoch))
        self._retry_timer.arm(self.RETRY, self._send)

    def on_message(self, src: str, message) -> None:
        if not isinstance(message, ClientReply) or self._command is None:
            return
        if message.request_id != self._command.request_id:
            return  # stale reply from a retried step
        if not message.ok:
            # No leader yet (e.g. a freshly spun-up group mid-election):
            # back off, then retry the same step — dedup makes it safe.
            self._retry_timer.arm(self.BACKOFF, self._send)
            return
        self._retry_timer.cancel()
        move = self.moves[self._move_idx]
        if self._phase == "export":
            payload = json.loads(message.value or "{}")
            payload.update(self._meta(move))
            blob = json.dumps(payload, sort_keys=True)
            self._phase = "import"
            self._issue(move.recipient, Command(
                op=OpType.MIGRATE_IN,
                key=f"reshard:{self.target.epoch}:{move.start}",
                value=blob, client_id=RESHARD_CLIENT, seq=self._next_seq(),
                value_size=len(blob)))
        else:
            self._move_idx += 1
            self._next_move()
