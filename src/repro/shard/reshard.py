"""Live resharding: epoch-versioned ownership and log-driven migration.

A reshard N -> M is a sequence of `RangeMove`s (see `partition`): each move
exports a hash range from its donor group and imports it into its recipient
group, both as ordinary commands through the groups' committed logs, so
every replica of a group flips ownership at the same log position:

* `MIGRATE_OUT` applied on the donor removes the range's records *and* the
  at-most-once dedup state of clients whose last command touched it, and
  returns the snapshot (the donor's leader ships it back to the
  coordinator in the reply);
* `MIGRATE_IN` applied on the recipient installs the snapshot.

`ShardOwnership` is the per-replica view: the set of owned hash ranges
(advanced by applied migrate commands) plus the newest epoch-stamped map
the replica has learned.  The ownership guard answers misrouted keys with
a hint under that newest map, and — when the requester's epoch is behind —
the map itself, which is how clients configured before a reshard repair
their routing tables.

The coordinator is no longer a single reliable node.  A transition is
driven by a **fleet**: one `ReshardCoordinator` per site, arbitrated by a
`ControlGroup` (see `repro.shard.control`).  Exactly one fleet member — the
lease-holding *owner* — issues migration steps; every cursor advance is a
journal record through the control log, so when the owner's host dies a
standby claims the role (first committed claim wins) and resumes at the
committed cursor in milliseconds.  Resumption is idempotent end to end:

* step sequence numbers are **deterministic** (`export of move i` is seq
  ``2i+1``, ``import`` is ``2i+2``) in a per-transition dedup namespace
  (``__reshard__:e<epoch>``), so a re-issued step from any fleet member is
  answered from the data groups' dedup caches instead of re-executing;
* in particular a takeover mid-import re-issues the *export* first — the
  donor's cached reply returns the original snapshot (system clients'
  dedup sessions are never migrated, see `KVStore.export_range`) — and
  then the import, neither applying twice.

Each step is sent with the jittered-exponential `RetryPolicy` every other
client uses, and rotates across the target group's replicas in other sites
after `ROTATE_AFTER` unanswered sends — a dead first-hop host no longer
wedges the migration.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.messages import ClientReply, ClientRequest, ShardMap
from repro.protocols.types import Command, OpType
from repro.shard.control import ControlGroup, ReplicatedCoordinator
from repro.shard.partition import (
    HashRangePartitioner,
    RangeMove,
    VersionedPartitioner,
    add_range,
    key_point,
    ranges_contain,
    subtract_range,
)
from repro.sim.node import NodeCosts
from repro.sim.units import ms, sec
from repro.workload.session import RetryPolicy

RESHARD_CLIENT = "__reshard__"

#: Step retries: the old coordinator resent at a constant 1 s / backed off
#: at a constant 50 ms forever; this is the jittered-exponential schedule
#: (base comparable to one WAN round trip, capped well below the old
#: lockstep's worst case).
RESHARD_RETRY = RetryPolicy(retry_timeout=ms(500), retry_cap=sec(4),
                            backoff_base=ms(50), backoff_cap=ms(800))


class ShardOwnership:
    """One replica's epoch-versioned view of what its group owns."""

    def __init__(self, shard: int, versioned: VersionedPartitioner,
                 owned: bool = True) -> None:
        self.shard = shard
        self.map = versioned  # newest map this replica has learned
        if owned and shard < versioned.num_shards:
            span = versioned.range_of(shard)
            self.ranges: List[Tuple[int, int]] = [(span.start, span.stop)]
        else:
            # A group spun up mid-reshard owns nothing until it imports.
            self.ranges = []

    @property
    def epoch(self) -> int:
        return self.map.epoch

    def shard_map(self) -> ShardMap:
        return ShardMap(epoch=self.map.epoch, num_shards=self.map.num_shards)

    def owns_key(self, key: str) -> bool:
        return ranges_contain(self.ranges, key_point(key))

    def guard(self, command: Command) -> Optional[int]:
        """`ReplicaBase.ownership_guard`: None for keys this group owns,
        else the owner under the newest map this replica knows (which can
        transiently be this very group, for a range awaiting import — the
        router's hop cap turns that into backoff rather than a spin).
        Single-shard transactions are checked on every key they touch."""
        for key in self._guarded_keys(command):
            if not self.owns_key(key):
                return self.map.shard_of(key)
        return None

    @staticmethod
    def _guarded_keys(command: Command) -> List[str]:
        if command.op is OpType.TXN:
            ops = json.loads(command.value or "{}").get("ops", [])
            return [key for _, key, _ in ops]
        return [command.key]

    def on_apply(self, replica: str, index: int, command: Command) -> None:
        """`on_apply_hooks` hook: advance ownership when a migrate command
        applies.  Idempotent, so dedup-suppressed duplicates are harmless."""
        if command.op is OpType.MIGRATE_OUT:
            meta = json.loads(command.value or "{}")
            self._learn(meta)
            self.ranges = subtract_range(self.ranges, meta["lo"], meta["hi"])
        elif command.op is OpType.MIGRATE_IN:
            meta = json.loads(command.value or "{}")
            self._learn(meta)
            self.ranges = add_range(self.ranges, meta["lo"], meta["hi"])

    def _learn(self, meta: Dict) -> None:
        if meta.get("epoch", -1) > self.map.epoch:
            self.map = VersionedPartitioner(
                HashRangePartitioner(meta["num_shards"]), meta["epoch"])


class ReshardControlPlane:
    """The fleet facade a cluster holds as `cluster.coordinator`: the
    transition's plan plus its completion state, fed by whichever fleet
    member finishes (or observes the committed `done` cursor) first."""

    def __init__(self, target: VersionedPartitioner, moves: List[RangeMove],
                 control: ControlGroup,
                 on_done: Optional[Callable[[], None]] = None) -> None:
        self.target = target
        self.moves = list(moves)
        self.control = control
        self.on_done = on_done
        self.coordinators: List["ReshardCoordinator"] = []
        self.completed_at: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def active(self) -> Optional["ReshardCoordinator"]:
        """The current lease-holding driver (by the sites[0] view)."""
        owner = self.control.view_of(self.control.sites[0]).owner
        for coordinator in self.coordinators:
            if coordinator.name == owner:
                return coordinator
        return None

    @property
    def failovers(self) -> int:
        return sum(c.failovers for c in self.coordinators)

    @property
    def handoffs(self) -> int:
        return sum(c.handoffs for c in self.coordinators)

    def finish(self, now: int) -> None:
        if self.completed_at is not None:
            return
        self.completed_at = now
        if self.on_done is not None:
            self.on_done()


class ReshardCoordinator(ReplicatedCoordinator):
    """One fleet member.  The lease-holding owner drives the plan move by
    move; standbys watch the owner's lease and claim the role on expiry,
    resuming from the journaled cursor.

    The cursor is a step index ``s``: step ``2i`` is move ``i``'s export,
    ``2i+1`` its import, ``2 * len(moves)`` is done.  ``adv`` records
    carry the *next* step to perform and max-merge, so duplicate journal
    appends (and full-log replay after a control-replica restart) are
    inert."""

    ROTATE_AFTER = 2  # unanswered sends per replica before rotating sites

    def __init__(self, name, sim, network, site: str, control: ControlGroup,
                 target: VersionedPartitioner, moves: List[RangeMove],
                 plane: ReshardControlPlane, rng,
                 retry: RetryPolicy = RESHARD_RETRY,
                 metrics: Optional[MetricsRecorder] = None) -> None:
        # Like clients, the coordinator is not the measured resource.
        super().__init__(name, sim, network, site, control, rng,
                         metrics=metrics,
                         costs=NodeCosts(per_message=0, per_byte=0.0))
        self.target = target
        self.moves = list(moves)
        self.plane = plane
        self.retry = retry
        # Per-transition dedup namespace: successive reshards must not hit
        # each other's cached step replies.
        self.client_id = f"{RESHARD_CLIENT}:e{target.epoch}"
        self._step = self.stable.get("step", 0)
        self._command: Optional[Command] = None
        self._ring: List[str] = []
        self._ring_idx = 0
        self._sends = 0
        self._rejections = 0
        self._claiming = False
        self._retry_timer = self.timer("reshard-retry")
        plane.coordinators.append(self)
        if self.is_owner:
            self.sim.schedule(0, self._drive)

    # -- role ---------------------------------------------------------------

    @property
    def is_owner(self) -> bool:
        return self.view.owner == self.name

    @property
    def done(self) -> bool:
        return self._step >= 2 * len(self.moves) or self.plane.done

    @property
    def completed_at(self) -> Optional[int]:
        return self.plane.completed_at

    def on_lease_tick(self) -> None:
        if self.done:
            return
        if self.is_owner:
            self.journal_lease()
            # Stall fallback: a takeover that raced a crash, or a recovery
            # with no step in flight, resumes here.
            if self._command is None:
                self._drive()
        elif (self.view.owner is not None and not self._claiming
              and self.owner_lease_expired()):
            self._claiming = True
            self.journal({"k": "claim", "e": self.view.owner_epoch + 1,
                          "o": self.name})

    def on_control_record(self, record: Dict) -> None:
        kind = record.get("k")
        if kind == "adv":
            self._learn_step(record["s"])
            if record["s"] >= 2 * len(self.moves):
                self.plane.finish(self.sim.now)
        elif kind == "claim" and record.get("o") == self.name:
            self._claiming = False
            if (self.view.owner == self.name
                    and self.view.owner_epoch == record["e"]):
                # We won the rotation (first committed claim at this
                # epoch).  Guard against control-log replay re-counting.
                won = self.stable.setdefault("won_epochs", set())
                if record["e"] not in won:
                    won.add(record["e"])
                    if record["e"] > 1:
                        if record.get("h"):
                            # A planned transfer, not a lease expiry.
                            self.record_handoff("reshard-owner")
                        else:
                            self.record_failover("reshard-owner")
                self._drive()

    def _learn_step(self, step: int) -> None:
        if step > self._step:
            self._step = step
            self.stable["step"] = step

    def _handoff_ready(self) -> bool:
        # Drain before transferring: the committed cursor then names the
        # exact step the receiver enters through, so the transfer never
        # races an in-flight export/import reply.
        return self._command is None

    # -- driving the plan ----------------------------------------------------

    def _meta(self, move: RangeMove) -> Dict:
        return {"lo": move.start, "hi": move.end,
                "epoch": self.target.epoch,
                "num_shards": self.target.num_shards}

    def _drive(self) -> None:
        if (not self.alive or not self.is_owner
                or self._command is not None or self.plane.done
                or self._handoff_to is not None):
            # A requested handoff stops new steps: the cursor drains, the
            # next lease tick journals the transfer claim, the receiver
            # resumes at the committed step.
            return
        if self._step >= 2 * len(self.moves):
            self.plane.finish(self.sim.now)
            return
        # Always (re)enter through the move's export: at an odd step (a
        # takeover mid-import) the donor's dedup cache returns the original
        # snapshot, which is the blob the import needs.
        move_idx = self._step // 2
        move = self.moves[move_idx]
        value = json.dumps(self._meta(move), sort_keys=True)
        self._issue(move.donor, Command(
            op=OpType.MIGRATE_OUT,
            key=f"reshard:{self.target.epoch}:{move.start}",
            value=value, client_id=self.client_id, seq=2 * move_idx + 1,
            value_size=len(value)))

    def _begin_import(self, move_idx: int, blob: str) -> None:
        move = self.moves[move_idx]
        self._issue(move.recipient, Command(
            op=OpType.MIGRATE_IN,
            key=f"reshard:{self.target.epoch}:{move.start}",
            value=blob, client_id=self.client_id, seq=2 * move_idx + 2,
            value_size=len(blob)))

    def _issue(self, shard: int, command: Command) -> None:
        self._command = command
        # First hop is the group's replica in the coordinator's own site;
        # forwarding finds the leader, elections just delay the reply.
        # The ring continues through the other sites' replicas, so a dead
        # first-hop host cannot wedge the step.
        sites = self.control.sites
        start = sites.index(self.site) if self.site in sites else 0
        ordered = sites[start:] + sites[:start]
        self._ring = [f"g{shard}_r_{site}" for site in ordered]
        self._ring_idx = 0
        self._sends = 0
        self._rejections = 0
        self._send()

    def _send(self) -> None:
        if self._command is None or not self.alive:
            return
        if self._sends and self._sends % self.ROTATE_AFTER == 0:
            self._ring_idx = (self._ring_idx + 1) % len(self._ring)
        self._sends += 1
        self.send(self._ring[self._ring_idx],
                  ClientRequest(command=self._command,
                                epoch=self.target.epoch))
        self._retry_timer.arm(
            self.retry.retry_delay(self._sends - 1, self.rng), self._send)

    def on_message(self, src: str, message) -> None:
        if self.handle_control_reply(message):
            return
        if not isinstance(message, ClientReply) or self._command is None:
            return
        if message.request_id != self._command.request_id:
            return  # stale reply from a retried or superseded step
        if not message.ok:
            # No leader yet (e.g. a freshly spun-up group mid-election):
            # jittered-exponential backoff, then retry — dedup makes the
            # re-apply safe, and the send ring keeps rotating.
            self._rejections += 1
            self._retry_timer.arm(
                self.retry.backoff_delay(self._rejections, self.rng),
                self._send)
            return
        self._retry_timer.cancel()
        command, self._command = self._command, None
        move_idx = (command.seq - 1) // 2
        if command.op is OpType.MIGRATE_OUT:
            payload = json.loads(message.value or "{}")
            payload.update(self._meta(self.moves[move_idx]))
            blob = json.dumps(payload, sort_keys=True)
            self._advance(2 * move_idx + 1)
            self._begin_import(move_idx, blob)
        else:
            self._advance(2 * move_idx + 2)
            if self._step >= 2 * len(self.moves):
                self.plane.finish(self.sim.now)
            else:
                self._drive()

    def _advance(self, step: int) -> None:
        """Commit a cursor advance to the control log (fire-and-forget:
        the append retries until committed; a takeover before it commits
        just redoes an idempotent step)."""
        if step > self._step:
            self._learn_step(step)
            self.journal({"k": "adv", "s": step})

    # -- lifecycle -----------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self._command = None
        self._claiming = False

    def on_recover(self) -> None:
        super().on_recover()
        self._step = max(self._step, self.stable.get("step", 0))
        # If still (or again) the owner, the next lease tick resumes the
        # plan; if a standby took over meanwhile, we watch its lease now.
