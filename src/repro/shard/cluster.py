"""N independent consensus groups over one shared simulator and network.

Each shard is a full replica group of any protocol in the `PROTOCOLS`
registry — one replica per region, its own leader, its own log and store —
all sharing one `Simulator`, `Network`, and `Topology` so cross-group
contention (the per-site WAN uplink) is modelled.  Replica names are
prefixed per group (``g3_r_seoul`` is shard 3's Seoul replica).

Safety is enforced per shard at three layers:

* routing — clients compute ownership with the same partitioner servers use;
* an ownership guard in front of every replica's client-request handler
  rejects wrong-shard keys with a redirect hint instead of proposing them;
* each replica's store carries a key filter (`KVStore.set_key_filter`) as a
  last-resort safety net; `filtered` in the result must stay 0 as long as
  the partition map is static.

The partition map is epoch-versioned and no longer frozen at construction:
`ShardedCluster.reshard(new_num_shards, at=...)` performs a **live**
N -> M transition — new groups are spun up mid-run, a `ReshardCoordinator`
migrates each moved hash range (records plus at-most-once dedup state)
donor -> recipient through the groups' committed logs, and clients repair
their routing tables from the epoch-stamped maps servers ship with
redirects.  See `repro.shard.reshard` for the moving parts and
`run_reshard_experiment` for the instrumented version.

`run_sharded_experiment` mirrors `repro.bench.run_experiment`: build, run,
trim warm-up/cool-down, return aggregate and per-shard stats plus the
per-shard `HistoryChecker` verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.kvstore.checker import HistoryChecker
from repro.membership.driver import MembershipDriver
from repro.metrics.recorder import MetricsRecorder
from repro.obs import Observability, ObsConfig, install_standard_gauges
from repro.protocols.config import geo_cluster
from repro.protocols.messages import ConfigChange
from repro.protocols.mux import GroupMux, MuxDirectory
from repro.protocols.types import OpType
from repro.shard.partition import VersionedPartitioner
from repro.shard.placement import leader_sites
from repro.shard.control import ControlGroup
from repro.shard.reshard import (
    ReshardControlPlane,
    ReshardCoordinator,
    ShardOwnership,
)
from repro.shard.router import ShardRouter, checker_hook, spawn_sharded_clients
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Host
from repro.sim.rng import SplitRng
from repro.protocols.types import Consistency
from repro.sim.topology import HostPlan, Topology, ec2_five_regions
from repro.sim.units import sec
from repro.workload.plan import ClientPlan
from repro.workload.session import RetryPolicy
from repro.workload.ycsb import WorkloadConfig


def shard_of_server(server: str) -> int:
    """Recover the shard id from a group-prefixed replica name (g<id>_...)."""
    return int(server.split("_", 1)[0][1:])


class UnsupportedProtocolError(RuntimeError):
    """A shard-layer operation was requested on a protocol that cannot
    serve it (e.g. live resharding of leaderless Mencius groups)."""


@dataclass
class ShardedSpec:
    """One sharded trial's parameters."""

    protocol: str = "raft"
    num_shards: int = 4
    placement: str = "spread"
    colocated_site: str = "oregon"
    clients_per_region: int = 10
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    duration_s: float = 8.0
    warmup_s: float = 2.0
    cooldown_s: float = 1.0
    seed: int = 1
    topology: Optional[Topology] = None
    check_history: bool = False
    # Shared per-site WAN uplink, as a multiple of one node's NIC rate
    # (None disables the shared link entirely).
    site_uplink_factor: Optional[float] = 2.0
    # Host multiplexing: how many machines each site runs (replica of group
    # g lives on host g % hosts_per_site).  None keeps the legacy
    # one-private-host-per-replica model.  With shared hosts, colocated
    # replicas contend on one CPU/NIC and crash as one machine.
    hosts_per_site: Optional[int] = None
    # Cross-group coalescing (`repro.protocols.mux.GroupMux`): batch all
    # messages to the same destination host into one envelope per flush
    # tick and merge colocated leaders' heartbeats into host beacons.
    # Implies hosts_per_site=1 when no host layout is given.
    coalesce: bool = False
    coalesce_flush_interval: Optional[int] = None
    # -- client fleet (see `workload.plan.ClientPlan`) ----------------------
    # Session pipeline window per client (1 = the legacy closed loop).
    pipeline_depth: int = 1
    # Aggregate open-loop arrival rate in ops/s (None = closed loop).
    offered_load: Optional[float] = None
    # Per-spec retry/backoff schedule for every client session.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    # Default consistency for the fleet's reads.
    read_consistency: Consistency = Consistency.DEFAULT
    # Share sim Hosts among each site's clients (None = private hosts).
    client_hosts_per_site: Optional[int] = None
    # Observability (repro.obs): spans + gauges + profiler for this run.
    obs: bool = False
    obs_config: Optional[ObsConfig] = None

    def with_(self, **changes) -> "ShardedSpec":
        return replace(self, **changes)

    def client_plan(self) -> ClientPlan:
        return ClientPlan(
            per_region=self.clients_per_region,
            depth=self.pipeline_depth,
            retry=self.retry,
            read_consistency=self.read_consistency,
            offered_load=self.offered_load,
            hosts_per_site=self.client_hosts_per_site,
        )

    @property
    def effective_hosts_per_site(self) -> Optional[int]:
        if self.hosts_per_site is None and self.coalesce:
            return 1
        return self.hosts_per_site


@dataclass
class ShardedResult:
    spec: ShardedSpec
    throughput_ops: float
    per_shard_throughput: Dict[int, float]
    read_latency: Dict[str, float]
    write_latency: Dict[str, float]
    completed: int
    redirects: int
    filtered: int
    violations: Dict[int, List[str]]
    leaders: Dict[int, str]
    events_processed: int
    capped_redirects: int = 0
    # Named event counters (coalesce_envelopes, coalesce_messages,
    # coalesce_beacons, ... — see MetricsRecorder.counters).
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def linearizable(self) -> bool:
        return all(not v for v in self.violations.values())

    @property
    def messages_per_envelope(self) -> float:
        """Header-amortization factor of the coalescing transport: protocol
        messages (beacon beats included) carried per envelope sent."""
        envelopes = self.counters.get("coalesce_envelopes", 0)
        if not envelopes:
            return 0.0
        carried = (self.counters.get("coalesce_messages", 0)
                   + self.counters.get("coalesce_beacon_beats", 0))
        return carried / envelopes


class ShardedCluster:
    """A built sharded deployment: N groups, a router, sharded clients."""

    def __init__(self, spec: ShardedSpec) -> None:
        self.spec = spec
        self.topology = spec.topology or ec2_five_regions()
        self.rng = SplitRng(spec.seed)
        self.sim = Simulator()
        node_bw = NetworkConfig.bandwidth_bytes_per_sec
        net_config = NetworkConfig(
            site_bandwidth_bytes_per_sec=(
                None if spec.site_uplink_factor is None
                else spec.site_uplink_factor * node_bw))
        self.network = Network(self.sim, self.topology, rng=self.rng, config=net_config)
        self.metrics = MetricsRecorder()
        self.versioned = VersionedPartitioner.initial(spec.num_shards)
        self.partitioner = self.versioned  # the cluster's current map
        self.leaders = leader_sites(spec.placement, spec.num_shards,
                                    self.topology.sites, home=spec.colocated_site)

        # Host multiplexing: shared machines (and, with coalescing, the
        # per-host GroupMux transports) that group replicas are placed on.
        self.hosts_per_site = spec.effective_hosts_per_site
        self.host_plan = (None if self.hosts_per_site is None
                          else HostPlan(tuple(self.topology.sites),
                                        self.hosts_per_site))
        self.hosts: Dict[str, Host] = {}
        # Machines running data replicas (control hosts spun up for a
        # reshard fleet are excluded) — the pool `replace_host` and the
        # nemesis `host_replace` schedule pick from.
        self.data_host_names: set = set()
        self.directory = MuxDirectory() if spec.coalesce else None
        self.muxes: Dict[str, GroupMux] = {}

        self.groups: Dict[int, Dict[str, object]] = {}
        self.configs = {}
        self.checkers: Dict[int, HistoryChecker] = {}
        self.ownerships: Dict[str, ShardOwnership] = {}
        for shard in range(spec.num_shards):
            self._build_group(shard, self.leaders[shard], self.versioned,
                              owned=True)

        local_replica = {
            shard: {site: f"g{shard}_r_{site}" for site in self.topology.sites}
            for shard in range(spec.num_shards)
        }
        self.router = ShardRouter(self.versioned, local_replica,
                                  sites=self.topology.sites)
        self.clients = self._spawn_clients()
        if spec.check_history:
            hook = checker_hook(self.checkers)
            for client in self.clients:
                client.on_complete_hooks.append(hook)

        self.obs: Optional[Observability] = None
        if spec.obs:
            self.obs = Observability(self.sim, self.metrics, spec.obs_config)
            for shard, replicas in self.groups.items():
                self.obs.install(replicas.values())
                install_standard_gauges(
                    self.obs.sampler, replicas=replicas.values(),
                    network=self.network, group=f"g{shard}")
            self.obs.install(self.clients)
            # Transactional deployments: the coordinators are part of the
            # serving path, so their 2PC phases join the spans too.
            self.obs.install(getattr(self, "coordinators", []))
            install_standard_gauges(self.obs.sampler, clients=self.clients,
                                    muxes=self.muxes.values())
            self.obs.sampler.start(stop_at=sec(spec.duration_s))

        # Live-reshard state (`coordinator` is the fleet facade: plan,
        # control group, and completion state of the active transition)
        self.coordinator: Optional[ReshardControlPlane] = None
        self.reshard_started_at: Optional[int] = None
        self.reshard_completed_at: Optional[int] = None
        self._target: Optional[VersionedPartitioner] = None

        # Live-membership state: the per-shard voter lists and config
        # epochs as this layer last drove them, the in-flight change
        # drivers, and a completion journal for the figures.
        self.members: Dict[int, List[str]] = {
            shard: sorted(replicas) for shard, replicas in self.groups.items()
        }
        self.config_epochs: Dict[int, int] = {shard: 0 for shard in self.groups}
        self.membership_drivers: List[MembershipDriver] = []
        self.membership_events: List[Tuple[float, str]] = []
        self.membership_completed_at: Optional[int] = None
        self._replaced_incarnations: Dict[str, int] = {}

    def _spawn_clients(self):
        """Build this deployment's client fleet through the spec's
        `ClientPlan` (the transactional cluster overrides this to spawn
        coordinators + transactional clients over the same plan)."""
        spec = self.spec
        return spawn_sharded_clients(
            self.sim, self.network, self.topology.sites, self.router,
            spec.clients_per_region, spec.workload, self.rng, self.metrics,
            stop_at=sec(spec.duration_s), plan=spec.client_plan(),
        )

    def _build_group(self, shard: int, leader_site: str,
                     versioned: VersionedPartitioner, owned: bool) -> None:
        """One replica group for `shard`, wired with epoch-versioned
        ownership.  `owned=False` spins the group up empty (mid-reshard):
        it owns nothing until migrations import its ranges."""
        # Defer to the registry at build time (shard -> bench -> shard would
        # otherwise be an import cycle at module load).
        from repro.bench.harness import LEADERLESS, PROTOCOLS

        spec = self.spec
        replica_cls = PROTOCOLS[spec.protocol]
        prefix = f"g{shard}_r"
        leader = (None if spec.protocol in LEADERLESS
                  else f"{prefix}_{leader_site}")
        extra = {}
        if self.host_plan is not None:
            extra["hosts"] = {
                f"{prefix}_{site}":
                    self._host(self.host_plan.host_for_group(site, shard), site)
                for site in self.topology.sites
            }
            self.data_host_names.update(
                host.name for host in extra["hosts"].values())
            if spec.coalesce:
                extra["coalesce_enabled"] = True
                if spec.coalesce_flush_interval is not None:
                    extra["coalesce_flush_interval"] = spec.coalesce_flush_interval
        config = geo_cluster(self.topology.sites, prefix=prefix,
                             initial_leader=leader, **extra)
        replicas = {
            name: replica_cls(name, self.sim, self.network, config)
            for name in config.names
        }
        if spec.coalesce:
            for name, replica in replicas.items():
                self._mux_for(replica.host, config).register(replica, shard)
        for replica in replicas.values():
            ownership = ShardOwnership(shard, versioned, owned=owned)
            replica.store.set_key_filter(ownership.owns_key)
            replica.ownership_guard = ownership.guard
            replica.shard_info = ownership
            replica.on_apply_hooks.append(ownership.on_apply)
            self.ownerships[replica.name] = ownership
        self.configs[shard] = config
        self.groups[shard] = replicas
        if spec.check_history:
            checker = HistoryChecker()
            for replica in replicas.values():
                replica.on_apply_hooks.append(checker.record_apply)
            self.checkers[shard] = checker

    def _host(self, host_name: str, site: str) -> Host:
        """Get-or-create a shared machine."""
        host = self.hosts.get(host_name)
        if host is None:
            host = Host(host_name, self.sim, site=site)
            self.hosts[host_name] = host
        return host

    def _mux_for(self, host: Host, config) -> GroupMux:
        """Get-or-create the coalescing transport of a shared machine."""
        mux = self.muxes.get(host.name)
        if mux is None:
            mux = GroupMux(host, self.sim, self.network, self.directory,
                           flush_interval=config.coalesce_flush_interval,
                           beacon_interval=config.heartbeat_interval,
                           costs=config.costs, metrics=self.metrics)
            self.muxes[host.name] = mux
        return mux

    # -- live resharding -----------------------------------------------------

    def reshard(self, new_num_shards: int, at: Optional[int] = None) -> None:
        """Transition to `new_num_shards` groups — immediately, or at sim
        time `at` (microseconds) so the migration runs under live load.

        Raises `UnsupportedProtocolError` for leaderless protocols: the
        migration coordinator drives MIGRATE_OUT/IN through each group's
        leader (retrying until one answers), and a Mencius group has no
        leader to converge on — the transition would silently wedge."""
        from repro.bench.harness import LEADERLESS

        if self.spec.protocol in LEADERLESS:
            raise UnsupportedProtocolError(
                f"live resharding is not supported for leaderless protocol "
                f"{self.spec.protocol!r}: MIGRATE_OUT/IN need a group leader "
                f"to serve the export snapshot; use a leader-based protocol "
                f"or drain the group offline instead")
        if at is None:
            self._start_reshard(new_num_shards)
        else:
            self.sim.schedule_at(at, self._start_reshard, new_num_shards)

    def _start_reshard(self, new_num_shards: int) -> None:
        if self.coordinator is not None and not self.coordinator.done:
            raise RuntimeError("a reshard is already in progress")
        target, moves = self.versioned.advanced(new_num_shards)
        new_leaders = leader_sites(self.spec.placement, new_num_shards,
                                   self.topology.sites,
                                   home=self.spec.colocated_site)
        for shard in range(self.versioned.num_shards, new_num_shards):
            self.leaders[shard] = new_leaders[shard]
            self._build_group(shard, new_leaders[shard], target, owned=False)
        self._target = target
        self.reshard_started_at = self.sim.now
        self.reshard_completed_at = None
        # The transition is driven by a fleet: one coordinator per site
        # arbitrated by a dedicated control group, the first site's member
        # holding the initial owner lease.  The control hosts join the
        # cluster's host table so machine-level faults can hit the active
        # driver — a standby then claims the role and resumes from the
        # journaled cursor.
        sites = self.topology.sites
        tag = f"rsctl_e{target.epoch}"
        members = [f"reshard_e{target.epoch}_{site}" for site in sites]
        control = ControlGroup(tag, self.sim, self.network, sites,
                               self.spec.protocol, members=members,
                               initial_owner=members[0])
        for host in control.hosts.values():
            self.hosts[host.name] = host
        plane = ReshardControlPlane(target, moves, control,
                                    on_done=self._finish_reshard)
        self.coordinator = plane
        for site in sites:
            ReshardCoordinator(
                f"reshard_e{target.epoch}_{site}", self.sim, self.network,
                site, control, target, moves, plane,
                self.rng.stream(f"reshard:{target.epoch}:{site}"),
                metrics=self.metrics)

    def _finish_reshard(self) -> None:
        if self.reshard_completed_at is not None:
            return  # a second fleet member observing the committed cursor
        self.versioned = self._target
        self.partitioner = self.versioned
        self.reshard_completed_at = self.sim.now

    # -- live membership -----------------------------------------------------

    def _change_kind(self) -> str:
        """Which reconfiguration style this deployment's protocol runs:
        joint consensus for the Raft family, α-bounded single-decree for
        the Paxos family.  Leaderless Mencius groups are refused — a
        config change must commit through a group leader."""
        from repro.bench.harness import LEADERLESS, PROTOCOLS

        if self.spec.protocol in LEADERLESS:
            raise UnsupportedProtocolError(
                f"live membership changes are not supported for leaderless "
                f"protocol {self.spec.protocol!r}: the change entry must "
                f"commit through a group leader (and Mencius instance "
                f"ownership is positional — a voter-set swap would reassign "
                f"every open instance); use a leader-based protocol")
        from repro.protocols.multipaxos import MultiPaxosReplica

        replica_cls = PROTOCOLS[self.spec.protocol]
        return ("alpha" if issubclass(replica_cls, MultiPaxosReplica)
                else "joint")

    def replace_host(self, host_name: str, kill: bool = True,
                     alpha: int = 0) -> str:
        """Replace a data machine live: crash it (every replica it runs
        dies with it, permanently), spawn a fresh `Host` in the same
        site, and drive one config change per group the machine served —
        each swapping the dead replica for a freshly spawned one that
        joins empty and catches up from the leader's snapshot.  Returns
        the replacement host's name."""
        kind = self._change_kind()
        if self.host_plan is None:
            raise RuntimeError(
                "replace_host needs a machine layout (spec.hosts_per_site)")
        host = self.hosts[host_name]
        victims = sorted(node.name for node in host.nodes
                         if node.name in self.ownerships)
        if not victims:
            raise ValueError(f"{host_name!r} runs no data replicas")
        if kill and host.alive:
            host.crash()
        incarnation = self._replaced_incarnations.get(host_name, 0) + 1
        self._replaced_incarnations[host_name] = incarnation
        site = HostPlan.site_of_host(host_name)
        new_host = self._host(
            HostPlan.replacement_host_name(host_name, incarnation), site)
        self.data_host_names.add(new_host.name)
        self.data_host_names.discard(host_name)
        self.membership_events.append(
            (self.sim.now / 1e6,
             f"replace host {host_name} -> {new_host.name}"))
        for victim in victims:
            self._change_membership(shard_of_server(victim), kind,
                                    victim=victim, site=site,
                                    new_host=new_host, alpha=alpha)
        return new_host.name

    def add_replica(self, shard: int, site: str, alpha: int = 0) -> str:
        """Grow a group by one voter in `site`; returns the new replica's
        name.  The new replica joins empty (catch-up snapshot) and only
        becomes a voter when the committed change applies."""
        kind = self._change_kind()
        new_host = None
        if self.host_plan is not None:
            new_host = self._host(
                self.host_plan.host_for_group(site, shard), site)
            self.data_host_names.add(new_host.name)
        return self._change_membership(shard, kind, victim=None, site=site,
                                       new_host=new_host, alpha=alpha)

    def remove_replica(self, shard: int, replica: str,
                       alpha: int = 0) -> None:
        """Shrink a group: drive a config change dropping `replica` from
        the voter set.  The replica retires (stale-voter fencing) when it
        applies the change; it is not crashed."""
        kind = self._change_kind()
        self._change_membership(shard, kind, victim=replica, site=None,
                                new_host=None, alpha=alpha)

    def _change_membership(self, shard: int, kind: str, *,
                           victim: Optional[str], site: Optional[str],
                           new_host: Optional[Host],
                           alpha: int = 0) -> Optional[str]:
        """One logged voter-set change for one group: optionally spawn a
        joiner (when `site` is given), then hand the encoded change to a
        `MembershipDriver` and watch the group's applies for completion
        (`final`/`alpha` at the target epoch)."""
        from repro.bench.harness import PROTOCOLS

        spec = self.spec
        group = self.groups[shard]
        old_members = list(self.members[shard])
        if victim is not None and victim not in old_members:
            raise ValueError(f"{victim!r} is not a member of group {shard}")
        epoch = self.config_epochs[shard] + 1
        self.config_epochs[shard] = epoch
        survivors = [m for m in old_members if m != victim]

        replacement = None
        if site is not None:
            replacement = f"g{shard}_r{epoch}_{site}"
            member_sites = {m: group[m].site for m in survivors}
            member_sites[replacement] = site
            kwargs = dict(replicas=member_sites, initial_leader=None)
            if new_host is not None:
                hosts = {m: group[m].host for m in survivors
                         if group[m].host is not None}
                hosts[replacement] = new_host
                kwargs["hosts"] = hosts
            config = replace(self.configs[shard], **kwargs)
            replica_cls = PROTOCOLS[spec.protocol]
            joiner = replica_cls(replacement, self.sim, self.network, config)
            # The joiner must not campaign (or run phase 1) before a
            # committed config makes it a voter; `joining` is cleared by
            # the protocol when the final/alpha change applies.
            joiner.joining = True
            for timer_name in ("_election_timer", "_prepare_timer"):
                timer = getattr(joiner, timer_name, None)
                if timer is not None:
                    timer.cancel()
            if spec.coalesce and new_host is not None:
                self._mux_for(new_host, config).register(joiner, shard)
            ownership = ShardOwnership(shard, self.versioned, owned=True)
            joiner.store.set_key_filter(ownership.owns_key)
            joiner.ownership_guard = ownership.guard
            joiner.shard_info = ownership
            joiner.on_apply_hooks.append(ownership.on_apply)
            self.ownerships[replacement] = ownership
            if spec.check_history and shard in self.checkers:
                joiner.on_apply_hooks.append(
                    self.checkers[shard].record_apply)
            if self.obs is not None:
                self.obs.install([joiner])
            group[replacement] = joiner

        new_members = sorted(survivors + ([replacement] if replacement else []))
        self.members[shard] = new_members
        change = ConfigChange(
            kind=kind, epoch=epoch,
            old=tuple(old_members) if kind == "joint" else (),
            new=tuple(new_members), alpha=alpha)

        # Completion watcher: the transition is done when any replica
        # applies the final (joint) / alpha change at this epoch.
        fired = [False]
        victim_site = group[victim].site if victim is not None else None

        def watch(server: str, index: int, command) -> None:
            if fired[0] or command.op is not OpType.CONFIG:
                return
            applied = ConfigChange.decode(command)
            if applied.epoch != epoch or applied.kind == "joint":
                return
            fired[0] = True
            self._on_membership_complete(shard, site, victim_site,
                                         victim, replacement)

        for member in survivors:
            group[member].on_apply_hooks.append(watch)
        if replacement is not None:
            group[replacement].on_apply_hooks.append(watch)

        # The send ring starts at the group's original leader site and
        # rotates through the other survivors; forwarding finds whoever
        # leads now, elections just delay the ack.
        leader_name = f"g{shard}_r_{self.leaders[shard]}"
        ring = ([leader_name] if leader_name in survivors else []) + [
            m for m in survivors if m != leader_name]
        driver = MembershipDriver(
            f"member_g{shard}_e{epoch}", self.sim, self.network,
            site or group[survivors[0]].site, ring, change,
            self.rng.stream(f"member:{shard}:{epoch}"))
        self.membership_drivers.append(driver)
        self.membership_events.append(
            (self.sim.now / 1e6,
             f"g{shard} e{epoch} {kind}: -{victim or '∅'} "
             f"+{replacement or '∅'}"))
        return replacement

    def _on_membership_complete(self, shard: int, site: Optional[str],
                                victim_site: Optional[str],
                                victim: Optional[str],
                                replacement: Optional[str]) -> None:
        """First final/alpha apply at the target epoch: repoint the
        router, stamp completion, bump the figure counter."""
        if replacement is not None and site is not None:
            self.router.local_replica[shard][site] = replacement
        elif victim_site is not None:
            # Pure removal: that site's clients fall back to the leader's
            # replica (the retired one now fences every command).
            self.router.local_replica[shard][victim_site] = (
                f"g{shard}_r_{self.leaders[shard]}")
        self.membership_completed_at = self.sim.now
        self.metrics.incr("config_changes")
        self.membership_events.append(
            (self.sim.now / 1e6,
             f"g{shard} done: {victim or '∅'} -> {replacement or '∅'}"))

    # -- introspection ------------------------------------------------------

    def replicas_of(self, shard: int) -> Dict[str, object]:
        return self.groups[shard]

    def leader_replica(self, shard: int):
        return self.groups[shard][f"g{shard}_r_{self.leaders[shard]}"]

    def filtered_count(self) -> int:
        """Applies rejected by store key filters (0 == routing was airtight;
        during a reshard, boundary-straddling commands may legitimately be
        bounced here and answered with a redirect)."""
        return sum(replica.store.filtered_count
                   for replicas in self.groups.values()
                   for replica in replicas.values())

    # -- running ------------------------------------------------------------

    def run(self) -> ShardedResult:
        spec = self.spec
        self.sim.run(until=sec(spec.duration_s))
        window_start = sec(spec.warmup_s)
        window_end = sec(spec.duration_s - spec.cooldown_s)
        violations = {
            shard: checker.check_all()
            for shard, checker in sorted(self.checkers.items())
        }
        return ShardedResult(
            spec=spec,
            throughput_ops=self.metrics.throughput_ops(window_start, window_end),
            per_shard_throughput=self.metrics.throughput_by(
                window_start, window_end,
                key=lambda record: shard_of_server(record.server)),
            read_latency=self.metrics.latency_summary_ms(
                window_start, window_end, lambda r: r.op is OpType.GET),
            write_latency=self.metrics.latency_summary_ms(
                window_start, window_end, lambda r: r.op is OpType.PUT),
            completed=len(self.metrics.window(window_start, window_end)),
            redirects=sum(client.redirects for client in self.clients),
            filtered=self.filtered_count(),
            violations=violations,
            leaders=dict(self.leaders),
            events_processed=self.sim.events_processed,
            capped_redirects=sum(client.capped_redirects
                                 for client in self.clients),
            counters=dict(self.metrics.counters),
        )


def run_sharded_experiment(spec: ShardedSpec) -> ShardedResult:
    return ShardedCluster(spec).run()


# ---------------------------------------------------------------------------
# The reshard experiment: a live N -> M transition under load
# ---------------------------------------------------------------------------


@dataclass
class ReshardSpec(ShardedSpec):
    """A sharded trial that resizes itself mid-run.

    `num_shards` is the starting shard count; at `reshard_at_s` the cluster
    transitions to `reshard_to` groups while clients keep issuing load.
    """

    reshard_to: int = 4
    reshard_at_s: float = 3.0


@dataclass
class ReshardResult:
    spec: ReshardSpec
    pre_throughput: float   # steady window before the transition
    post_throughput: float  # from migration completion to cool-down
    timeline: List[Tuple[float, float]]  # (bucket start in s, ops/s)
    migration_started_s: Optional[float]
    migration_completed_s: Optional[float]
    moves: int
    completed: int
    acks_lost: int
    acks_duplicated: int
    duplicate_executions: int
    redirects: int
    capped_redirects: int
    filtered: int
    final_epoch: Optional[int]
    violations: Dict[int, List[str]]
    leaders: Dict[int, str]
    failovers: int = 0  # reshard-driver lease takeovers during the run

    @property
    def reshard_completed(self) -> bool:
        return self.migration_completed_s is not None

    @property
    def migration_ms(self) -> float:
        if not self.reshard_completed:
            return float("nan")
        return 1000.0 * (self.migration_completed_s - self.migration_started_s)

    @property
    def linearizable(self) -> bool:
        return all(not v for v in self.violations.values())


def duplicate_execution_count(cluster: ShardedCluster) -> int:
    """Acknowledged writes that executed more than once (requires
    `check_history`): for every written key, the final owner group's
    version count must equal the distinct acknowledged PUTs plus at most
    the still-in-flight ones.  Any excess means a retry re-executed
    somewhere instead of being answered from the migrated dedup cache —
    the failure the client-side ack identities cannot see."""
    acked: Dict[str, set] = {}
    for checker in cluster.checkers.values():
        for event in checker.events:
            if event.op is OpType.PUT:
                acked.setdefault(event.key, set()).add((event.client, event.seq))
    in_flight: Dict[str, int] = {}
    for client in cluster.clients:
        for command in client.pending_commands():
            if command.op is OpType.PUT:
                in_flight[command.key] = in_flight.get(command.key, 0) + 1
    duplicates = 0
    for key, acks in acked.items():
        shard = cluster.partitioner.shard_of(key)
        version = max((replica.store.version(key)
                       for replica in cluster.groups[shard].values()),
                      default=0)
        duplicates += max(0, version - len(acks) - in_flight.get(key, 0))
    return duplicates


def run_reshard_experiment(spec: ReshardSpec,
                           bucket_s: float = 0.5,
                           nemesis=None) -> ReshardResult:
    """Build a `num_shards`-group cluster, trigger a live transition to
    `reshard_to` groups at `reshard_at_s`, and account for every ack.
    `nemesis(cluster)`, when given, installs a fault schedule (leader
    crashes, partitions — see `repro.shard.nemesis`) before the run."""
    cluster = ShardedCluster(spec)
    cluster.reshard(spec.reshard_to, at=sec(spec.reshard_at_s))
    if nemesis is not None:
        nemesis(cluster)
    cluster.sim.run(until=sec(spec.duration_s))

    metrics = cluster.metrics
    window_end = sec(spec.duration_s - spec.cooldown_s)
    pre = metrics.throughput_ops(sec(spec.warmup_s), sec(spec.reshard_at_s))
    completed_s = (cluster.reshard_completed_at / 1e6
                   if cluster.reshard_completed_at is not None else None)
    post_start = sec(completed_s if completed_s is not None
                     else spec.reshard_at_s)
    post = metrics.throughput_ops(post_start, window_end)

    timeline: List[Tuple[float, float]] = []
    t = 0.0
    while t < spec.duration_s:
        hi = min(t + bucket_s, spec.duration_s)
        count = sum(1 for r in metrics.records if sec(t) <= r.end < sec(hi))
        timeline.append((t, count / (hi - t)))
        t = hi

    # Ack accounting.  The two client-side identities are sanity checks on
    # the closed-loop machinery (one seq per command, one record per
    # completion); the check with teeth is `duplicate_executions`, which
    # compares store versions against distinct acknowledged writes and
    # catches a retry re-executing on the new owner.
    acks_lost = sum(c.seq - c.completed - c.in_flight_count
                    for c in cluster.clients)
    acks_duplicated = (len(metrics.records)
                       - sum(c.completed for c in cluster.clients))

    violations = {shard: checker.check_all()
                  for shard, checker in sorted(cluster.checkers.items())}
    return ReshardResult(
        spec=spec,
        pre_throughput=pre,
        post_throughput=post,
        timeline=timeline,
        migration_started_s=(cluster.reshard_started_at / 1e6
                             if cluster.reshard_started_at is not None else None),
        migration_completed_s=completed_s,
        moves=len(cluster.coordinator.moves) if cluster.coordinator else 0,
        completed=len(metrics.window(sec(spec.warmup_s), window_end)),
        acks_lost=acks_lost,
        acks_duplicated=acks_duplicated,
        duplicate_executions=duplicate_execution_count(cluster),
        redirects=sum(c.redirects for c in cluster.clients),
        capped_redirects=sum(c.capped_redirects for c in cluster.clients),
        filtered=cluster.filtered_count(),
        final_epoch=cluster.router.epoch,
        violations=violations,
        leaders=dict(cluster.leaders),
        failovers=(cluster.coordinator.failovers
                   if cluster.coordinator is not None else 0),
    )


# ---------------------------------------------------------------------------
# The membership experiment: a live host replacement under load
# ---------------------------------------------------------------------------


@dataclass
class MembershipSpec(ShardedSpec):
    """A sharded trial that loses a machine mid-run and splices in a
    replacement through logged config changes.

    At `replace_at_s` one data host is crashed permanently; a fresh host
    is spawned in the same site and every group the dead machine served
    drives a voter-set change swapping the dead replica for a new one
    (joint consensus for the Raft family, α-bounded reconfiguration for
    the Paxos family — chosen by the deployment's protocol).
    """

    replace_at_s: float = 3.0
    # None picks the first data host (sorted) — deterministic per spec.
    target_host: Optional[str] = None
    # 0 uses the protocol default window (`membership.DEFAULT_ALPHA`).
    alpha: int = 0

    def __post_init__(self) -> None:
        if self.hosts_per_site is None:
            # Host replacement needs a machine layout: the machine, not
            # the process, is the replacement unit.
            self.hosts_per_site = 1


@dataclass
class MembershipResult:
    spec: MembershipSpec
    kind: str               # "joint" or "alpha"
    pre_throughput: float   # steady window before the replacement
    post_throughput: float  # from transition completion to cool-down
    # (bucket start in s, ops/s, p99 latency ms — NaN for an empty bucket)
    timeline: List[Tuple[float, float, float]]
    replaced_host: str
    replacement_host: Optional[str]
    groups_changed: int     # config changes driven (one per hosted group)
    config_changes: int     # completed transitions (final/alpha applied)
    replace_started_s: float
    replace_completed_s: Optional[float]
    completed: int
    acks_lost: int
    acks_duplicated: int
    duplicate_executions: int
    redirects: int
    capped_redirects: int
    filtered: int
    violations: Dict[int, List[str]]
    events_processed: int = 0

    @property
    def replacement_completed(self) -> bool:
        return (self.replace_completed_s is not None
                and self.config_changes >= self.groups_changed)

    @property
    def replacement_ms(self) -> float:
        if self.replace_completed_s is None:
            return float("nan")
        return 1000.0 * (self.replace_completed_s - self.replace_started_s)

    @property
    def throughput_ratio(self) -> float:
        if not self.pre_throughput:
            return float("nan")
        return self.post_throughput / self.pre_throughput

    @property
    def linearizable(self) -> bool:
        return all(not v for v in self.violations.values())


def run_membership_experiment(spec: MembershipSpec,
                              bucket_s: float = 0.5,
                              nemesis=None) -> MembershipResult:
    """Build the cluster, kill one data host at `replace_at_s`, splice in
    a replacement through the protocol's own reconfiguration style, and
    account for every ack across the window (same identities as the
    reshard experiment: lost, duplicated, re-executed)."""
    cluster = ShardedCluster(spec)
    kind = cluster._change_kind()  # validate the protocol up front
    target = spec.target_host or sorted(cluster.data_host_names)[0]
    outcome: Dict[str, object] = {"new_host": None}

    def go() -> None:
        outcome["new_host"] = cluster.replace_host(target, alpha=spec.alpha)

    cluster.sim.schedule_at(sec(spec.replace_at_s), go)
    if nemesis is not None:
        nemesis(cluster)
    cluster.sim.run(until=sec(spec.duration_s))

    metrics = cluster.metrics
    window_end = sec(spec.duration_s - spec.cooldown_s)
    pre = metrics.throughput_ops(sec(spec.warmup_s), sec(spec.replace_at_s))
    completed_s = (cluster.membership_completed_at / 1e6
                   if cluster.membership_completed_at is not None else None)
    post_start = sec(completed_s if completed_s is not None
                     else spec.replace_at_s)
    post = metrics.throughput_ops(post_start, window_end)

    timeline: List[Tuple[float, float, float]] = []
    t = 0.0
    while t < spec.duration_s:
        hi = min(t + bucket_s, spec.duration_s)
        lat = sorted(r.latency_ms for r in metrics.records
                     if sec(t) <= r.end < sec(hi))
        p99 = lat[int(0.99 * (len(lat) - 1))] if lat else float("nan")
        timeline.append((t, len(lat) / (hi - t), p99))
        t = hi

    acks_lost = sum(c.seq - c.completed - c.in_flight_count
                    for c in cluster.clients)
    acks_duplicated = (len(metrics.records)
                       - sum(c.completed for c in cluster.clients))
    violations = {shard: checker.check_all()
                  for shard, checker in sorted(cluster.checkers.items())}
    return MembershipResult(
        spec=spec,
        kind=kind,
        pre_throughput=pre,
        post_throughput=post,
        timeline=timeline,
        replaced_host=target,
        replacement_host=outcome["new_host"],
        groups_changed=len(cluster.membership_drivers),
        config_changes=metrics.counters.get("config_changes", 0),
        replace_started_s=spec.replace_at_s,
        replace_completed_s=completed_s,
        completed=len(metrics.window(sec(spec.warmup_s), window_end)),
        acks_lost=acks_lost,
        acks_duplicated=acks_duplicated,
        duplicate_executions=duplicate_execution_count(cluster),
        redirects=sum(c.redirects for c in cluster.clients),
        capped_redirects=sum(c.capped_redirects for c in cluster.clients),
        filtered=cluster.filtered_count(),
        violations=violations,
        events_processed=cluster.sim.events_processed,
    )
