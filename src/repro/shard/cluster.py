"""N independent consensus groups over one shared simulator and network.

Each shard is a full replica group of any protocol in the `PROTOCOLS`
registry — one replica per region, its own leader, its own log and store —
all sharing one `Simulator`, `Network`, and `Topology` so cross-group
contention (the per-site WAN uplink) is modelled.  Replica names are
prefixed per group (``g3_r_seoul`` is shard 3's Seoul replica).

Safety is enforced per shard at three layers:

* routing — clients compute ownership with the same partitioner servers use;
* an ownership guard in front of every replica's client-request handler
  rejects wrong-shard keys with a redirect hint instead of proposing them;
* each replica's store carries a key filter (`KVStore.set_key_filter`) as a
  last-resort safety net; `filtered` in the result must stay 0.

`run_sharded_experiment` mirrors `repro.bench.run_experiment`: build, run,
trim warm-up/cool-down, return aggregate and per-shard stats plus the
per-shard `HistoryChecker` verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.kvstore.checker import HistoryChecker
from repro.metrics.recorder import MetricsRecorder
from repro.protocols.config import geo_cluster
from repro.protocols.types import OpType
from repro.shard.partition import HashRangePartitioner, Partitioner
from repro.shard.placement import leader_sites
from repro.shard.router import ShardRouter, checker_hook, spawn_sharded_clients
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SplitRng
from repro.sim.topology import Topology, ec2_five_regions
from repro.sim.units import sec
from repro.workload.ycsb import WorkloadConfig


def shard_of_server(server: str) -> int:
    """Recover the shard id from a group-prefixed replica name (g<id>_...)."""
    return int(server.split("_", 1)[0][1:])


@dataclass
class ShardedSpec:
    """One sharded trial's parameters."""

    protocol: str = "raft"
    num_shards: int = 4
    placement: str = "spread"
    colocated_site: str = "oregon"
    clients_per_region: int = 10
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    duration_s: float = 8.0
    warmup_s: float = 2.0
    cooldown_s: float = 1.0
    seed: int = 1
    topology: Optional[Topology] = None
    check_history: bool = False
    # Shared per-site WAN uplink, as a multiple of one node's NIC rate
    # (None disables the shared link entirely).
    site_uplink_factor: Optional[float] = 2.0

    def with_(self, **changes) -> "ShardedSpec":
        return replace(self, **changes)


@dataclass
class ShardedResult:
    spec: ShardedSpec
    throughput_ops: float
    per_shard_throughput: Dict[int, float]
    read_latency: Dict[str, float]
    write_latency: Dict[str, float]
    completed: int
    redirects: int
    filtered: int
    violations: Dict[int, List[str]]
    leaders: Dict[int, str]
    events_processed: int

    @property
    def linearizable(self) -> bool:
        return all(not v for v in self.violations.values())


class ShardedCluster:
    """A built sharded deployment: N groups, a router, sharded clients."""

    def __init__(self, spec: ShardedSpec) -> None:
        self.spec = spec
        self.topology = spec.topology or ec2_five_regions()
        self.rng = SplitRng(spec.seed)
        self.sim = Simulator()
        node_bw = NetworkConfig.bandwidth_bytes_per_sec
        net_config = NetworkConfig(
            site_bandwidth_bytes_per_sec=(
                None if spec.site_uplink_factor is None
                else spec.site_uplink_factor * node_bw))
        self.network = Network(self.sim, self.topology, rng=self.rng, config=net_config)
        self.metrics = MetricsRecorder()
        self.partitioner: Partitioner = HashRangePartitioner(spec.num_shards)
        self.leaders = leader_sites(spec.placement, spec.num_shards,
                                    self.topology.sites, home=spec.colocated_site)

        # Defer to the registry at build time (shard -> bench -> shard would
        # otherwise be an import cycle at module load).
        from repro.bench.harness import LEADERLESS, PROTOCOLS

        replica_cls = PROTOCOLS[spec.protocol]
        self.groups: Dict[int, Dict[str, object]] = {}
        self.configs = {}
        self.checkers: Dict[int, HistoryChecker] = {}
        for shard in range(spec.num_shards):
            prefix = f"g{shard}_r"
            leader = (None if spec.protocol in LEADERLESS
                      else f"{prefix}_{self.leaders[shard]}")
            config = geo_cluster(self.topology.sites, prefix=prefix,
                                 initial_leader=leader)
            replicas = {
                name: replica_cls(name, self.sim, self.network, config)
                for name in config.names
            }
            for replica in replicas.values():
                replica.store.set_key_filter(self.partitioner.predicate(shard))
                replica.ownership_guard = self._ownership_guard(shard)
            self.configs[shard] = config
            self.groups[shard] = replicas
            if spec.check_history:
                checker = HistoryChecker()
                for replica in replicas.values():
                    replica.on_apply_hooks.append(checker.record_apply)
                self.checkers[shard] = checker

        local_replica = {
            shard: {site: f"g{shard}_r_{site}" for site in self.topology.sites}
            for shard in range(spec.num_shards)
        }
        self.router = ShardRouter(self.partitioner, local_replica)
        self.clients = spawn_sharded_clients(
            self.sim, self.network, self.topology.sites, self.router,
            spec.clients_per_region, spec.workload, self.rng, self.metrics,
            stop_at=sec(spec.duration_s),
        )
        if spec.check_history:
            hook = checker_hook(self.checkers, self.router)
            for client in self.clients:
                client.on_complete_hooks.append(hook)

    def _ownership_guard(self, shard: int):
        """An `ownership_guard` for `shard`'s replicas: the owning shard's
        id for misrouted keys, None for keys the group serves."""
        partitioner = self.partitioner

        def guard(command) -> Optional[int]:
            owner = partitioner.shard_of(command.key)
            return owner if owner != shard else None

        return guard

    # -- introspection ------------------------------------------------------

    def replicas_of(self, shard: int) -> Dict[str, object]:
        return self.groups[shard]

    def leader_replica(self, shard: int):
        return self.groups[shard][f"g{shard}_r_{self.leaders[shard]}"]

    def filtered_count(self) -> int:
        """Applies rejected by store key filters (0 == routing was airtight)."""
        return sum(replica.store.filtered_count
                   for replicas in self.groups.values()
                   for replica in replicas.values())

    # -- running ------------------------------------------------------------

    def run(self) -> ShardedResult:
        spec = self.spec
        self.sim.run(until=sec(spec.duration_s))
        window_start = sec(spec.warmup_s)
        window_end = sec(spec.duration_s - spec.cooldown_s)
        violations = {
            shard: checker.check_all()
            for shard, checker in sorted(self.checkers.items())
        }
        return ShardedResult(
            spec=spec,
            throughput_ops=self.metrics.throughput_ops(window_start, window_end),
            per_shard_throughput=self.metrics.throughput_by(
                window_start, window_end,
                key=lambda record: shard_of_server(record.server)),
            read_latency=self.metrics.latency_summary_ms(
                window_start, window_end, lambda r: r.op is OpType.GET),
            write_latency=self.metrics.latency_summary_ms(
                window_start, window_end, lambda r: r.op is OpType.PUT),
            completed=len(self.metrics.window(window_start, window_end)),
            redirects=sum(client.redirects for client in self.clients),
            filtered=self.filtered_count(),
            violations=violations,
            leaders=dict(self.leaders),
            events_processed=self.sim.events_processed,
        )


def run_sharded_experiment(spec: ShardedSpec) -> ShardedResult:
    return ShardedCluster(spec).run()
