"""Sharded multi-group consensus.

The paper's Figure 10b shows a single leader's CPU and NIC egress are the
throughput ceiling of any leader-based protocol; Mencius spreads that load
by rotating instance ownership *within* one group.  Production systems
(Spanner-style deployments) spread it by *sharding*: many independent
consensus groups over a hash-partitioned keyspace, with leader placement as
a first-class scaling knob.  This package is that layer:

* `partition` — hash-range ownership of the YCSB keyspace;
* `placement` — leader-placement policies (`colocated` reproduces the
  Figure 10b bottleneck at shard granularity; `spread` recovers the
  Mencius insight by round-robining leaders across regions);
* `cluster` — N replica groups of any registered protocol over one shared
  simulator/network/topology, with per-shard and aggregate stats, plus
  **live resharding** (`ShardedCluster.reshard`, `run_reshard_experiment`);
* `router` — shard-aware routing/redirect/transaction policies over the
  pipelined `workload.Session` (capped redirect-on-wrong-shard,
  epoch-refreshing routing tables, `ShardRoutedClient.transact` for
  atomic multi-key transactions, closed- and open-loop drivers);
* `reshard` — epoch-versioned per-replica ownership and the migration
  coordinator that moves key ranges (and their dedup state) between
  groups through the committed log;
* `txn` — cross-shard transactions: two-phase commit where every protocol
  step goes through a participant group's committed log, with a
  decision-log-recovering `TxnCoordinator` and wait-die locking;
* `control` — the replicated control plane: each coordinator fleet
  journals leases, fences, and decisions through its own consensus group
  (`ControlGroup` + `ReplicatedCoordinator`), so a coordinator host loss
  fails over to a hot standby in milliseconds;
* `nemesis` — seeded fault injection (leader kills/partitions,
  coordinator crashes, coordinator *host* kills) for proving the above
  under failure.
"""

from repro.shard.control import ControlGroup, ReplicatedCoordinator

from repro.shard.cluster import (
    ReshardResult,
    ReshardSpec,
    ShardedCluster,
    ShardedResult,
    ShardedSpec,
    UnsupportedProtocolError,
    run_reshard_experiment,
    run_sharded_experiment,
)
from repro.shard.nemesis import Nemesis
from repro.shard.txn import (
    TxnCluster,
    TxnCoordinator,
    TxnResult,
    TxnSpec,
    TxnWorkloadClient,
    run_txn_experiment,
)
from repro.shard.partition import (
    HashRangePartitioner,
    Partitioner,
    RangeMove,
    VersionedPartitioner,
    plan_transition,
)
from repro.shard.placement import PLACEMENTS, LeaderPlacement, colocated, spread
from repro.shard.reshard import (
    ReshardControlPlane,
    ReshardCoordinator,
    ShardOwnership,
)
from repro.shard.router import ShardRouter, ShardRoutedClient

__all__ = [
    "ControlGroup",
    "HashRangePartitioner",
    "LeaderPlacement",
    "Nemesis",
    "PLACEMENTS",
    "Partitioner",
    "RangeMove",
    "ReplicatedCoordinator",
    "ReshardControlPlane",
    "ReshardCoordinator",
    "ReshardResult",
    "ReshardSpec",
    "ShardOwnership",
    "ShardRoutedClient",
    "ShardRouter",
    "ShardedCluster",
    "ShardedResult",
    "ShardedSpec",
    "TxnCluster",
    "TxnCoordinator",
    "TxnResult",
    "TxnSpec",
    "TxnWorkloadClient",
    "UnsupportedProtocolError",
    "VersionedPartitioner",
    "colocated",
    "plan_transition",
    "run_reshard_experiment",
    "run_sharded_experiment",
    "run_txn_experiment",
    "spread",
]
