"""Shard-aware client routing.

A `ShardRouter` is the client-side routing table: key -> owning shard
(via the partitioner) and shard -> the server a client in a given site
should contact (the shard's replica in the client's own region, so the
first hop is always local, as in the single-group deployment).  The table
is epoch-versioned: when a server on a newer partition map rejects a
request it ships the map (`ShardMap`) along with the redirect, and
`refresh` rebuilds the whole table — one stale request repairs routing for
every client sharing the router.

`ShardRoutedClient` extends the closed-loop client with that table.  The
retry machinery is inherited unchanged — no-leader rejections and dropped
replies retry the *same* sequence number against the same server, and the
store's at-most-once semantics keep retries safe.  The new path is
redirect-on-wrong-shard: a server that does not own the requested key
rejects with a `shard_hint`, and the client re-sends the in-flight command
to the hinted group immediately (a routing error, not an unavailable
group).  Redirects are capped per command: mid-reshard, two groups can
*disagree* about a boundary key — the donor has exported it, the recipient
has not yet imported it — and uncapped hint-following would bounce the
request between them indefinitely.  After `num_shards` consecutive hops
the client falls back to the generic backoff retry (and counts the event),
which breaks the ping-pong and succeeds once the migration lands.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kvstore.checker import HistoryEvent
from repro.metrics.recorder import RequestRecord
from repro.protocols.messages import (
    ClientReply,
    ClientRequest,
    ShardMap,
    TxnReply,
    TxnRequest,
)
from repro.protocols.types import Command, OpType
from repro.shard.partition import HashRangePartitioner, Partitioner, VersionedPartitioner
from repro.workload.clients import RETRY_TIMEOUT, ClosedLoopClient
from repro.workload.ycsb import WorkloadConfig

# One transaction operation: ("put"|"get", key, value-or-None).
TxnOp = Tuple[str, str, Optional[str]]
TxnOps = Sequence[TxnOp]


class ShardRouter:
    """Routing table shared by the clients of one sharded deployment."""

    def __init__(self, partitioner: Partitioner,
                 local_replica: Dict[int, Dict[str, str]],
                 sites: Optional[Sequence[str]] = None) -> None:
        self.partitioner = partitioner
        # shard -> site -> server name (the shard's replica in that site)
        self.local_replica = local_replica
        # Sites for rebuilding the table on refresh (replicas are named by
        # convention); derived from the table when not given explicitly.
        if sites is not None:
            self.sites = list(sites)
        else:
            self.sites = sorted({site for table in local_replica.values()
                                 for site in table})

    @property
    def num_shards(self) -> int:
        return len(self.local_replica)

    @property
    def epoch(self) -> Optional[int]:
        """The routing table's partition-map epoch (None for plain,
        unversioned partitioners)."""
        return getattr(self.partitioner, "epoch", None)

    def refresh(self, shard_map: ShardMap) -> bool:
        """Adopt a newer partition map shipped by a server; returns whether
        the table changed.  Maps at or behind the current epoch are ignored."""
        current = self.epoch
        if current is not None and shard_map.epoch <= current:
            return False
        self.partitioner = VersionedPartitioner(
            HashRangePartitioner(shard_map.num_shards), shard_map.epoch)
        self.local_replica = {
            shard: {site: f"g{shard}_r_{site}" for site in self.sites}
            for shard in range(shard_map.num_shards)
        }
        return True

    def shard_of(self, key: str) -> int:
        return self.partitioner.shard_of(key)

    def server_for(self, shard: int, site: str) -> str:
        return self.local_replica[shard][site]

    def route(self, key: str, site: str) -> str:
        """The server a client in `site` should send `key`'s request to."""
        return self.server_for(self.shard_of(key), site)


class ShardRoutedClient(ClosedLoopClient):
    """A closed-loop client that routes each request to the owning shard.

    Keys are drawn uniformly from the whole keyspace (plus the workload's
    hot key at the configured conflict rate); the router decides which
    group's local replica serves each request.
    """

    def __init__(self, name, sim, network, site, router: ShardRouter,
                 workload: WorkloadConfig, sites, rng, metrics,
                 stop_at: Optional[int] = None,
                 coordinator: Optional[str] = None) -> None:
        self.router = router
        self.redirects = 0
        self.capped_redirects = 0
        self._redirect_hops = 0  # consecutive redirects for the current command
        # -- transactions (`transact`) ----------------------------------
        # Cross-shard transactions go through this coordinator (required
        # only when transact() actually crosses shards); single-shard ones
        # ride the ordinary command path as one atomic TXN command.
        self.coordinator = coordinator
        self.txn_seq = 0
        self.txn_in_flight: Optional[TxnRequest] = None
        self.txns_issued = 0
        self.txns_committed = 0
        self.single_shard_txns = 0
        self.cross_shard_txns = 0
        # Called with (client, txn_id, ops, reads, start, end) per commit.
        self.on_txn_complete_hooks: List = []
        # `server` is re-routed per command; seed it with shard 0's replica.
        super().__init__(name, sim, network, site, router.server_for(0, site),
                         workload, sites, rng, metrics, stop_at=stop_at)
        self._txn_timer = self.timer("txn-retry")
        self.on_complete_hooks.append(self._single_txn_complete)

    def _redirect_cap(self) -> int:
        return max(2, self.router.num_shards)

    def _pick_command(self) -> Command:
        self.seq += 1
        self._redirect_hops = 0
        is_read = self.rng.random() < self.workload.read_fraction
        if self.rng.random() < self.workload.conflict_rate:
            key = self.workload.hot_key
        else:
            key = self.workload.uniform_key(self.rng)
        self.server = self.router.route(key, self.site)
        if is_read:
            return Command(op=OpType.GET, key=key, client_id=self.name,
                           seq=self.seq, value_size=self.workload.value_size)
        return Command(
            op=OpType.PUT, key=key, value=f"{self.name}:{self.seq}",
            client_id=self.name, seq=self.seq, value_size=self.workload.value_size,
        )

    def _request_message(self) -> ClientRequest:
        # Stamp the request with the routing table's epoch so a server on a
        # newer map knows to ship the map back, not just a shard id.
        epoch = self.router.epoch
        return ClientRequest(command=self.in_flight,
                             epoch=epoch if epoch is not None else 0)

    # -- transactions --------------------------------------------------------

    def transact(self, ops: TxnOps) -> None:
        """Issue `ops` as one atomic multi-key transaction.

        Single-shard transactions are sent as one `TXN` command through the
        owning group — the full epoch/redirect/dedup machinery of ordinary
        commands applies unchanged.  Cross-shard transactions go to the
        transaction coordinator, which runs 2PC through the participant
        groups' logs; the client's retry (same `txn_seq`) is answered from
        the coordinator's committed-reply cache."""
        ops = [tuple(op) for op in ops]
        self.txns_issued += 1
        self.sent_at = self.sim.now
        shards = {self.router.shard_of(key) for _, key, _ in ops}
        if len(shards) == 1:
            self.single_shard_txns += 1
            self.seq += 1
            self._redirect_hops = 0
            value = json.dumps({"ops": [list(op) for op in ops]},
                               sort_keys=True)
            self.in_flight = Command(
                op=OpType.TXN, key=ops[0][1], value=value, client_id=self.name,
                seq=self.seq, value_size=len(value))
            self.server = self.router.route(ops[0][1], self.site)
            self._send_current()
            return
        if self.coordinator is None:
            raise RuntimeError(
                f"{self.name}: cross-shard transaction but no coordinator set")
        self.cross_shard_txns += 1
        self.txn_seq += 1
        self.txn_in_flight = TxnRequest(
            client=self.name, txn_seq=self.txn_seq, ts=self.sim.now,
            ops=[list(op) for op in ops], epoch=self.router.epoch)
        self._send_txn()

    def _send_txn(self) -> None:
        if self.txn_in_flight is None:
            return
        self.send(self.coordinator, self.txn_in_flight)
        self._txn_timer.arm(RETRY_TIMEOUT, self._send_txn)

    def pending_ops(self) -> List[TxnOp]:
        """The operations of whatever is in flight right now (for end-of-run
        accounting: these may or may not have executed)."""
        if self.txn_in_flight is not None:
            return [tuple(op) for op in self.txn_in_flight.ops]
        command = self.in_flight
        if command is None:
            return []
        if command.op is OpType.TXN:
            return [tuple(op) for op in
                    json.loads(command.value or "{}").get("ops", [])]
        if command.op is OpType.PUT:
            return [("put", command.key, command.value)]
        if command.op is OpType.GET:
            return [("get", command.key, None)]
        return []

    def _single_txn_complete(self, command: Command, reply: ClientReply,
                             start: int, end: int) -> None:
        if command.op is not OpType.TXN:
            return
        reads = json.loads(reply.value or "{}").get("reads", {})
        ops = json.loads(command.value or "{}").get("ops", [])
        self._finish_txn(f"{self.name}:s{command.seq}", ops, reads, start, end)

    def _finish_txn(self, txn_id: str, ops, reads, start: int, end: int) -> None:
        self.txns_committed += 1
        for hook in self.on_txn_complete_hooks:
            hook(self, txn_id, [tuple(op) for op in ops], reads, start, end)

    def _on_txn_reply(self, message: TxnReply) -> None:
        request = self.txn_in_flight
        if (request is None
                or (message.client, message.txn_seq)
                != (request.client, request.txn_seq)):
            return  # stale reply from an earlier transaction
        self._txn_timer.cancel()
        self.txn_in_flight = None
        start, end = self.sent_at, self.sim.now
        self.metrics.add(RequestRecord(
            client=self.name, site=self.site, server=message.server,
            op=OpType.TXN, start=start, end=end, ok=True))
        self._finish_txn(f"{request.client}:{request.txn_seq}", request.ops,
                         message.reads, start, end)
        self._issue_next()

    def on_message(self, src: str, message) -> None:
        if isinstance(message, TxnReply):
            self._on_txn_reply(message)
            return
        refreshed = False
        if isinstance(message, ClientReply) and message.shard_map is not None:
            # A server ahead of us shipped its map: one redirect repairs
            # the whole table for every client sharing this router.
            refreshed = self.router.refresh(message.shard_map)
        command = self.in_flight
        if (isinstance(message, ClientReply) and not message.ok
                and message.shard_hint is not None
                and message.shard_hint in self.router.local_replica
                and command is not None
                and message.request_id == command.request_id):
            # Wrong shard: the contacted group does not own the key.
            # (Hints outside our table — a server ahead of us that did not
            # ship a map — fall through to the generic backoff-retry below
            # rather than crashing the client.)
            target = self.router.server_for(message.shard_hint, self.site)
            if target == self.server:
                # A hint pointing back at the group we just asked (its
                # range is still awaiting import): resending instantly
                # cannot help — take the backoff path and try again shortly.
                pass
            elif self._redirect_hops >= self._redirect_cap():
                # Ping-pong guard: mid-reshard, two groups can bounce a
                # boundary key between them.  Stop following hints, fall
                # back to backoff retry, and start counting hops afresh.
                self.capped_redirects += 1
                self.metrics.incr("capped_redirects")
                self._redirect_hops = 0
            else:
                # Cancel BOTH pending resend paths: a backoff armed by an
                # earlier hintless rejection would otherwise fire after
                # this redirect and send a duplicate concurrent request.
                self._retry_timer.cancel()
                self._backoff_timer.cancel()
                self._redirect_hops += 1
                self.redirects += 1
                self.metrics.incr("redirects")
                self.server = target
                self._send_current()
                return
        if refreshed and self.in_flight is not None:
            # No redirect taken (backoff or success path): still point the
            # next (re)send at the owner under the just-learned map.
            self.server = self.router.route(self.in_flight.key, self.site)
        super().on_message(src, message)


def checker_hook(checkers):
    """An `on_complete` hook recording each success into the serving shard's
    `HistoryChecker` (client-visible events for the linearizability checks).
    The shard is recovered from the answering server's name, so events stay
    attributed correctly even while a reshard is moving keys between groups."""

    def record(command: Command, reply: ClientReply, start: int, end: int) -> None:
        if not command.is_data:
            return  # transactions are checked by the txn-level checker
        shard = int(reply.server.split("_", 1)[0][1:])
        checker = checkers.get(shard)
        if checker is None:
            return
        value = command.value if command.op is OpType.PUT else reply.value
        checker.record_event(HistoryEvent(
            client=command.client_id, seq=command.seq, op=command.op,
            key=command.key, value=value, start=start, end=end,
            server=reply.server, local_read=reply.local_read,
        ))

    return record


def spawn_sharded_clients(sim, network, sites, router: ShardRouter,
                          per_region: int, workload: WorkloadConfig,
                          rng_root, metrics,
                          stop_at: Optional[int] = None) -> List[ShardRoutedClient]:
    """`per_region` shard-routed clients in every site."""
    clients = []
    for site in sites:
        for i in range(per_region):
            name = f"c_{site}_{i}"
            clients.append(ShardRoutedClient(
                name, sim, network, site, router, workload, sites,
                rng_root.stream(f"client:{name}"), metrics, stop_at=stop_at,
            ))
    return clients
