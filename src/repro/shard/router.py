"""Shard-aware client routing: policies over the pipelined `Session`.

A `ShardRouter` is the client-side routing table: key -> owning shard
(via the partitioner) and shard -> the server a client in a given site
should contact (the shard's replica in the client's own region, so the
first hop is always local, as in the single-group deployment).  The table
is epoch-versioned: when a server on a newer partition map rejects a
request it ships the map (`ShardMap`) along with the redirect, and
`refresh` rebuilds the whole table — one stale request repairs routing for
every client sharing the router.

`ShardRoutedClient` is the session with two policies plugged into its
seams rather than a separate request loop:

* **routing** — `_route` sends each admitted command to the owning
  group's local replica; a shipped map refreshes the shared table, and a
  request is re-pointed at the owner under the current table whenever its
  own rejection falls through to the backoff path (other window slots
  keep their in-flight target until they are answered — each re-routes
  off its own reply, but all of them read the one refreshed table);
* **redirects** — a server that does not own the requested key rejects
  with a `shard_hint`, and the client re-sends that request (the others
  in the window are untouched) to the hinted group immediately.
  Redirects are capped *per request*: mid-reshard, two groups can
  disagree about a boundary key — the donor has exported it, the
  recipient has not yet imported it — and uncapped hint-following would
  bounce the request between them indefinitely.  After `num_shards`
  consecutive hops the request falls back to the generic backoff retry
  (and counts the event), which breaks the ping-pong and succeeds once
  the migration lands.

Retry machinery is inherited unchanged from the session: no-leader
rejections and dropped replies retry the *same* sequence number against
the same server, and the store's windowed at-most-once dedup keeps
retries safe at any pipeline depth.

`transact(ops)` is the transaction policy on the same session: a
single-shard transaction is one atomic `TXN` command through the owning
group (sharing the window, the seq namespace, and the dedup path of
ordinary commands), while cross-shard transactions go to the 2PC
coordinator under their own (client, txn_seq) namespace — also windowed,
so transactions pipeline like everything else.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kvstore.checker import HistoryEvent
from repro.metrics.recorder import RequestRecord
from repro.protocols.messages import (
    ClientReply,
    ClientRequest,
    ShardMap,
    TxnReply,
    TxnRequest,
)
from repro.protocols.types import Command, OpType
from repro.shard.partition import HashRangePartitioner, Partitioner, VersionedPartitioner
from repro.workload.clients import ClosedLoopClient
from repro.workload.openloop import PoissonArrivals
from repro.workload.plan import ClientPlan
from repro.workload.session import AckFloor, PendingRequest
from repro.workload.ycsb import WorkloadConfig

# One transaction operation: ("put"|"get", key, value-or-None).
TxnOp = Tuple[str, str, Optional[str]]
TxnOps = Sequence[TxnOp]


class ShardRouter:
    """Routing table shared by the clients of one sharded deployment."""

    def __init__(self, partitioner: Partitioner,
                 local_replica: Dict[int, Dict[str, str]],
                 sites: Optional[Sequence[str]] = None) -> None:
        self.partitioner = partitioner
        # shard -> site -> server name (the shard's replica in that site)
        self.local_replica = local_replica
        # Sites for rebuilding the table on refresh (replicas are named by
        # convention); derived from the table when not given explicitly.
        if sites is not None:
            self.sites = list(sites)
        else:
            self.sites = sorted({site for table in local_replica.values()
                                 for site in table})

    @property
    def num_shards(self) -> int:
        return len(self.local_replica)

    @property
    def epoch(self) -> Optional[int]:
        """The routing table's partition-map epoch (None for plain,
        unversioned partitioners)."""
        return getattr(self.partitioner, "epoch", None)

    def refresh(self, shard_map: ShardMap) -> bool:
        """Adopt a newer partition map shipped by a server; returns whether
        the table changed.  Maps at or behind the current epoch are ignored."""
        current = self.epoch
        if current is not None and shard_map.epoch <= current:
            return False
        self.partitioner = VersionedPartitioner(
            HashRangePartitioner(shard_map.num_shards), shard_map.epoch)
        self.local_replica = {
            shard: {site: f"g{shard}_r_{site}" for site in self.sites}
            for shard in range(shard_map.num_shards)
        }
        return True

    def shard_of(self, key: str) -> int:
        return self.partitioner.shard_of(key)

    def server_for(self, shard: int, site: str) -> str:
        return self.local_replica[shard][site]

    def route(self, key: str, site: str) -> str:
        """The server a client in `site` should send `key`'s request to."""
        return self.server_for(self.shard_of(key), site)


class _PendingTxn:
    """One in-flight cross-shard transaction at the client."""

    __slots__ = ("request", "submitted_at", "attempts", "retry_timer")

    def __init__(self, request: TxnRequest, submitted_at: int,
                 retry_timer) -> None:
        self.request = request
        self.submitted_at = submitted_at
        self.attempts = 0
        self.retry_timer = retry_timer


class ShardRoutedClient(ClosedLoopClient):
    """A session whose routing/redirect/transaction policies are sharded.

    Keys are drawn uniformly from the whole keyspace (plus the workload's
    hot key at the configured conflict rate); the router decides which
    group's local replica serves each request.
    """

    #: Unanswered sends to one coordinator before rotating to the next in
    #: the ring (when a ring was given): a dead coordinator host costs two
    #: retry timeouts, not the whole run.
    COORD_ROTATE_AFTER = 2

    def __init__(self, name, sim, network, site, router: ShardRouter,
                 workload: WorkloadConfig, sites, rng, metrics,
                 stop_at: Optional[int] = None,
                 coordinator: Optional[str] = None,
                 coordinators: Optional[Sequence[str]] = None,
                 **session_kwargs) -> None:
        self.router = router
        self.redirects = 0
        self.capped_redirects = 0
        # -- transactions (`transact`) ----------------------------------
        # Cross-shard transactions go through this coordinator (required
        # only when transact() actually crosses shards); single-shard ones
        # ride the ordinary command path as one atomic TXN command.
        # `coordinators` is the failover ring (ordered, preferred first):
        # after COORD_ROTATE_AFTER unanswered sends the client moves to
        # the next member and keeps retrying the same txn_seq there — the
        # coordinators' shared at-most-once machinery makes that safe.
        self._coordinator_ring: List[str] = (
            list(coordinators) if coordinators
            else ([coordinator] if coordinator else []))
        self._coordinator_idx = 0
        self.coordinator = (coordinator if coordinator is not None
                            else (self._coordinator_ring[0]
                                  if self._coordinator_ring else None))
        self.txn_seq = 0
        # txn_seqs start at 1: the vacuous acked floor is 0 (evicts nothing).
        self._txn_floor = AckFloor()
        self._txn_pending: Dict[int, _PendingTxn] = {}
        self.txns_issued = 0
        self.txns_committed = 0
        self.single_shard_txns = 0
        self.cross_shard_txns = 0
        # Called with (client, txn_id, ops, reads, start, end) per commit.
        self.on_txn_complete_hooks: List = []
        # `server` is the fallback target; every command is re-routed.
        super().__init__(name, sim, network, site, router.server_for(0, site),
                         workload, sites, rng, metrics, stop_at=stop_at,
                         **session_kwargs)
        self.on_complete_hooks.append(self._single_txn_complete)

    def _redirect_cap(self) -> int:
        return max(2, self.router.num_shards)

    # -- workload generation (uniform keys over the whole ring) --------------

    def _pick_op(self):
        is_read = self.rng.random() < self.workload.read_fraction
        if self.rng.random() < self.workload.conflict_rate:
            key = self.workload.hot_key
        else:
            key = self.workload.uniform_key(self.rng)
        if is_read:
            return ("get", key, None)
        # Unique write values (the checkers anchor on them): derived from
        # the submission counter, which moves even while ops sit queued.
        return ("put", key, f"{self.name}:{self.submitted + 1}")

    # -- routing policy ------------------------------------------------------

    def _route(self, command: Command) -> str:
        return self.router.route(command.key, self.site)

    def _request_message(self, pending: PendingRequest) -> ClientRequest:
        # Stamp the request with the routing table's epoch so a server on a
        # newer map knows to ship the map back, not just a shard id.
        epoch = self.router.epoch
        return ClientRequest(command=pending.command,
                             epoch=epoch if epoch is not None else 0)

    def _before_reply(self, message: ClientReply) -> None:
        if message.shard_map is not None:
            # A server ahead of us shipped its map: one redirect repairs
            # the whole table for every client sharing this router.
            self.router.refresh(message.shard_map)

    def _on_reject(self, pending: PendingRequest,
                   message: ClientReply) -> bool:
        handled = self._follow_hint(pending, message)
        if not handled and pending.command.shard_checked:
            # Backoff path: point the coming resend at the owner under the
            # current (possibly just-refreshed) table, not at whatever
            # server the last hint chain left this request on.
            pending.server = self.router.route(pending.command.key, self.site)
        return handled

    def _follow_hint(self, pending: PendingRequest,
                     message: ClientReply) -> bool:
        hint = message.shard_hint
        if hint is None or hint not in self.router.local_replica:
            # No hint, or a hint outside our table (a server ahead of us
            # that did not ship a map): fall through to the generic
            # backoff-retry rather than crashing the client.
            return False
        target = self.router.server_for(hint, self.site)
        if target == pending.server:
            # A hint pointing back at the group we just asked (its range is
            # still awaiting import): resending instantly cannot help —
            # take the backoff path and try again shortly.
            return False
        if pending.redirect_hops >= self._redirect_cap():
            # Ping-pong guard: mid-reshard, two groups can bounce a
            # boundary key between them.  Stop following hints, fall back
            # to backoff retry, and start counting hops afresh.
            self.capped_redirects += 1
            self.metrics.incr("capped_redirects")
            pending.redirect_hops = 0
            return False
        # Cancel BOTH pending resend paths: a backoff armed by an earlier
        # hintless rejection would otherwise fire after this redirect and
        # send a duplicate concurrent request.
        pending.cancel_timers()
        pending.redirect_hops += 1
        self.redirects += 1
        self.metrics.incr("redirects")
        pending.server = target
        if self.obs is not None:
            self.obs_phase(pending.command.trace_id, "redirect",
                           target=target, hops=pending.redirect_hops)
        self._send(pending)
        return True

    # -- transactions --------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return super().outstanding + len(self._txn_pending)

    @property
    def txn_acked_floor(self) -> int:
        return self._txn_floor.floor

    @property
    def txn_in_flight(self) -> Optional[TxnRequest]:
        """The oldest un-answered cross-shard transaction (None if no 2PC
        request is outstanding)."""
        if not self._txn_pending:
            return None
        return self._txn_pending[min(self._txn_pending)].request

    @property
    def txn_in_flight_count(self) -> int:
        return len(self._txn_pending)

    @property
    def txns_outstanding(self) -> int:
        """Transactions issued but not yet acknowledged: cross-shard 2PC
        requests plus single-shard TXN commands in the window or queue."""
        pending_txns = sum(1 for pending in self._pending.values()
                           if pending.command.op is OpType.TXN)
        queued_txns = sum(1 for qop in self._submit_queue
                          if qop.kind == "txn")
        return len(self._txn_pending) + pending_txns + queued_txns

    def transact(self, ops: TxnOps) -> None:
        """Issue `ops` as one atomic multi-key transaction.

        Single-shard transactions are sent as one `TXN` command through the
        owning group — the full epoch/redirect/dedup/pipelining machinery
        of ordinary commands applies unchanged.  Cross-shard transactions
        go to the transaction coordinator, which runs 2PC through the
        participant groups' logs; the client's retry (same `txn_seq`) is
        answered from the coordinator's windowed committed-reply cache."""
        ops = [tuple(op) for op in ops]
        if not ops:
            return
        self.txns_issued += 1
        shards = {self.router.shard_of(key) for _, key, _ in ops}
        if len(shards) == 1:
            self.single_shard_txns += 1
            value = json.dumps({"ops": [list(op) for op in ops]},
                               sort_keys=True)
            self.submit("txn", ops[0][1], value)
            return
        if self.coordinator is None:
            raise RuntimeError(
                f"{self.name}: cross-shard transaction but no coordinator set")
        self.cross_shard_txns += 1
        self.txn_seq += 1
        request = TxnRequest(
            client=self.name, txn_seq=self.txn_seq, ts=self.sim.now,
            ops=[list(op) for op in ops], epoch=self.router.epoch,
            acked_low_water=self.txn_acked_floor)
        pending = _PendingTxn(request, self.sim.now,
                              self.timer(f"txn-retry:{self.txn_seq}"))
        self._txn_pending[self.txn_seq] = pending
        if self.obs is not None:
            # 2PC spans live in the "t" namespace: the coordinator derives
            # the same id from (client, txn_seq) and stamps it into every
            # child command, so all of the transaction's prepares/commits
            # across shards fold into this one span.
            self.obs_phase(self._txn_trace(self.txn_seq), "submit", op="txn2pc")
        self._send_txn(pending)

    def _txn_trace(self, txn_seq: int) -> str:
        return f"{self.name}:t{txn_seq}"

    def _send_txn(self, pending: _PendingTxn) -> None:
        pending.attempts += 1
        if (len(self._coordinator_ring) > 1 and pending.attempts > 1
                and (pending.attempts - 1) % self.COORD_ROTATE_AFTER == 0):
            self._coordinator_idx = ((self._coordinator_idx + 1)
                                     % len(self._coordinator_ring))
            self.coordinator = self._coordinator_ring[self._coordinator_idx]
            self.metrics.incr("coordinator_rotations")
        if self.obs is not None:
            self.obs_phase(self._txn_trace(pending.request.txn_seq), "send",
                           server=self.coordinator, attempt=pending.attempts)
        self.send(self.coordinator, pending.request)
        pending.retry_timer.arm(
            self.retry.retry_delay(pending.attempts - 1, self.rng),
            lambda: self._send_txn(pending))

    def pending_ops(self) -> List[TxnOp]:
        """The operations of everything in flight right now (for end-of-run
        accounting: these may or may not have executed)."""
        ops: List[TxnOp] = []
        for txn_seq in sorted(self._txn_pending):
            ops.extend(tuple(op)
                       for op in self._txn_pending[txn_seq].request.ops)
        for command in self.pending_commands():
            if command.op is OpType.TXN:
                ops.extend(tuple(op) for op in
                           json.loads(command.value or "{}").get("ops", []))
            elif command.op is OpType.PUT:
                ops.append(("put", command.key, command.value))
            elif command.op is OpType.GET:
                ops.append(("get", command.key, None))
        return ops

    def _single_txn_complete(self, command: Command, reply: ClientReply,
                             start: int, end: int) -> None:
        if command.op is not OpType.TXN:
            return
        reads = json.loads(reply.value or "{}").get("reads", {})
        ops = json.loads(command.value or "{}").get("ops", [])
        self._finish_txn(f"{self.name}:s{command.seq}", ops, reads, start, end)

    def _finish_txn(self, txn_id: str, ops, reads, start: int, end: int) -> None:
        self.txns_committed += 1
        for hook in self.on_txn_complete_hooks:
            hook(self, txn_id, [tuple(op) for op in ops], reads, start, end)

    def _on_txn_reply(self, message: TxnReply) -> None:
        if message.client != self.name:
            return
        pending = self._txn_pending.get(message.txn_seq)
        if pending is None:
            return  # stale reply from an already-answered transaction
        pending.retry_timer.cancel()
        del self._txn_pending[message.txn_seq]
        if self.obs is not None:
            self.obs_phase(self._txn_trace(message.txn_seq), "complete")
        self._txn_floor.ack(message.txn_seq)
        request = pending.request
        start, end = pending.submitted_at, self.sim.now
        self.metrics.add(RequestRecord(
            client=self.name, site=self.site, server=message.server,
            op=OpType.TXN, start=start, end=end, ok=True))
        self._finish_txn(f"{request.client}:{request.txn_seq}", request.ops,
                         message.reads, start, end)
        self._refill()

    def on_message(self, src: str, message) -> None:
        if isinstance(message, TxnReply):
            self._on_txn_reply(message)
            return
        super().on_message(src, message)


class OpenLoopShardRoutedClient(PoissonArrivals, ShardRoutedClient):
    """A shard-routed session fed by a Poisson arrival clock: same routing,
    redirect, and transaction policies; open-loop generation."""


def checker_hook(checkers):
    """An `on_complete` hook recording each success into the serving shard's
    `HistoryChecker` (client-visible events for the linearizability checks).
    The shard is recovered from the answering server's name, so events stay
    attributed correctly even while a reshard is moving keys between groups."""

    def record(command: Command, reply: ClientReply, start: int, end: int) -> None:
        if not command.is_data:
            return  # transactions are checked by the txn-level checker
        shard = int(reply.server.split("_", 1)[0][1:])
        checker = checkers.get(shard)
        if checker is None:
            return
        value = command.value if command.op is OpType.PUT else reply.value
        checker.record_event(HistoryEvent(
            client=command.client_id, seq=command.seq, op=command.op,
            key=command.key, value=value, start=start, end=end,
            server=reply.server, local_read=reply.local_read,
        ))

    return record


def spawn_sharded_clients(sim, network, sites, router: ShardRouter,
                          per_region: int, workload: WorkloadConfig,
                          rng_root, metrics, stop_at: Optional[int] = None,
                          plan: Optional[ClientPlan] = None,
                          ) -> List[ShardRoutedClient]:
    """Shard-routed clients in every site, spawned through a `ClientPlan`."""
    if plan is None:
        plan = ClientPlan(per_region=per_region)

    def make(name, site, rng, host, rate):
        if rate is not None:
            return OpenLoopShardRoutedClient(
                name, sim, network, site, router, workload, sites, rng,
                metrics, stop_at=stop_at, host=host, rate_per_sec=rate,
                **plan.session_kwargs())
        return ShardRoutedClient(
            name, sim, network, site, router, workload, sites, rng, metrics,
            stop_at=stop_at, host=host, **plan.session_kwargs())

    return plan.spawn(sim, sites, rng_root, make)
