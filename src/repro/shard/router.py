"""Shard-aware client routing.

A `ShardRouter` is the client-side routing table: key -> owning shard
(via the partitioner) and shard -> the server a client in a given site
should contact (the shard's replica in the client's own region, so the
first hop is always local, as in the single-group deployment).

`ShardRoutedClient` extends the closed-loop client with that table.  The
retry machinery is inherited unchanged — no-leader rejections and dropped
replies retry the *same* sequence number against the same server, and the
store's at-most-once semantics keep retries safe.  The one new path is
redirect-on-wrong-shard: a server that does not own the requested key
rejects with a `shard_hint`, and the client re-sends the in-flight command
to the hinted group immediately (no backoff — a routing error, not an
unavailable group).  With a fresh routing table that path never fires; it
exists for stale tables — e.g. a client configured before a reshard — where
each misrouted request pays one extra local hop but is never lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kvstore.checker import HistoryEvent
from repro.protocols.messages import ClientReply
from repro.protocols.types import Command, OpType
from repro.shard.partition import Partitioner
from repro.workload.clients import ClosedLoopClient
from repro.workload.ycsb import WorkloadConfig


class ShardRouter:
    """Routing table shared by the clients of one sharded deployment."""

    def __init__(self, partitioner: Partitioner,
                 local_replica: Dict[int, Dict[str, str]]) -> None:
        self.partitioner = partitioner
        # shard -> site -> server name (the shard's replica in that site)
        self.local_replica = local_replica

    @property
    def num_shards(self) -> int:
        return len(self.local_replica)

    def shard_of(self, key: str) -> int:
        return self.partitioner.shard_of(key)

    def server_for(self, shard: int, site: str) -> str:
        return self.local_replica[shard][site]

    def route(self, key: str, site: str) -> str:
        """The server a client in `site` should send `key`'s request to."""
        return self.server_for(self.shard_of(key), site)


class ShardRoutedClient(ClosedLoopClient):
    """A closed-loop client that routes each request to the owning shard.

    Keys are drawn uniformly from the whole keyspace (plus the workload's
    hot key at the configured conflict rate); the router decides which
    group's local replica serves each request.
    """

    def __init__(self, name, sim, network, site, router: ShardRouter,
                 workload: WorkloadConfig, sites, rng, metrics,
                 stop_at: Optional[int] = None) -> None:
        self.router = router
        self.redirects = 0
        # `server` is re-routed per command; seed it with shard 0's replica.
        super().__init__(name, sim, network, site, router.server_for(0, site),
                         workload, sites, rng, metrics, stop_at=stop_at)

    def _pick_command(self) -> Command:
        self.seq += 1
        is_read = self.rng.random() < self.workload.read_fraction
        if self.rng.random() < self.workload.conflict_rate:
            key = self.workload.hot_key
        else:
            key = self.workload.uniform_key(self.rng)
        self.server = self.router.route(key, self.site)
        if is_read:
            return Command(op=OpType.GET, key=key, client_id=self.name,
                           seq=self.seq, value_size=self.workload.value_size)
        return Command(
            op=OpType.PUT, key=key, value=f"{self.name}:{self.seq}",
            client_id=self.name, seq=self.seq, value_size=self.workload.value_size,
        )

    def on_message(self, src: str, message) -> None:
        command = self.in_flight
        if (isinstance(message, ClientReply) and not message.ok
                and message.shard_hint is not None
                and message.shard_hint in self.router.local_replica
                and command is not None
                and message.request_id == command.request_id):
            # Wrong shard: the contacted group does not own the key.  Fix
            # the route and resend right away.  (Hints outside our table —
            # a server ahead of us by a whole reshard — fall through to the
            # generic backoff-retry below rather than crashing the client.)
            self._retry_timer.cancel()
            self.redirects += 1
            self.server = self.router.server_for(message.shard_hint, self.site)
            self._send_current()
            return
        super().on_message(src, message)


def checker_hook(checkers, router: ShardRouter):
    """An `on_complete` hook recording each success into the owning shard's
    `HistoryChecker` (client-visible events for the linearizability checks)."""

    def record(command: Command, reply: ClientReply, start: int, end: int) -> None:
        checker = checkers.get(router.shard_of(command.key))
        if checker is None:
            return
        value = command.value if command.op is OpType.PUT else reply.value
        checker.record_event(HistoryEvent(
            client=command.client_id, seq=command.seq, op=command.op,
            key=command.key, value=value, start=start, end=end,
            server=reply.server, local_read=reply.local_read,
        ))

    return record


def spawn_sharded_clients(sim, network, sites, router: ShardRouter,
                          per_region: int, workload: WorkloadConfig,
                          rng_root, metrics,
                          stop_at: Optional[int] = None) -> List[ShardRoutedClient]:
    """`per_region` shard-routed clients in every site."""
    clients = []
    for site in sites:
        for i in range(per_region):
            name = f"c_{site}_{i}"
            clients.append(ShardRoutedClient(
                name, sim, network, site, router, workload, sites,
                rng_root.stream(f"client:{name}"), metrics, stop_at=stop_at,
            ))
    return clients
