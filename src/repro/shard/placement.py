"""Leader-placement policies.

Where each shard's leader lives is the scaling knob this subsystem exists
to expose.  `colocated` puts every leader in one region — each group's
commit path then funnels through that region's shared WAN uplink, which is
the Figure 10b single-leader bottleneck reproduced at shard granularity.
`spread` round-robins leaders across regions, recovering the Mencius
insight (spend every region's NIC, not one) without any intra-group
protocol change.

A policy maps (shard id, sites) -> the leader's site.  Policies are plain
callables registered in `PLACEMENTS` so benchmarks and the CLI select them
by name.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

# A policy takes (shard, sites) plus policy-specific keywords it is free
# to ignore (`home` pins the colocated region); new policies only need to
# be added to PLACEMENTS.
LeaderPlacement = Callable[..., str]


def colocated(shard: int, sites: Sequence[str], home: str = None, **_) -> str:
    """All shard leaders in one region (default: the first site)."""
    return home if home is not None else sites[0]


def spread(shard: int, sites: Sequence[str], **_) -> str:
    """Leaders round-robined across regions."""
    return sites[shard % len(sites)]


PLACEMENTS: Dict[str, LeaderPlacement] = {
    "colocated": colocated,
    "spread": spread,
}


def leader_sites(policy: str, num_shards: int, sites: Sequence[str],
                 home: str = None) -> Dict[int, str]:
    """Resolve a named policy to a shard -> leader-site map."""
    try:
        placement = PLACEMENTS[policy]
    except KeyError:
        raise ValueError(
            f"unknown placement {policy!r}; choose from {sorted(PLACEMENTS)}"
        ) from None
    return {shard: placement(shard, sites, home=home)
            for shard in range(num_shards)}
