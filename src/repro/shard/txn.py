"""Cross-shard transactions: two-phase commit over consensus groups.

The paper's thesis is that Paxos and Raft are interchangeable underneath
protocol-agnostic machinery; this module is the strongest composition test
of that claim in the repo: a 2PC layer built purely against the
`ReplicaBase` command-log interface, so it runs unchanged over any
registered leader-based protocol.

Every 2PC step is an **ordinary command through a participant group's
committed log** (see `KVStore._apply_txn_*`), which buys the two fault
properties the Howard & Mortier comparison says matter:

* a participant survives its leader crashing mid-transaction — the
  PREPARE (locks + staged writes + vote) is replicated state, so the new
  leader answers the coordinator's retry from the same lock table (or the
  dedup cache, if the crashed leader already applied it);
* the **decision is replicated too**: before sending any COMMIT, the
  coordinator logs a `TXN_DECIDE` record in the transaction's *home*
  shard, and mirrors each commit as a journal record through the
  coordinators' own control group (`repro.shard.control`) so every hot
  standby caches the committed reply.

The coordinator fleet has no single reliable node left.  Each site's
coordinator shares a host with that site's control replica, renews a
lease through the control journal, and watches its peers' leases; when
one expires, a standby journals a `take` that raises the victim's fence
epoch, and the winning janitor sweeps every shard with `TXN_RECOVER` —
which raises the store-side fence (in-flight prepares stamped below it
are refused rather than left holding orphan locks) and reports the
victim's prepared transactions and logged decisions.  Undecided prepared
transactions are resolved **presumed abort** (the first decision recorded
in the home log wins, so a racing pre-crash commit decision is honored if
it got there first).  A recovered coordinator runs the same sweep on
itself under a fresh fence epoch granted by the control journal.

Clients hold a coordinator ring and rotate to another site's coordinator
after a few unanswered sends, so a dead coordinator host costs
milliseconds, not a crash-restart window.  The rotated retry is kept
at-most-once by the store: commit decisions bind first-wins *per
transaction*, so the second attempt's commit-decide is bound to abort
with the winning record attached, and the losing coordinator answers the
client from the winner.

Conflicts are resolved wait-die (see `store.py`): the older transaction
re-sends the conflicted prepare while keeping its other locks; the
younger aborts and retries with its original timestamp, so every
transaction eventually becomes oldest and commits — deadlock-free without
any cross-group waits-for graph.  Pure wound-wait cannot be ported here:
once a participant's PREPARE is applied it has voted yes through its log,
and 2PC forbids unilaterally aborting a voted participant — so the wound
branch is only available against transactions that have not locked yet,
which is exactly the wait-die half of the family.

Single-shard transactions skip all of this: `ShardRoutedClient.transact`
sends them as one atomic `TXN` command through the owning group's log
(respecting the 2PC lock table), which is why the 0 % cross-shard figure
tracks plain sharded throughput.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.kvstore.checker import TxnEvent, check_strict_serializability
from repro.metrics.recorder import MetricsRecorder, RequestRecord
from repro.protocols.messages import ClientReply, ClientRequest, TxnReply, TxnRequest
from repro.protocols.types import Command, OpType
from repro.shard.cluster import ShardedCluster, ShardedSpec
from repro.shard.control import ControlGroup, ReplicatedCoordinator
from repro.shard.router import ShardRoutedClient, ShardRouter, TxnOps
from repro.sim.node import NodeCosts
from repro.sim.units import ms, sec
from repro.workload.ycsb import WorkloadConfig

TXN_CLIENT_PREFIX = "__txn__:"
TXN_RECOVER_PREFIX = "__txnrec__:"

#: Width of the per-epoch command-sequence namespace.  2**32 commands per
#: fence epoch, and `TxnCoordinator._command` asserts the bound instead of
#: silently colliding with the next epoch's dedup slots (the old scheme —
#: ``incarnation * 1_000_000`` — overflowed quietly past 1M commands).
SEQ_BITS = 32
SEQ_SPAN = 1 << SEQ_BITS


def seq_namespace(epoch: int) -> int:
    """Base of the dedup sequence namespace for commands issued at fence
    `epoch`: a lossless (epoch, seq) encoding into one integer."""
    return epoch << SEQ_BITS


class _TxnState:
    """One in-flight transaction attempt at the coordinator."""

    __slots__ = ("txn_id", "client_node", "ops", "ts", "handle", "participants",
                 "home", "phase", "pending", "waiting", "reads", "seq",
                 "seq_base", "retries", "trace", "winner", "route")

    def __init__(self, txn_id: str, client_node: Optional[str], ops: TxnOps,
                 ts: int, handle: str, participants: Dict[int, TxnOps],
                 seq_base: int, retries: int = 0,
                 route: Optional[str] = None) -> None:
        self.txn_id = txn_id
        # Span id (repro.obs): same derivation the issuing client uses, so
        # coordinator-side phases and the stamped child commands' replica
        # phases all join the client's transaction span.
        client, txn_seq = txn_id.rsplit(":", 1)
        self.trace = f"{client}:t{txn_seq}"
        self.client_node = client_node
        self.ops = ops
        self.ts = ts
        self.handle = handle
        self.participants = participants
        self.home = min(participants) if participants else 0
        self.phase = "prepare"          # prepare | decide | commit | abort
        self.pending: Dict[int, Command] = {}  # shard -> awaiting reply
        self.waiting: set = set()       # shards between a "wait" vote and
                                        # the re-prepare (no command in flight)
        self.reads: Dict[str, Optional[str]] = {}
        self.seq = seq_base
        self.seq_base = seq_base
        self.retries = retries
        # The committed decision of ANOTHER attempt of this transaction,
        # when our commit-decide lost the per-transaction first-wins race.
        self.winner: Optional[Dict] = None
        # Dedup-session key for this attempt's commands.  The owning
        # attempt uses the handle itself; a janitor cleaning up a swept
        # handle uses a `{handle}!s{fence}` session so its decide/phase-2
        # commands can NEVER collide with sequence numbers the victim
        # already burned in the handle's own session (a collision would be
        # answered from the dedup cache with a stale vote instead of
        # applying).  Deterministic per (handle, fence): concurrent
        # sweepers at the same fence issue identical commands and
        # converge through dedup.
        self.route = route or handle

    @property
    def all_prepared(self) -> bool:
        return not self.pending and not self.waiting


class _Sweep:
    """One in-flight `TXN_RECOVER` fan-out: the fenced sweep of a dead (or
    just-recovered) coordinator's shards, collecting its prepared
    transactions and logged decisions."""

    __slots__ = ("victim", "fe", "pending", "prepared", "decisions")

    def __init__(self, victim: str, fe: int) -> None:
        self.victim = victim
        self.fe = fe
        self.pending: Dict[int, Command] = {}   # shard -> awaiting report
        self.prepared: Dict[str, Dict] = {}
        self.decisions: Dict[str, Dict] = {}


class TxnCoordinator(ReplicatedCoordinator):
    """Drives 2PC for its clients' cross-shard transactions.

    One coordinator per site, each a hot standby for the others; clients
    talk to the local one and rotate on silence.  The coordinator is an
    ordinary simulated process with the default CPU cost model (it is
    part of the measured serving path, unlike the bench clients), sharing
    a host with its site's control replica.  Its fence epoch comes from
    the control journal: `on_recover` re-fences itself and replays its
    own decision log; a peer whose lease expires is fenced and swept by
    whichever standby journals the `take` first."""

    RETRY = sec(1)        # lost-message resend sweep
    BACKOFF = ms(50)      # transport failures (no leader yet)
    WAIT_RETRY = ms(100)  # re-send a prepare that was told to wait
    DIE_BACKOFF = ms(20)  # base backoff before retrying a died attempt

    def __init__(self, name, sim, network, site: str, router: ShardRouter,
                 metrics: MetricsRecorder, rng, control: ControlGroup,
                 costs: Optional[NodeCosts] = None) -> None:
        super().__init__(name, sim, network, site, control, rng,
                         metrics=metrics, costs=costs or NodeCosts())
        self.router = router
        # Fence epoch: commands stamped below the store-side fence are
        # refused.  Starts at 1; every recovery (and every takeover we
        # suffer) moves it up through the control journal.
        self.epoch = 1
        self._refence_want = 0
        self._sweeps: Dict[str, _Sweep] = {}    # recover client_id -> sweep
        self._taking: set = set()               # peers with a take in flight
        self._active: Dict[str, _TxnState] = {}     # txn_id -> state
        self._by_handle: Dict[str, _TxnState] = {}  # handle -> state
        # Committed-reply cache, windowed per client: client -> txn_seq ->
        # reply.  Retries of any un-acked txn_seq are answered from here;
        # the client's `TxnRequest.acked_low_water` stamp evicts the acked
        # slots (the coordinator-side counterpart of the stores' windowed
        # dedup, so pipelined transactions stay at-most-once too).  The
        # floor below which slots were evicted is remembered per client:
        # a delayed retransmit of an acked txn_seq must be DROPPED, not
        # treated as a fresh transaction (mirrors DedupSession.lookup's
        # seq <= low_water marker).
        self._completed: Dict[str, Dict[int, TxnReply]] = {}
        self._completed_floor: Dict[str, int] = {}
        self._queued: List[Tuple[str, TxnRequest]] = []
        self._recovering = False
        self._attempts = 0
        self.commits = 0
        self.attempt_aborts = 0
        self.recoveries = 0
        self._tick_timer = self.timer("txn-tick")
        self._tick_timer.arm(self.RETRY, self._tick)

    # -- client requests -----------------------------------------------------

    def on_message(self, src: str, message) -> None:
        if isinstance(message, TxnRequest):
            self._on_request(src, message)
        elif isinstance(message, ClientReply):
            if self.handle_control_reply(message):
                return
            self._on_reply(message)

    def _cache_reply(self, txn_id: str, reply: TxnReply) -> None:
        client, txn_seq = txn_id.rsplit(":", 1)
        self._completed.setdefault(client, {})[int(txn_seq)] = reply

    def _cached_reply(self, txn_id: str) -> Optional[TxnReply]:
        client, txn_seq = txn_id.rsplit(":", 1)
        return self._completed.get(client, {}).get(int(txn_seq))

    def _evict_completed(self, client: str, acked_low_water: int) -> None:
        if acked_low_water > self._completed_floor.get(client, 0):
            self._completed_floor[client] = acked_low_water
        window = self._completed.get(client)
        if window is None:
            return
        for txn_seq in [seq for seq in window if seq <= acked_low_water]:
            del window[txn_seq]
        if not window:
            del self._completed[client]

    def _on_request(self, src: str, msg: TxnRequest) -> None:
        txn_id = f"{msg.client}:{msg.txn_seq}"
        if self._recovering:
            # Don't start work until the decision-log replay has rebuilt
            # the committed cache — re-running a decided transaction here
            # would be the double-execution this design exists to prevent.
            self._queued.append((src, msg))
            return
        self._evict_completed(msg.client, msg.acked_low_water)
        if msg.txn_seq <= self._completed_floor.get(msg.client, 0):
            # An acked txn_seq (its slot was evicted on the client's own
            # low-water stamp): only a stale retransmit of an answered
            # request can present it — starting a fresh attempt here would
            # re-execute a committed transaction.  Drop it.
            return
        cached = self._cached_reply(txn_id)
        if cached is not None:
            self.send(src, cached)
            return
        active = self._active.get(txn_id)
        if active is not None:
            active.client_node = src  # duplicate request: re-register reply path
            return
        if self.obs is not None:
            self.obs_phase(f"{msg.client}:t{msg.txn_seq}", "server_recv")
        self._start_attempt(txn_id, src, list(msg.ops), msg.ts)

    def _start_attempt(self, txn_id: str, client_node: Optional[str],
                       ops: TxnOps, ts: int, retries: int = 0) -> None:
        self._attempts += 1
        # The coordinator name is part of the handle: with client-side
        # coordinator rotation, two coordinators can attempt the SAME
        # transaction concurrently, and their handles must not collide.
        handle = f"{txn_id}#{self.name}.{self.epoch}.{self._attempts}"
        participants: Dict[int, List] = {}
        for op in ops:
            participants.setdefault(self.router.shard_of(op[1]), []).append(list(op))
        state = _TxnState(txn_id, client_node, ops, ts, handle, participants,
                          seq_base=seq_namespace(self.epoch), retries=retries)
        self._active[txn_id] = state
        self._by_handle[handle] = state
        for shard in sorted(participants):
            self._send_prepare(state, shard)

    # -- command plumbing ----------------------------------------------------

    def _command(self, state: _TxnState, op: OpType, payload: Dict) -> Command:
        state.seq += 1
        assert state.seq < state.seq_base + SEQ_SPAN, (
            f"{state.handle}: sequence namespace overflow — more than "
            f"2**{SEQ_BITS} commands issued at one fence epoch")
        value = json.dumps(payload, sort_keys=True)
        return Command(op=op, key=f"txn:{state.handle}", value=value,
                       client_id=f"{TXN_CLIENT_PREFIX}{state.route}",
                       seq=state.seq, value_size=len(value),
                       trace=state.trace)

    def _send_command(self, shard: int, command: Command) -> None:
        self.send(self.router.server_for(shard, self.site),
                  ClientRequest(command=command, epoch=self.router.epoch))

    def _send_prepare(self, state: _TxnState, shard: int) -> None:
        if self.obs is not None:
            self.obs_phase(state.trace, "txn_prepare", shard=shard)
        command = self._command(state, OpType.TXN_PREPARE, {
            "handle": state.handle, "txn": state.txn_id, "coord": self.name,
            "inc": self.epoch, "ts": state.ts,
            "ops": state.participants[shard],
            "participants": sorted(state.participants), "home": state.home,
        })
        state.pending[shard] = command
        self._send_command(shard, command)

    def _tick(self) -> None:
        """Lost-message sweep: re-send every outstanding command."""
        for state in list(self._by_handle.values()):
            for shard, command in state.pending.items():
                self._send_command(shard, command)
        for sweep in list(self._sweeps.values()):
            for shard, command in sweep.pending.items():
                self._send_command(shard, command)
        self._tick_timer.arm(self.RETRY, self._tick)

    def _resend_later(self, state: _TxnState, shard: int, command: Command,
                      delay: int) -> None:
        def resend() -> None:
            if (self._by_handle.get(state.route) is state
                    and state.pending.get(shard) is command):
                self._send_command(shard, command)
        self.after(delay, resend)

    # -- replies -------------------------------------------------------------

    def _on_reply(self, msg: ClientReply) -> None:
        client_id, _seq = msg.request_id
        if client_id.startswith(TXN_RECOVER_PREFIX):
            self._on_recover_reply(msg)
            return
        if not client_id.startswith(TXN_CLIENT_PREFIX):
            return
        state = self._by_handle.get(client_id[len(TXN_CLIENT_PREFIX):])
        if state is None:
            return
        shard = next((s for s, c in state.pending.items()
                      if c.request_id == msg.request_id), None)
        if shard is None:
            return  # stale reply from an already-answered step
        if msg.shard_map is not None:
            self.router.refresh(msg.shard_map)
        if not msg.ok:
            # No leader yet (election in progress) or a mid-reshard bounce:
            # back off and re-send the same command — dedup makes it safe.
            self._resend_later(state, shard, state.pending[shard], self.BACKOFF)
            return
        payload = json.loads(msg.value or "{}")
        if state.phase == "prepare":
            self._on_vote(state, shard, payload)
        elif state.phase == "decide":
            state.pending.pop(shard, None)
            self._on_decision(state, payload)
        else:  # commit / abort phase-2 acks
            state.pending.pop(shard, None)
            if not state.pending:
                self._finish_phase2(state)

    def _on_vote(self, state: _TxnState, shard: int, payload: Dict) -> None:
        vote = payload.get("vote")
        if vote == "yes":
            state.pending.pop(shard, None)
            state.reads.update(payload.get("reads") or {})
            if state.all_prepared:
                self._log_decision(state)
        elif vote == "wait":
            # We are older than the lock holder: keep our other locks and
            # re-prepare this shard until the holder decides (wait-die).
            # A fresh sequence number each time — the retry must re-apply,
            # not be answered from the dedup cache with the same "wait".
            # The shard moves pending -> waiting, NOT out of the attempt:
            # a "yes" from the last other participant must not read an
            # empty `pending` as all-prepared and commit without us.
            self.metrics.incr("txn_waits")
            state.pending.pop(shard, None)
            state.waiting.add(shard)

            def again() -> None:
                if (self._by_handle.get(state.handle) is state
                        and state.phase == "prepare"
                        and shard in state.waiting):
                    state.waiting.discard(shard)
                    self._send_prepare(state, shard)
            self.after(self.WAIT_RETRY, again)
        else:
            # "no": we are younger than a holder (die), fenced, or misrouted
            # — abort this attempt everywhere and retry from scratch.
            self._abort_attempt(state)

    def _abort_attempt(self, state: _TxnState) -> None:
        self.attempt_aborts += 1
        self.metrics.incr("txn_attempt_aborts")
        state.phase = "abort"
        self._phase2(state, commit=False)

    def _log_decision(self, state: _TxnState) -> None:
        """All participants voted yes: replicate the commit decision in the
        home shard before any COMMIT is sent.  The reply carries whichever
        decision the home log recorded FIRST, and we obey it."""
        state.phase = "decide"
        if self.obs is not None:
            self.obs_phase(state.trace, "txn_decide", home=state.home)
        command = self._command(state, OpType.TXN_DECIDE, self._decision_record(
            state, "commit"))
        state.pending = {state.home: command}
        self._send_command(state.home, command)

    def _decision_record(self, state: _TxnState, outcome: str,
                         coord: Optional[str] = None) -> Dict:
        # `coord` tags the decision's owner: a janitor cleaning up a dead
        # peer's handle logs the decision under the PEER's name, so the
        # peer's own later sweep still sees it.
        return {"handle": state.handle, "txn": state.txn_id,
                "coord": coord or self.name,
                "participants": sorted(state.participants), "outcome": outcome,
                "reads": state.reads}

    def _on_decision(self, state: _TxnState, decision: Dict) -> None:
        state.reads = decision.get("reads") or state.reads
        if decision.get("outcome") == "commit":
            state.phase = "commit"
            self._phase2(state, commit=True)
        else:
            winner = decision.get("winner")
            if winner is not None:
                # Another attempt of this transaction (through another
                # coordinator, or our own pre-crash one) already committed:
                # abort OUR staged writes and answer from the winner.
                state.winner = winner
                state.reads = winner.get("reads") or {}
            # Our commit decision lost to a recovery abort (or to a
            # winning sibling attempt): phase-2 abort, then — winner-less
            # aborts only — retry the transaction as a fresh attempt.
            state.phase = "abort"
            self._phase2(state, commit=False)

    def _phase2(self, state: _TxnState, commit: bool) -> None:
        op = OpType.TXN_COMMIT if commit else OpType.TXN_ABORT
        if self.obs is not None:
            self.obs_phase(state.trace,
                           "txn_commit" if commit else "txn_abort")
        state.pending = {}
        state.waiting.clear()
        for shard in sorted(state.participants):
            command = self._command(state, op, {"handle": state.handle})
            state.pending[shard] = command
            self._send_command(shard, command)
        if not state.pending:  # pragma: no cover - always has participants
            self._finish_phase2(state)

    def _finish_phase2(self, state: _TxnState) -> None:
        self._by_handle.pop(state.route, None)
        if self._active.get(state.txn_id) is state:
            del self._active[state.txn_id]
        if state.phase == "commit":
            self.commits += 1
            self.metrics.incr("txn_commits")
            client, txn_seq = state.txn_id.rsplit(":", 1)
            reply = TxnReply(client=client, txn_seq=int(txn_seq), ok=True,
                             committed=True, reads=dict(state.reads),
                             server=self.name)
            self._cache_reply(state.txn_id, reply)
            # Mirror the commit into the control journal so the hot
            # standbys cache the reply too — a client that rotates to one
            # after we die is answered from cache, not re-executed.
            self.journal({"k": "txnd", "txn": state.txn_id,
                          "reads": dict(state.reads)})
            if state.client_node is not None:
                if self.obs is not None:
                    self.obs_phase(state.trace, "reply", ok=True)
                self.send(state.client_node, reply)
            return
        if state.winner is not None:
            # The transaction committed under a sibling attempt and our
            # staged writes are dropped: to the client this IS a commit —
            # answer with the winner's reads, and never retry.
            client, txn_seq = state.txn_id.rsplit(":", 1)
            reply = TxnReply(client=client, txn_seq=int(txn_seq), ok=True,
                             committed=True, reads=dict(state.reads),
                             server=self.name)
            self._cache_reply(state.txn_id, reply)
            if state.client_node is not None:
                if self.obs is not None:
                    self.obs_phase(state.trace, "reply", ok=True)
                self.send(state.client_node, reply)
            return
        if not state.ops:
            return  # recovery cleanup of an orphan attempt: nothing to retry
        # Aborted attempt: retry with the ORIGINAL timestamp after a jittered
        # backoff, so the transaction's wait-die priority only ever ages.
        delay = min(self.DIE_BACKOFF * (2 ** min(state.retries, 4)), ms(500))
        delay += self.rng.randint(0, int(ms(20)))

        def retry() -> None:
            if (state.txn_id not in self._active
                    and self._cached_reply(state.txn_id) is None
                    and not self._recovering):
                self._start_attempt(state.txn_id, state.client_node, state.ops,
                                    state.ts, retries=state.retries + 1)
        self.after(delay, retry)

    # -- lease / takeover ----------------------------------------------------

    def on_lease_tick(self) -> None:
        fe = self.view.fence_of(self.name)
        if fe > self.epoch and not self._recovering:
            # A janitor fenced us while we were alive (partitioned from the
            # control group, say).  Adopt the new epoch: in-flight attempts
            # stamped below it die on the store-side fence and retry
            # re-stamped; the janitor's sweep released their orphan locks.
            self.epoch = fe
        if not self._recovering:
            self.journal_lease()
        for peer in self.control.members:
            if peer == self.name or peer in self._taking:
                continue
            if not self.lease_expired(peer):
                continue
            cur = self.view.fence_of(peer)
            if self.view.taken_by.get(peer, (0, ""))[0] >= cur:
                # The current fence already IS a takeover and the victim
                # has not journaled since: nothing new to clean.
                continue
            self._taking.add(peer)
            self.journal({"k": "take", "v": peer, "by": self.name,
                          "fe": cur + 1})

    def on_control_record(self, record: Dict) -> None:
        kind = record.get("k")
        if kind == "take":
            victim = record["v"]
            self._taking.discard(victim)
            if victim == self.name:
                if self._recovering:
                    # A take beat our pending re-fence to its epoch: ask
                    # for a higher one (adoption requires the committed
                    # fence to be at least what we asked for).
                    if self.view.fence_of(self.name) >= self._refence_want:
                        self._refence()
                else:
                    self.epoch = max(self.epoch, self.view.fence_of(self.name))
                return
            if (record.get("by") == self.name
                    and self.view.taken_by.get(victim)
                    == (record["fe"], self.name)):
                # We won the takeover race for this victim at this epoch.
                # The stable guard keeps a control-log replay (which
                # re-fires every listener) from re-counting or re-sweeping.
                swept = self.stable.setdefault("swept", set())
                if (victim, record["fe"]) not in swept:
                    swept.add((victim, record["fe"]))
                    self.record_failover("txn-janitor")
                    self._begin_sweep(victim, record["fe"])
        elif kind == "fence":
            if (record.get("o") == self.name and self._recovering
                    and self.view.fence_of(self.name) >= self._refence_want):
                self._adopt_epoch(self.view.fence_of(self.name))
        elif kind == "txnd":
            self._learn_commit(record)

    def _learn_commit(self, record: Dict) -> None:
        """A fleet member journaled a commit: cache the reply so a client
        that rotates here is answered instead of re-executed."""
        txn_id = record["txn"]
        client, txn_seq = txn_id.rsplit(":", 1)
        if int(txn_seq) <= self._completed_floor.get(client, 0):
            return  # already acked and evicted: a replayed journal record
        if self._cached_reply(txn_id) is None:
            self._cache_reply(txn_id, TxnReply(
                client=client, txn_seq=int(txn_seq), ok=True, committed=True,
                reads=record.get("reads") or {}, server=self.name))

    # -- crash / recovery ----------------------------------------------------

    def on_crash(self) -> None:
        # Volatile state is lost; the decision log in the home shards is
        # not (recovery re-caches every committed decision, so stale
        # retransmits of acked transactions still hit the cache even
        # though the eviction floors are forgotten with it).
        super().on_crash()
        self._active.clear()
        self._by_handle.clear()
        self._completed.clear()
        self._completed_floor.clear()
        self._queued.clear()
        self._sweeps.clear()
        self._taking.clear()

    def on_recover(self) -> None:
        super().on_recover()
        self.recoveries += 1
        self.metrics.incr("txn_recoveries")
        self._recovering = True
        self._tick_timer.arm(self.RETRY, self._tick)
        self._refence()

    def _refence(self) -> None:
        """Ask the control journal for a fence epoch above everything ever
        granted to (or taken from) this coordinator.  Adoption happens in
        `on_control_record` when the committed fence reaches the ask; a
        concurrent janitor take to the same epoch just pushes the ask up."""
        self._refence_want = max(self.view.fence_of(self.name), self.epoch) + 1
        self.journal({"k": "fence", "o": self.name, "fe": self._refence_want})

    def _adopt_epoch(self, fe: int) -> None:
        # Stable-guarded: a control-log replay re-fires the fence record,
        # and must not restart an already-finished self-sweep.
        adopted = self.stable.setdefault("adopted", set())
        if fe in adopted:
            return
        adopted.add(fe)
        self.epoch = fe
        self._begin_sweep(self.name, fe)

    def _begin_sweep(self, victim: str, fe: int) -> None:
        """Fan a fenced `TXN_RECOVER` out to every shard for `victim`.
        Store-side this raises the victim's fence to `fe` and reports its
        prepared transactions and logged decisions; `_finish_sweep` then
        resolves them."""
        client_id = f"{TXN_RECOVER_PREFIX}{victim}:{fe}"
        if client_id in self._sweeps:
            return
        sweep = _Sweep(victim, fe)
        self._sweeps[client_id] = sweep
        value = json.dumps({"coord": victim, "inc": fe}, sort_keys=True)
        for shard in range(self.router.num_shards):
            command = Command(
                op=OpType.TXN_RECOVER, key=f"txnrec:{victim}", value=value,
                client_id=client_id, seq=shard + 1, value_size=len(value))
            sweep.pending[shard] = command
            self._send_command(shard, command)

    def _on_recover_reply(self, msg: ClientReply) -> None:
        client_id, _seq = msg.request_id
        sweep = self._sweeps.get(client_id)
        if sweep is None:
            return
        shard = next((s for s, c in sweep.pending.items()
                      if c.request_id == msg.request_id), None)
        if shard is None:
            return
        if not msg.ok:
            self._send_command(shard, sweep.pending[shard])
            return
        payload = json.loads(msg.value or "{}")
        del sweep.pending[shard]
        for meta in payload.get("prepared", []):
            sweep.prepared[meta["handle"]] = meta
        for record in payload.get("decisions", []):
            sweep.decisions[record["handle"]] = record
        if not sweep.pending:
            del self._sweeps[client_id]
            self._finish_sweep(sweep)

    def _finish_sweep(self, sweep: _Sweep) -> None:
        """Replay the victim's decision log (the victim may be ourselves):
        decided-commit transactions are pushed through phase 2 again
        (idempotent) and their replies re-cached for client retries;
        prepared-but-undecided transactions are resolved presumed-abort,
        releasing their locks."""
        prepared, decisions = sweep.prepared, sweep.decisions
        for handle in sorted(decisions):
            record = decisions[handle]
            if record["outcome"] == "commit":
                # Re-cache the committed reply for client retries whether or
                # not phase 2 needs finishing.
                self._learn_commit(record)
            if handle not in prepared:
                # No participant still holds state for this handle: phase 2
                # finished before the crash.  Skipping it keeps the sweep
                # O(in-flight), not O(every decision ever logged).
                continue
            # Cleanup states run in their own `{handle}!s{fence}` dedup
            # session (see `_TxnState.route`): the victim may have burned
            # arbitrary sequence numbers in the handle's own session, and a
            # colliding janitor command would be answered from the dedup
            # cache with a stale vote instead of applying.
            state = _TxnState(record["txn"], None, [], 0, handle,
                              {int(s): [] for s in record["participants"]},
                              seq_base=seq_namespace(sweep.fe),
                              route=f"{handle}!s{sweep.fe}")
            state.reads = record.get("reads") or {}
            if record["outcome"] == "commit":
                state.phase = "commit"
                if self._active.get(state.txn_id) is None:
                    self._active[state.txn_id] = state
                self._by_handle[state.route] = state
                self._phase2(state, commit=True)
            else:
                # An abort the victim decided but never finished delivering:
                # release the surviving locks.
                state.phase = "abort"
                state.retries = 10**6  # a cleanup, not a client retry loop
                self._by_handle[state.route] = state
                self._phase2(state, commit=False)
        for handle in sorted(prepared):
            if handle in decisions:
                continue
            meta = prepared[handle]
            if self._active.get(meta["txn"]) is not None:
                continue  # a commit resumption for this txn is already running
            state = _TxnState(meta["txn"], None, [], meta.get("ts", 0), handle,
                              {int(s): [] for s in meta["participants"]},
                              seq_base=seq_namespace(sweep.fe),
                              route=f"{handle}!s{sweep.fe}")
            state.phase = "decide"
            self._by_handle[state.route] = state
            command = self._command(state, OpType.TXN_DECIDE,
                                    self._decision_record(state, "abort",
                                                          coord=sweep.victim))
            state.pending = {int(meta["home"]): command}
            self._send_command(int(meta["home"]), command)
        if sweep.victim == self.name:
            self._recovering = False
            queued, self._queued = self._queued, []
            for src, msg in queued:
                self._on_request(src, msg)


# ---------------------------------------------------------------------------
# The txn experiment: committed-transaction throughput vs shard count and
# cross-shard ratio, with every ack accounted for
# ---------------------------------------------------------------------------


@dataclass
class TxnSpec(ShardedSpec):
    """A sharded trial whose load is multi-key transactions.

    Every client iteration issues one `txn_size`-operation transaction;
    with probability `cross_shard_ratio` its keys are drawn from two
    different shards (2PC through the coordinator), otherwise from one
    shard (the atomic single-command fast path)."""

    txn_size: int = 2
    cross_shard_ratio: float = 0.1


@dataclass
class TxnResult:
    spec: TxnSpec
    txn_throughput: float     # committed transactions per second
    ops_throughput: float     # txn_throughput * txn_size (op-comparable)
    committed: int            # committed transactions inside the window
    committed_total: int
    latency_ms: Dict[str, float]
    single_shard: int
    cross_shard: int
    commits_2pc: int
    attempt_aborts: int
    waits: int
    recoveries: int
    acks_lost: int
    acks_duplicated: int
    duplicate_executions: int
    serializability_violations: List[str]
    prefix_violations: Dict[int, List[str]]
    locks_left: int
    redirects: int
    filtered: int
    leaders: Dict[int, str]
    events_processed: int
    failovers: int = 0

    @property
    def strict_serializable(self) -> bool:
        return not self.serializability_violations

    @property
    def safe(self) -> bool:
        return (self.strict_serializable
                and all(not v for v in self.prefix_violations.values())
                and self.acks_lost == 0 and self.acks_duplicated == 0
                and self.duplicate_executions == 0)


class TxnWorkloadClient(ShardRoutedClient):
    """A closed-loop client whose every iteration is one transaction.

    With probability `cross_shard_ratio` the keys are drawn from two
    different shards (2PC through the coordinator); otherwise from one
    (the single-command fast path).  Per-shard key pools make single-shard
    key selection O(1) instead of rejection sampling the hash ring."""

    def __init__(self, name, sim, network, site, router, workload, sites,
                 rng, metrics, pools: Dict[int, List[str]], txn_size: int,
                 cross_shard_ratio: float, coordinator: str,
                 stop_at: Optional[int] = None, **session_kwargs) -> None:
        self._pools = pools
        self._pool_shards = sorted(pools)
        self.txn_size = max(1, txn_size)
        self.cross_shard_ratio = cross_shard_ratio
        self._value_tag = 0
        super().__init__(name, sim, network, site, router, workload, sites,
                         rng, metrics, stop_at=stop_at, coordinator=coordinator,
                         **session_kwargs)

    def _issue_one(self) -> None:
        self.transact(self._build_ops())

    def _build_ops(self) -> List:
        self._value_tag += 1
        rng = self.rng
        cross = (len(self._pool_shards) > 1 and self.txn_size > 1
                 and rng.random() < self.cross_shard_ratio)
        if cross:
            first, second = rng.sample(self._pool_shards, 2)
            shards = [first] + [second] * (self.txn_size - 1)
        else:
            # Weight the shard choice by pool size so single-shard load
            # matches the uniform-key draw of plain sharded clients.
            key = WorkloadConfig.key_name(rng.randrange(self.workload.records))
            shard = self.router.shard_of(key)
            if shard not in self._pools:
                shard = self._pool_shards[0]
            shards = [shard] * self.txn_size
        ops: List = []
        used = set()
        for i, shard in enumerate(shards):
            pool = self._pools[shard]
            key = pool[rng.randrange(len(pool))]
            tries = 0
            while key in used and tries < 8:
                key = pool[rng.randrange(len(pool))]
                tries += 1
            if key in used:
                continue  # pool smaller than txn_size: drop the extra op
            used.add(key)
            if rng.random() < self.workload.read_fraction:
                ops.append(("get", key, None))
            else:
                ops.append(("put", key, f"{self.name}:{self._value_tag}:{i}"))
        return ops


def spawn_txn_clients(sim, network, sites, router: ShardRouter,
                      per_region: int, workload, rng_root, metrics,
                      pools: Dict[int, List[str]], txn_size: int,
                      cross_shard_ratio: float,
                      stop_at: Optional[int] = None,
                      plan=None) -> List[TxnWorkloadClient]:
    """Transactional clients per site, each bound to its site-local
    coordinator (``txnco_<site>``), spawned through a `ClientPlan`."""
    from repro.workload.plan import ClientPlan

    if plan is None:
        plan = ClientPlan(per_region=per_region)

    def make(name, site, rng, host, rate):
        if rate is not None:
            raise ValueError("transactional fleets are closed-loop: "
                             "offered_load is not supported for TxnSpec")
        return TxnWorkloadClient(
            name, sim, network, site, router, workload, sites, rng, metrics,
            pools=pools, txn_size=txn_size,
            cross_shard_ratio=cross_shard_ratio,
            coordinator=f"txnco_{site}",
            coordinators=[f"txnco_{s}" for s in
                          [site] + [s for s in sites if s != site]],
            stop_at=stop_at, host=host,
            **plan.session_kwargs())

    return plan.spawn(sim, sites, rng_root, make)


class TxnCluster(ShardedCluster):
    """A sharded deployment serving transactional load: one coordinator per
    site plus closed-loop clients issuing `txn_size`-op transactions."""

    spec: TxnSpec

    def _spawn_clients(self) -> List:
        spec = self.spec
        sites = self.topology.sites
        # The coordinators' own consensus group: one control replica per
        # site, sharing a host with that site's coordinator.  The hosts
        # join the cluster's host table so machine-level nemesis faults
        # (host_kill) can land on coordinators too.
        self.txn_control = ControlGroup(
            "txnctl", self.sim, self.network, sites, spec.protocol,
            members=[f"txnco_{site}" for site in sites])
        for host in self.txn_control.hosts.values():
            self.hosts[host.name] = host
        self.coordinators = [
            TxnCoordinator(f"txnco_{site}", self.sim, self.network, site,
                           self.router, self.metrics,
                           self.rng.stream(f"txnco:{site}"),
                           control=self.txn_control)
            for site in sites
        ]
        self.txn_events: List[TxnEvent] = []
        # Per-shard key pools so single-shard transactions can draw all
        # their keys from one group without rejection sampling.
        pools: Dict[int, List[str]] = {shard: [] for shard in self.groups}
        for key_id in range(spec.workload.records):
            key = WorkloadConfig.key_name(key_id)
            pools[self.partitioner.shard_of(key)].append(key)
        self._pools = {shard: keys for shard, keys in pools.items() if keys}

        def record_event(client, txn_id, ops, reads, start, end) -> None:
            self.txn_events.append(TxnEvent(
                txn_id=txn_id, start=start, end=end,
                ops=tuple((op, key,
                           value if op == "put" else reads.get(key))
                          for op, key, value in ops)))

        clients = spawn_txn_clients(
            self.sim, self.network, self.topology.sites, self.router,
            spec.clients_per_region, spec.workload, self.rng, self.metrics,
            pools=self._pools, txn_size=spec.txn_size,
            cross_shard_ratio=spec.cross_shard_ratio,
            stop_at=sec(spec.duration_s), plan=spec.client_plan())
        for client in clients:
            client.on_txn_complete_hooks.append(record_event)
        return clients

    # -- safety accounting ---------------------------------------------------

    def write_orders(self) -> Dict[str, List[str]]:
        """Per-key install order, taken from the most advanced replica of
        the key's owner group (replicas are prefix-consistent, so the
        longest log is the most complete)."""
        orders: Dict[str, List[str]] = {}
        for shard, replicas in self.groups.items():
            keys = set()
            for replica in replicas.values():
                keys |= set(replica.store._write_log)
            for key in keys:
                if self.partitioner.shard_of(key) != shard:
                    continue
                best: List[str] = []
                for replica in replicas.values():
                    order = replica.store.write_order(key)
                    if len(order) > len(best):
                        best = order
                orders[key] = best
        return orders

    def duplicate_execution_count(self) -> int:
        """Acked writes that installed more than once: on every key's owner
        group, the store's version count must equal the distinct
        acknowledged transactional writes plus at most the ones still in
        flight at the end of the run."""
        acked: Dict[str, set] = {}
        for event in self.txn_events:
            for op, key, value in event.ops:
                if op == "put":
                    acked.setdefault(key, set()).add((event.txn_id, value))
        allowance: Dict[str, int] = {}
        for client in self.clients:
            for op, key, _value in client.pending_ops():
                if op == "put":
                    allowance[key] = allowance.get(key, 0) + 1
        duplicates = 0
        for key, writes in acked.items():
            shard = self.partitioner.shard_of(key)
            version = max((replica.store.version(key)
                           for replica in self.groups[shard].values()),
                          default=0)
            duplicates += max(0, version - len(writes)
                              - allowance.get(key, 0))
        return duplicates

    def locks_left(self) -> int:
        """Prepared locks still held when the run ends (bounded by the
        in-flight transactions; an unbounded residue means orphan locks)."""
        return max((len(replica.store.locked_keys())
                    for replicas in self.groups.values()
                    for replica in replicas.values()), default=0)

    # -- running -------------------------------------------------------------

    def run(self) -> TxnResult:  # type: ignore[override]
        spec = self.spec
        self.sim.run(until=sec(spec.duration_s))
        window_start = sec(spec.warmup_s)
        window_end = sec(spec.duration_s - spec.cooldown_s)
        txn_throughput = self.metrics.throughput_ops(window_start, window_end)
        acks_lost = sum(c.txns_issued - c.txns_committed - c.txns_outstanding
                        for c in self.clients)
        acks_duplicated = (len(self.metrics.records)
                           - sum(c.txns_committed for c in self.clients))
        violations = check_strict_serializability(self.txn_events,
                                                  self.write_orders())
        prefix = {shard: checker.check_prefix_agreement()
                  for shard, checker in sorted(self.checkers.items())}
        return TxnResult(
            spec=spec,
            txn_throughput=txn_throughput,
            ops_throughput=txn_throughput * spec.txn_size,
            committed=len(self.metrics.window(window_start, window_end)),
            committed_total=sum(c.txns_committed for c in self.clients),
            latency_ms=self.metrics.latency_summary_ms(window_start, window_end),
            single_shard=sum(c.single_shard_txns for c in self.clients),
            cross_shard=sum(c.cross_shard_txns for c in self.clients),
            commits_2pc=sum(c.commits for c in self.coordinators),
            attempt_aborts=sum(c.attempt_aborts for c in self.coordinators),
            waits=self.metrics.counters.get("txn_waits", 0),
            recoveries=sum(c.recoveries for c in self.coordinators),
            acks_lost=acks_lost,
            acks_duplicated=acks_duplicated,
            duplicate_executions=self.duplicate_execution_count(),
            serializability_violations=violations,
            prefix_violations=prefix,
            locks_left=self.locks_left(),
            redirects=sum(c.redirects for c in self.clients),
            filtered=self.filtered_count(),
            leaders=dict(self.leaders),
            events_processed=self.sim.events_processed,
            failovers=sum(c.failovers for c in self.coordinators),
        )


def run_txn_experiment(spec: TxnSpec,
                       nemesis: Optional[Callable] = None) -> TxnResult:
    """Build a transactional cluster, optionally install a nemesis fault
    schedule (`nemesis(cluster)` before the run starts), and run it."""
    cluster = TxnCluster(spec)
    if nemesis is not None:
        nemesis(cluster)
    return cluster.run()
