"""Determinism canary (`python -m repro.bench.determinism`).

The simulator's contract is bit-for-bit reproducibility: the same seed
must produce the same event order, the same replica logs, and the same
applied state, every run, on every machine.  The timer-wheel refactor
(near-store batching, bucket cascade, lazy cancellation, compaction)
preserves that contract by construction — ties break on insertion
sequence number at every level — and this module is the tripwire that
keeps it true.

It runs a fixed single-group workload TWICE in the same process and
digests every replica's full log (term, ballot, op, client, seq, key),
its applied table, and the run's completion/event counts into one
SHA-256.  The two in-process digests must always match (schedule-order
determinism); with ``PYTHONHASHSEED=0`` the digest is also stable
across interpreter launches and machines, so a golden copy lives in
``benchmarks/results/determinism_canary.json`` and CI compares every
build against it (`--check`).

    python -m repro.bench.determinism                 # run twice, print
    python -m repro.bench.determinism --check FILE    # also compare golden
    python -m repro.bench.determinism --write FILE    # refresh the golden
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Any, Dict, Tuple

from repro.bench.harness import Cluster
from repro.bench.perf import single_group_spec

#: The canary workload: small enough for CI (sub-second), large enough
#: to elect a leader, replicate a few hundred entries, and exercise the
#: wheel (election timers), the near store (replication traffic), and
#: cancellation churn (timer resets) on the way.
CANARY_SCALE = 0.25
CANARY_SEED = 0


def state_digest(scale: float = CANARY_SCALE,
                 seed: int = CANARY_SEED) -> Tuple[str, Dict[str, Any]]:
    """Run the canary workload once; return (sha256 hex digest, summary).

    The digest covers, in canonical JSON (sorted keys, no whitespace):
    per-replica logs entry by entry, per-replica applied tables and
    counters, completed-op and simulator-event counts, and the final
    simulated clock.
    """
    spec = single_group_spec(scale, seed)
    cluster = Cluster(spec)
    result = cluster.run()
    replicas = {}
    for name in sorted(cluster.replicas):
        replica = cluster.replicas[name]
        replicas[name] = {
            "log": [
                [entry.term, entry.ballot, entry.command.op.name,
                 entry.command.client_id, entry.command.seq,
                 entry.command.key]
                for entry in replica.log
            ],
            "last_applied": replica.last_applied,
            "applied_count": replica.store.applied_count,
            "table": sorted(replica.store._table.items()),
        }
    state = {
        "scale": scale,
        "seed": seed,
        "completed": result.completed,
        "events": cluster.sim.events_processed,
        "sim_now": cluster.sim.now,
        "replicas": replicas,
    }
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).hexdigest()
    summary = {
        "scale": scale,
        "seed": seed,
        "digest": digest,
        "completed": result.completed,
        "events": cluster.sim.events_processed,
        "log_lengths": {name: len(r["log"]) for name, r in replicas.items()},
    }
    return digest, summary


def run_canary(scale: float = CANARY_SCALE,
               seed: int = CANARY_SEED) -> Dict[str, Any]:
    """Run the workload twice; raise if the two digests differ."""
    digest_a, summary = state_digest(scale, seed)
    digest_b, _ = state_digest(scale, seed)
    if digest_a != digest_b:
        raise AssertionError(
            f"same-seed runs diverged: {digest_a} != {digest_b}")
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.determinism",
        description="Run the determinism canary (twice) and optionally "
                    "compare/refresh the committed golden digest.")
    parser.add_argument("--scale", type=float, default=CANARY_SCALE)
    parser.add_argument("--seed", type=int, default=CANARY_SEED)
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="compare against a committed golden digest; "
                             "exit non-zero on mismatch")
    parser.add_argument("--write", metavar="FILE", default=None,
                        help="write the fresh digest as the new golden")
    args = parser.parse_args(argv)

    summary = run_canary(args.scale, args.seed)
    print(f"determinism canary: two same-seed runs agree "
          f"(digest {summary['digest'][:16]}..., "
          f"{summary['events']} events, {summary['completed']} ops)")

    if args.write is not None:
        summary["python_hash_seed"] = os.environ.get("PYTHONHASHSEED", "")
        with open(args.write, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote golden digest to {args.write}")

    if args.check is not None:
        with open(args.check) as handle:
            golden = json.load(handle)
        if (golden.get("scale") != args.scale
                or golden.get("seed") != args.seed):
            print(f"golden digest is for scale={golden.get('scale')} "
                  f"seed={golden.get('seed')}, ran scale={args.scale} "
                  f"seed={args.seed}: not comparable", file=sys.stderr)
            return 2
        if os.environ.get("PYTHONHASHSEED") != "0":
            # The cross-interpreter digest is only pinned under a pinned
            # hash seed; without it only the in-process double run (above)
            # is meaningful.
            print("PYTHONHASHSEED != 0: skipping golden comparison")
            return 0
        if golden["digest"] != summary["digest"]:
            print(f"DETERMINISM DRIFT: committed {golden['digest']}\n"
                  f"                   fresh     {summary['digest']}",
                  file=sys.stderr)
            return 1
        print("golden digest matches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
