"""Simulator-core microbenchmark (the `perf` figure).

Measures how fast the event loop pushes simulated work through four
legs, from the refactored core outward:

* **core-churn** — the simulator core alone, at figure scale: hundreds
  of heartbeat-driven nodes, replication fan-out delivery chains, and —
  dominating the timer traffic, as in every leader-based figure — an
  election-timer reset (cancel + re-arm 150 ms out) on every delivery.
  No protocol or network code runs: this is the direct before/after of
  the timer-wheel/batched-dispatch refactor, and the leg that dominates
  the aggregate (it processes ~10x the events of the cluster legs).
* **single-group** — one Raft group, five regions, pipelined closed-loop
  clients: the AppendEntries/reply replication fast path plus client
  request handling (the Figure 9c/10a shape).
* **hosted-mux** — four colocated shard groups on one machine per site
  with cross-group coalescing on: the `Host` CPU queue, `GroupMux`
  envelope, and beacon paths (the `coalesce` figure shape).
* **sharded-txn** — the same colocated four-shard topology under
  multi-key transactional load with a 2PC cross-shard fraction: the
  coordinator, lock-table, and control-log paths stacked on top of
  everything the hosted-mux leg exercises (the `txn` figure shape).

The cluster legs carry full protocol-handler bodies, so their speedup is
Amdahl-bounded; the core leg isolates the refactored subsystem.

Reported per leg and in aggregate:

* `events_per_sec` — simulator callbacks dispatched per wall-clock second
  (the headline number; the refactor target is events/sec, not ops/sec,
  because every layer above the simulator is paced by it);
* `sim_s_per_wall_s` — simulated seconds advanced per wall-clock second
  (how much faster than real time the deployment runs);
* `ops_per_sec_wall` — client operations completed per wall second.

Wall-clock numbers are machine-dependent, so the report also carries a
`calibration` score (a fixed pure-Python workload timed on the same
machine) and `events_per_sec_normalized = events_per_sec / calibration`.
Regression checks between machines (the CI perf job) compare the
normalized number; same-machine before/after comparisons use the raw one.

`python -m repro.bench perf` runs all legs, prints the figure, and
writes `BENCH_perf.json` (see `--perf-out`); with `--perf-baseline FILE`
it also compares against a committed baseline and, with
`--perf-fail-threshold R`, exits non-zero on a worse-than-R regression —
the CI perf job's contract.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.harness import Cluster, ExperimentSpec
from repro.obs import SimProfiler
from repro.shard.cluster import ShardedCluster, ShardedSpec
from repro.shard.txn import TxnCluster, TxnSpec
from repro.sim.events import Simulator
from repro.sim.units import ms
from repro.workload.ycsb import WorkloadConfig


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def calibrate(iterations: int = 200_000) -> float:
    """Machine-speed score: iterations/second of a fixed pure-Python
    mix (dict churn + integer heap math), same flavour of work as the
    simulator hot path.  Used to normalize events/sec across machines."""
    start = time.perf_counter()
    acc = 0
    table: Dict[int, int] = {}
    for i in range(iterations):
        table[i & 1023] = acc
        acc = (acc + i * 31) & 0xFFFFFFFF
        if i & 7 == 0:
            table.pop(i & 1023, None)
    elapsed = time.perf_counter() - start
    return iterations / elapsed if elapsed > 0 else float("inf")


# ---------------------------------------------------------------------------
# The four legs
# ---------------------------------------------------------------------------


def run_core_churn(scale: float = 1.0, seed: int = 0,
                   duration_s: float = 2.0,
                   profile: bool = False) -> Dict[str, Any]:
    """Simulator core alone, under the figure-shaped event mix: periodic
    heartbeats, small-delay replication fan-out chains, and an election
    timer reset (cancel + re-arm far in the future) on every delivery.

    The reset-per-delivery is the load-bearing part: leader-based
    protocols cancel and re-arm a ~150 ms timer on every heartbeat or
    append a follower receives, so almost every far-future timer dies
    unfired.  A queue design that lets those tombstones pollute the hot
    path degrades superlinearly with node count — exactly what the timer
    wheel plus compaction is for.

    Pure `Simulator` API (schedule / Event.cancel / run), so the same
    function measures any tree that has the simulator at all.
    """
    sim = Simulator()
    nodes = _scaled(480, scale)
    heartbeat = 5_000            # us between a node's beats
    election = 150_000           # far-future timer horizon
    fanout = 3                   # deliveries spawned per beat
    pending: List[Any] = [None] * nodes
    delivered = [0] * nodes
    schedule = sim.schedule
    jitter = seed % 977          # deterministic per-seed phase shift

    def expire(i: int) -> None:
        delivered[i] += 1

    def deliver(i: int, hop: int) -> None:
        delivered[i] += 1
        event = pending[i]
        if event is not None:
            event.cancel()
        pending[i] = schedule(election + (i % 7) * 1_000 + jitter, expire, i)
        if hop:
            schedule(500 + (i % 16) * 250, deliver,
                     (i * 7 + hop) % nodes, hop - 1)

    def beat(i: int) -> None:
        event = pending[i]
        if event is not None:
            event.cancel()
        pending[i] = schedule(election + (i % 7) * 1_000 + jitter, expire, i)
        schedule(heartbeat, beat, i)
        for p in range(fanout):
            schedule(500 + ((i + p) % 16) * 250, deliver,
                     (i + p + 1) % nodes, 2)

    for i in range(nodes):
        schedule(i % heartbeat, beat, i)

    profiler = None
    if profile:
        profiler = SimProfiler().attach(sim)
    start = time.perf_counter()
    sim.run(until=int(duration_s * 1_000_000))
    wall_s = time.perf_counter() - start
    events = sim.events_processed
    leg: Dict[str, Any] = {
        "sim_s": duration_s,
        "wall_s": round(wall_s, 4),
        "events": events,
        "completed_ops": sum(delivered),
        "events_per_sec": round(events / wall_s, 1) if wall_s else 0.0,
        "sim_s_per_wall_s": round(duration_s / wall_s, 3) if wall_s else 0.0,
        "ops_per_sec_wall": round(sum(delivered) / wall_s, 1) if wall_s else 0.0,
    }
    if profiler is not None:
        leg["profile"] = [
            {"kind": row["kind"], "count": row["count"],
             "wall_ms": round(row["wall_s"] * 1e3, 2),
             "share": round(row["share"], 4)}
            for row in profiler.report(top=8)
        ]
        profiler.detach(sim)
    return leg


def single_group_spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    """One Raft group under pipelined closed-loop load (replication path)."""
    return ExperimentSpec(
        protocol="raft",
        clients_per_region=_scaled(40, scale),
        pipeline_depth=4,
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                                value_size=8),
        duration_s=4.0 * max(scale, 0.25),
        warmup_s=1.0 * max(scale, 0.25),
        cooldown_s=0.5 * max(scale, 0.25),
        seed=seed,
    )


def hosted_mux_spec(scale: float = 1.0, seed: int = 0) -> ShardedSpec:
    """Four colocated groups on one machine per site, coalescing on
    (Host CPU queue + GroupMux envelope/beacon path)."""
    return ShardedSpec(
        protocol="raft",
        num_shards=4,
        placement="colocated",
        clients_per_region=_scaled(40, scale),
        workload=WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                                value_size=8),
        duration_s=4.0 * max(scale, 0.25),
        warmup_s=1.0 * max(scale, 0.25),
        cooldown_s=0.5 * max(scale, 0.25),
        seed=seed,
        site_uplink_factor=None,
        hosts_per_site=1,
        coalesce=True,
        coalesce_flush_interval=int(ms(2)),
    )


def sharded_txn_spec(scale: float = 1.0, seed: int = 0) -> TxnSpec:
    """Four colocated groups under multi-key transactional load: one
    quarter of the transactions span two shards (2PC through the
    coordinator), the rest take the single-shard atomic fast path."""
    return TxnSpec(
        protocol="raft",
        num_shards=4,
        placement="colocated",
        clients_per_region=_scaled(24, scale),
        workload=WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                                value_size=8),
        duration_s=4.0 * max(scale, 0.25),
        warmup_s=1.0 * max(scale, 0.25),
        cooldown_s=0.5 * max(scale, 0.25),
        seed=seed,
        site_uplink_factor=None,
        hosts_per_site=1,
        coalesce=True,
        coalesce_flush_interval=int(ms(2)),
        txn_size=2,
        cross_shard_ratio=0.25,
    )


def _time_cluster(cluster, duration_s: float,
                  profile: bool = False) -> Dict[str, Any]:
    """Run a built cluster to completion and report wall-clock rates."""
    profiler = None
    if profile:
        profiler = SimProfiler().attach(cluster.sim)
    start = time.perf_counter()
    result = cluster.run()
    wall_s = time.perf_counter() - start
    events = cluster.sim.events_processed
    completed = getattr(result, "completed", None)
    if completed is None:
        # TxnResult counts committed transactions instead.
        completed = getattr(result, "committed", 0)
    leg: Dict[str, Any] = {
        "sim_s": duration_s,
        "wall_s": round(wall_s, 4),
        "events": events,
        "completed_ops": completed,
        "events_per_sec": round(events / wall_s, 1) if wall_s else 0.0,
        "sim_s_per_wall_s": round(duration_s / wall_s, 3) if wall_s else 0.0,
        "ops_per_sec_wall": round(completed / wall_s, 1) if wall_s else 0.0,
    }
    if profiler is not None:
        leg["profile"] = [
            {"kind": row["kind"], "count": row["count"],
             "wall_ms": round(row["wall_s"] * 1e3, 2),
             "share": round(row["share"], 4)}
            for row in profiler.report(top=8)
        ]
        profiler.detach(cluster.sim)
    return leg


def run_perf(scale: float = 1.0, seed: int = 0,
             profile: bool = True) -> Dict[str, Any]:
    """Run all four legs (plus, when `profile`, a second profiled pass of each
    at the same scale — profiled runs are not wall-clock comparable, so
    timing and attribution never share a run)."""
    legs: Dict[str, Any] = {}

    legs["core-churn"] = run_core_churn(scale, seed)
    spec_a = single_group_spec(scale, seed)
    legs["single-group"] = _time_cluster(Cluster(spec_a), spec_a.duration_s)
    spec_b = hosted_mux_spec(scale, seed)
    legs["hosted-mux"] = _time_cluster(ShardedCluster(spec_b),
                                       spec_b.duration_s)
    spec_c = sharded_txn_spec(scale, seed)
    legs["sharded-txn"] = _time_cluster(TxnCluster(spec_c),
                                        spec_c.duration_s)
    if profile:
        legs["core-churn"]["profile"] = run_core_churn(
            scale, seed, profile=True)["profile"]
        for name, spec, builder in (
                ("single-group", single_group_spec(scale, seed), Cluster),
                ("hosted-mux", hosted_mux_spec(scale, seed), ShardedCluster),
                ("sharded-txn", sharded_txn_spec(scale, seed), TxnCluster)):
            profiled = _time_cluster(builder(spec), spec.duration_s,
                                     profile=True)
            legs[name]["profile"] = profiled["profile"]

    total_events = sum(leg["events"] for leg in legs.values())
    total_wall = sum(leg["wall_s"] for leg in legs.values())
    total_sim = sum(leg["sim_s"] for leg in legs.values())
    calibration = calibrate()
    events_per_sec = total_events / total_wall if total_wall else 0.0
    return {
        "figure": "perf",
        "scale": scale,
        "seed": seed,
        "legs": legs,
        "events": total_events,
        "wall_s": round(total_wall, 4),
        "events_per_sec": round(events_per_sec, 1),
        "sim_s_per_wall_s": round(total_sim / total_wall, 3) if total_wall else 0.0,
        "calibration": round(calibration, 1),
        "events_per_sec_normalized": round(events_per_sec / calibration, 4)
        if calibration else 0.0,
    }


# ---------------------------------------------------------------------------
# Reporting / regression checking
# ---------------------------------------------------------------------------


def render_perf(report: Dict[str, Any],
                baseline: Optional[Dict[str, Any]] = None) -> str:
    lines = [
        f"Perf: simulator-core microbenchmark (scale {report['scale']}, "
        f"seed {report['seed']})",
        f"  aggregate: {report['events_per_sec']:,.0f} events/s, "
        f"{report['sim_s_per_wall_s']:.2f} sim-s per wall-s "
        f"({report['events']:,} events in {report['wall_s']:.2f}s wall)",
        f"  calibration: {report['calibration']:,.0f} (normalized "
        f"{report['events_per_sec_normalized']:.3f} events per "
        f"calibration-op)",
    ]
    for name, leg in report["legs"].items():
        lines.append(
            f"  {name}: {leg['events_per_sec']:,.0f} events/s, "
            f"{leg['sim_s_per_wall_s']:.2f} sim-s/wall-s, "
            f"{leg['ops_per_sec_wall']:,.0f} ops/s-wall "
            f"({leg['events']:,} events, {leg['completed_ops']} ops)")
        for row in leg.get("profile", [])[:5]:
            lines.append(
                f"      {row['share'] * 100:5.1f}%  {row['wall_ms']:8.1f} ms  "
                f"{row['count']:>8}x  {row['kind']}")
    if baseline is not None:
        comp = compare_to_baseline(report, baseline)
        lines.append(
            f"  vs baseline ({comp['baseline_label']}): "
            f"{comp['speedup']:.2f}x events/s raw, "
            f"{comp['speedup_normalized']:.2f}x normalized")
        if comp.get("legs"):
            per_leg = ", ".join(f"{name} {ratio:.2f}x"
                                for name, ratio in comp["legs"].items())
            lines.append(f"    per-leg normalized: {per_leg}")
    return "\n".join(lines)


def _headline(report: Dict[str, Any]) -> Dict[str, float]:
    return {"events_per_sec": report["events_per_sec"],
            "events_per_sec_normalized": report["events_per_sec_normalized"]}


def compare_to_baseline(report: Dict[str, Any],
                        baseline: Dict[str, Any]) -> Dict[str, Any]:
    """Speedup of `report` over a baseline BENCH_perf.json payload (either
    a raw report or a committed {pre_refactor, post_refactor} document —
    the newest recorded numbers win)."""
    if "post_refactor" in baseline:
        ref, label = baseline["post_refactor"], "post_refactor"
    elif "current" in baseline:
        ref, label = baseline["current"], "current"
    else:
        ref, label = baseline, "report"
    raw = (report["events_per_sec"] / ref["events_per_sec"]
           if ref.get("events_per_sec") else float("inf"))
    norm = (report["events_per_sec_normalized"]
            / ref["events_per_sec_normalized"]
            if ref.get("events_per_sec_normalized") else raw)
    # Per-leg normalized speedup: raw leg ratio corrected by the two
    # runs' calibration scores (each run's machine-speed score scales its
    # own events/sec, so the ratio of ratios is machine-neutral).  Legs
    # absent from the baseline (newly added) are skipped, not infinite.
    legs: Dict[str, float] = {}
    ref_cal = ref.get("calibration") or 0.0
    rep_cal = report.get("calibration") or 0.0
    ref_legs = ref.get("legs") or {}
    for name, leg in (report.get("legs") or {}).items():
        ref_leg = ref_legs.get(name)
        if not ref_leg or not ref_leg.get("events_per_sec"):
            continue
        ratio = leg["events_per_sec"] / ref_leg["events_per_sec"]
        if ref_cal and rep_cal:
            ratio *= ref_cal / rep_cal
        legs[name] = round(ratio, 3)
    return {"baseline_label": label, "speedup": raw,
            "speedup_normalized": norm, "legs": legs}


def check_regression(report: Dict[str, Any], baseline: Dict[str, Any],
                     threshold: float = 0.30) -> Tuple[bool, str]:
    """CI contract: normalized events/sec must not drop more than
    `threshold` below the committed baseline.  Returns (ok, message)."""
    comp = compare_to_baseline(report, baseline)
    floor = 1.0 - threshold
    ok = comp["speedup_normalized"] >= floor
    message = (
        f"normalized events/sec is {comp['speedup_normalized']:.2f}x the "
        f"committed baseline ({comp['baseline_label']}); regression floor "
        f"is {floor:.2f}x")
    return ok, ("ok: " if ok else "REGRESSION: ") + message
