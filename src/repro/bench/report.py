"""Paper-style table rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class FigureTable:
    """One regenerated figure: a title, column headers, and rows."""

    figure: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.figure}: row has {len(values)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def cell(self, row_key: Any, column: str) -> Any:
        col = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[col]
        raise KeyError(row_key)

    def render(self) -> str:
        widths = [
            max(len(str(col)), *(len(_fmt(row[i])) for row in self.rows))
            if self.rows else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [f"{self.figure}: {self.title}", "=" * (sum(widths) + 2 * len(widths))]
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("-" * (sum(widths) + 2 * len(widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_all(tables: Sequence[FigureTable]) -> str:
    return "\n\n".join(table.render() for table in tables)


# ---------------------------------------------------------------------------
# Gauge timelines: one text line per time series (repro.obs.GaugeSampler
# output), bucketed maxima mapped onto a density ramp.
# ---------------------------------------------------------------------------

GAUGE_RAMP = " .:-=+*#%@"


def render_timeline(name: str, samples: Sequence[Any],
                    buckets: int = 48, label_width: int = 30) -> str:
    """One gauge series as `name |...:==##| peak V` — each cell is the
    bucket's maximum scaled against the series peak."""
    label = name.ljust(label_width)
    if not samples:
        return f"{label} |{' ' * buckets}| (no samples)"
    t0, t1 = samples[0][0], samples[-1][0]
    span = max(t1 - t0, 1)
    peak = max(value for _, value in samples)
    cells = [0.0] * buckets
    for t, value in samples:
        index = min(buckets - 1, (t - t0) * buckets // span)
        cells[index] = max(cells[index], value)
    chars = "".join(_ramp_char(value, peak) for value in cells)
    return (f"{label} |{chars}| peak {peak:g} "
            f"({t0 / 1e6:.1f}s..{t1 / 1e6:.1f}s)")


def _ramp_char(value: float, peak: float) -> str:
    if peak <= 0 or value <= 0:
        return GAUGE_RAMP[0]
    index = 1 + int((value / peak) * (len(GAUGE_RAMP) - 2))
    return GAUGE_RAMP[min(index, len(GAUGE_RAMP) - 1)]


def render_timelines(gauges: Dict[str, Sequence[Any]],
                     names: Optional[Sequence[str]] = None,
                     buckets: int = 48) -> str:
    """Render several gauge series stacked (same bucket count, so the
    timelines line up).  `names` selects and orders; default is sorted."""
    selected = list(names) if names is not None else sorted(gauges)
    width = max((len(name) for name in selected), default=0)
    return "\n".join(render_timeline(name, gauges.get(name, ()),
                                     buckets=buckets, label_width=width)
                     for name in selected)
