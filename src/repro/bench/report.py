"""Paper-style table rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class FigureTable:
    """One regenerated figure: a title, column headers, and rows."""

    figure: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.figure}: row has {len(values)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def cell(self, row_key: Any, column: str) -> Any:
        col = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[col]
        raise KeyError(row_key)

    def render(self) -> str:
        widths = [
            max(len(str(col)), *(len(_fmt(row[i])) for row in self.rows))
            if self.rows else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [f"{self.figure}: {self.title}", "=" * (sum(widths) + 2 * len(widths))]
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("-" * (sum(widths) + 2 * len(widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_all(tables: Sequence[FigureTable]) -> str:
    return "\n\n".join(table.render() for table in tables)
