"""One function per figure of the paper's evaluation (§5).

Scale model (see EXPERIMENTS.md): the simulator's CPU/NIC budgets are ~20x
smaller than the paper's m4.xlarge testbed, so absolute ops/s are ~20x
lower; client counts and run durations are scaled accordingly.  The claims
under reproduction are *relative* (who wins, by what factor, where the
crossovers are), and those are preserved.

Every function returns `FigureTable`s ready to print and to assert against.
A `scale` < 1.0 shrinks client counts and durations proportionally for quick
smoke runs (tests use scale=0.3-0.5; the benchmark harness uses 1.0).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentSpec, run_experiment
from repro.bench.report import FigureTable, render_timelines
from repro.obs import PHASE_LABELS, tail_budget
from repro.protocols.types import Consistency
from repro.membership import DEFAULT_ALPHA
from repro.shard.cluster import (
    MembershipResult,
    MembershipSpec,
    ReshardResult,
    ReshardSpec,
    ShardedSpec,
    run_membership_experiment,
    run_reshard_experiment,
    run_sharded_experiment,
)
from repro.shard.nemesis import Nemesis
from repro.shard.txn import (TxnCluster, TxnResult, TxnSpec,
                             run_txn_experiment)
from repro.sim.topology import ec2_three_regions
from repro.sim.units import ms, sec
from repro.workload.session import RetryPolicy
from repro.workload.ycsb import WorkloadConfig

PQL_SYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("Raft*-PQL", "raftstar-pql"),
    ("Raft*-LL", "leaderlease"),
    ("Raft", "raft"),
    ("Raft*", "raftstar"),
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


# ---------------------------------------------------------------------------
# Figure 9a / 9b: read and write latency (90% read, 5% conflict)
# ---------------------------------------------------------------------------

def fig9_latency(scale: float = 1.0, seed: int = 1) -> Tuple[FigureTable, FigureTable]:
    workload = WorkloadConfig(read_fraction=0.9, conflict_rate=0.05)
    reads = FigureTable(
        figure="Figure 9a",
        title="Read latency, ms (50th/90th/99th percentile)",
        columns=["system", "leader p50", "leader p90", "leader p99",
                 "followers p50", "followers p90", "followers p99"],
    )
    writes = FigureTable(
        figure="Figure 9b",
        title="Write latency, ms (50th/90th/99th percentile)",
        columns=["system", "leader p50", "leader p90", "leader p99",
                 "followers p50", "followers p90", "followers p99"],
    )
    for label, protocol in PQL_SYSTEMS:
        spec = ExperimentSpec(
            protocol=protocol,
            clients_per_region=_scaled(8, scale),
            duration_s=6.0 * max(scale, 0.5),
            warmup_s=1.5 * max(scale, 0.5),
            cooldown_s=0.5,
            workload=workload,
            seed=seed,
        )
        result = run_experiment(spec)
        for table, latency in ((reads, result.read_latency),
                               (writes, result.write_latency)):
            table.add_row(
                label,
                latency["leader"]["p50"], latency["leader"]["p90"],
                latency["leader"]["p99"],
                latency["followers"]["p50"], latency["followers"]["p90"],
                latency["followers"]["p99"],
            )
    reads.notes.append("paper: PQL serves 90% of reads locally (~1 ms); "
                       "LL only at the leader; Raft/Raft* need 1 WAN RT")
    writes.notes.append("paper: PQL writes slightly higher (waits for lease "
                        "holders); others wait for the fastest majority")
    return reads, writes


# ---------------------------------------------------------------------------
# Figure 9c: peak throughput vs read percentage
# ---------------------------------------------------------------------------

def fig9c_peak_throughput(scale: float = 1.0, seed: int = 1) -> FigureTable:
    table = FigureTable(
        figure="Figure 9c",
        title="Peak throughput (ops/s) vs read percentage",
        columns=["system", "50% reads", "90% reads", "99% reads"],
    )
    read_fractions = (0.5, 0.9, 0.99)
    for label, protocol in PQL_SYSTEMS:
        cells: List[float] = []
        for read_fraction in read_fractions:
            spec = ExperimentSpec(
                protocol=protocol,
                clients_per_region=_scaled(60, scale),
                duration_s=5.0 * max(scale, 0.5),
                warmup_s=1.5 * max(scale, 0.5),
                cooldown_s=0.5,
                workload=WorkloadConfig(read_fraction=read_fraction,
                                        conflict_rate=0.05),
                seed=seed,
            )
            cells.append(run_experiment(spec).throughput_ops)
        table.add_row(label, *cells)
    table.notes.append("paper: Raft/Raft*/LL alike (leader CPU-bound); "
                       "Raft*-PQL 1.6x at 90% reads, 1.9x at 99%")
    return table


# ---------------------------------------------------------------------------
# Figure 9d: Raft*-PQL speedup over Raft* vs conflict rate
# ---------------------------------------------------------------------------

def fig9d_speedup(scale: float = 1.0, seed: int = 1,
                  conflict_rates: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
                  ) -> FigureTable:
    table = FigureTable(
        figure="Figure 9d",
        title="Throughput speedup of Raft*-PQL over Raft* vs conflict rate "
              "(90% reads)",
        columns=["conflict rate", "Raft*-PQL ops/s", "Raft* ops/s", "speedup"],
    )
    for conflict in conflict_rates:
        throughput: Dict[str, float] = {}
        for protocol in ("raftstar-pql", "raftstar"):
            spec = ExperimentSpec(
                protocol=protocol,
                clients_per_region=_scaled(40, scale),
                duration_s=5.0 * max(scale, 0.5),
                warmup_s=1.5 * max(scale, 0.5),
                cooldown_s=0.5,
                workload=WorkloadConfig(read_fraction=0.9, conflict_rate=conflict),
                seed=seed,
            )
            throughput[protocol] = run_experiment(spec).throughput_ops
        speedup = (throughput["raftstar-pql"] / throughput["raftstar"]
                   if throughput["raftstar"] else float("nan"))
        table.add_row(f"{int(conflict * 100)}%", throughput["raftstar-pql"],
                      throughput["raftstar"], round(speedup, 2))
    table.notes.append("paper: speedup grows as the conflict rate drops "
                       "(followers answer immediately instead of waiting "
                       "for conflicting writes)")
    return table


# ---------------------------------------------------------------------------
# Figure 10: Mencius
# ---------------------------------------------------------------------------

MENCIUS_SYSTEMS: Tuple[Tuple[str, str, dict], ...] = (
    ("Raft*-M-100%", "mencius", {"execution_mode": "ordered"}),
    ("Raft*-M-0%", "mencius", {"execution_mode": "commutative"}),
    ("Raft-Oregon", "raft", {"leader_site": "oregon"}),
    ("Raft*-Oregon", "raftstar", {"leader_site": "oregon"}),
    ("Raft-Seoul", "raft", {"leader_site": "seoul"}),
)


def _mencius_spec(protocol: str, extras: dict, clients: int, value_size: int,
                  duration_s: float, seed: int) -> ExperimentSpec:
    conflict = 1.0 if extras.get("execution_mode") == "ordered" else 0.0
    return ExperimentSpec(
        protocol=protocol,
        clients_per_region=clients,
        duration_s=duration_s,
        warmup_s=min(1.5, duration_s / 3),
        cooldown_s=0.5,
        workload=WorkloadConfig(read_fraction=0.0, conflict_rate=conflict,
                                value_size=value_size),
        seed=seed,
        **extras,
    )


def fig10_throughput(value_size: int, client_points: Tuple[int, ...],
                     scale: float = 1.0, seed: int = 1) -> FigureTable:
    figure = "Figure 10a" if value_size <= 64 else "Figure 10b"
    bound = "CPU-bound (8 B)" if value_size <= 64 else "network-bound (4 KB)"
    table = FigureTable(
        figure=figure,
        title=f"Throughput (ops/s) vs clients per region, {bound}",
        columns=["system"] + [f"{c} cl/region" for c in client_points],
    )
    for label, protocol, extras in MENCIUS_SYSTEMS:
        cells = []
        for clients in client_points:
            spec = _mencius_spec(protocol, extras, _scaled(clients, scale),
                                 value_size, 5.0 * max(scale, 0.5), seed)
            cells.append(run_experiment(spec).throughput_ops)
        table.add_row(label, *cells)
    if value_size <= 64:
        table.notes.append("paper: Mencius ~55K vs single-leader ~41K once "
                           "leader CPU saturates (load balanced over replicas)")
    else:
        table.notes.append("paper: Raft saturates the leader NIC; Mencius "
                           "~70% above Raft-Oregon using all replicas' NICs")
    return table


def fig10a_throughput_8b(scale: float = 1.0, seed: int = 1) -> FigureTable:
    return fig10_throughput(8, (10, 60, 120, 200), scale=scale, seed=seed)


def fig10b_throughput_4kb(scale: float = 1.0, seed: int = 1) -> FigureTable:
    return fig10_throughput(4096, (5, 15, 30, 60), scale=scale, seed=seed)


def fig10_latency(value_size: int, scale: float = 1.0, seed: int = 1) -> FigureTable:
    figure = "Figure 10c" if value_size <= 64 else "Figure 10d"
    table = FigureTable(
        figure=figure,
        title=f"Write latency, ms ({'8 B' if value_size <= 64 else '4 KB'}, "
              f"50 clients/region)",
        columns=["system", "leader p50", "leader p90",
                 "followers p50", "followers p90"],
    )
    for label, protocol, extras in MENCIUS_SYSTEMS:
        spec = _mencius_spec(protocol, extras, _scaled(10, scale), value_size,
                             6.0 * max(scale, 0.5), seed)
        result = run_experiment(spec)
        latency = result.write_latency
        table.add_row(
            label,
            latency["leader"]["p50"], latency["leader"]["p90"],
            latency["followers"]["p50"], latency["followers"]["p90"],
        )
    table.notes.append("'leader' = Oregon-region clients (Mencius has no "
                       "single leader); paper: Raft-Oregon's leader is "
                       "lowest (~79 ms); M-100% much higher (needs all "
                       "commit decisions); M-0% bounded by the farthest "
                       "replica's skips")
    return table


def fig10c_latency_8b(scale: float = 1.0, seed: int = 1) -> FigureTable:
    return fig10_latency(8, scale=scale, seed=seed)


def fig10d_latency_4kb(scale: float = 1.0, seed: int = 1) -> FigureTable:
    return fig10_latency(4096, scale=scale, seed=seed)


def mencius_pipeline(scale: float = 1.0, seed: int = 1,
                     depths: Tuple[int, ...] = (1, 2, 4, 8)) -> FigureTable:
    """Pipelined Mencius (beyond the paper): closed-loop throughput vs
    session depth over BOTH execution modes.  Mencius is leaderless —
    every replica owns a rotating share of the log — so a deep window
    fans in-flight commands out to every owner at once, and commutative
    execution re-orders non-conflicting commands between skips.  Same
    client fleet on every cell; only the per-session window differs."""
    depths = tuple(depths)
    base = min(depths)
    table = FigureTable(
        figure="Mencius-pipeline",
        title="Pipelined Mencius: throughput (ops/s) vs session depth, "
              "both execution modes, 3 sites, 50% reads",
        columns=["system", *[f"depth {d}" for d in depths],
                 f"d{max(depths)}/d{base}", "linearizable"],
    )
    for label, mode in (("Mencius-100% (ordered)", "ordered"),
                        ("Mencius-0% (commutative)", "commutative")):
        cells: Dict[int, float] = {}
        clean = True
        for depth in depths:
            result = run_experiment(pipeline_spec(
                scale, seed, "mencius", depth).with_(execution_mode=mode))
            cells[depth] = result.throughput_ops
            clean = clean and not result.violations
        speedup = (cells[max(depths)] / cells[base] if cells[base]
                   else float("nan"))
        table.add_row(label, *[cells[d] for d in depths],
                      round(speedup, 2), "yes" if clean else "NO")
    table.notes.append("'linearizable' = full HistoryChecker over "
                       "client-observed events in both modes — the "
                       "commutative mode may re-order between skip "
                       "announcements but must not show it to clients")
    table.notes.append("the depth speedup is the Marandi et al. claim "
                       "replayed on a leaderless log: in-flight requests, "
                       "not client count, set consensus throughput")
    return table


# ---------------------------------------------------------------------------
# Pipeline: session depth sweep + open-loop latency-vs-offered-load curve
# (beyond the paper — its figures are closed-loop, so measured throughput is
# as much a property of the client fleet as of the protocol; Marandi et al.
# show in-flight client requests are the dominant Paxos throughput knob)
# ---------------------------------------------------------------------------

PIPELINE_SYSTEMS: Tuple[Tuple[str, str, Consistency], ...] = (
    ("Raft", "raft", Consistency.DEFAULT),
    ("MultiPaxos", "multipaxos", Consistency.DEFAULT),
    ("Raft*-PQL (lease reads)", "raftstar-pql", Consistency.LEASE_LOCAL),
)


def pipeline_spec(scale: float, seed: int, protocol: str, depth: int,
                  read_consistency: Consistency = Consistency.DEFAULT,
                  offered_load: Optional[float] = None,
                  clients_per_region: int = 3) -> ExperimentSpec:
    """One pipelined trial on the tight-majority 3-site deployment
    (Oregon/Ohio/Canada, Oregon leads): few clients, `depth`-deep
    sessions, full history check (client events + lease freshness)."""
    return ExperimentSpec(
        protocol=protocol,
        leader_site="oregon",
        topology=ec2_three_regions(),
        clients_per_region=_scaled(clients_per_region, scale),
        duration_s=6.0 * max(scale, 0.5),
        warmup_s=1.5 * max(scale, 0.5),
        cooldown_s=0.5,
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.05),
        seed=seed,
        check_history=True,
        full_check=True,
        pipeline_depth=depth,
        offered_load=offered_load,
        read_consistency=read_consistency,
    )


def pipeline_depth_sweep(scale: float = 1.0, seed: int = 1,
                         depths: Tuple[int, ...] = (1, 2, 4, 8)) -> FigureTable:
    """Closed-loop throughput vs session pipeline depth at EQUAL client
    count.  Depth 1 is the paper's client; deeper sessions keep more
    commands in flight per client, so the same small fleet drives the
    leader to saturation — the claim (after Marandi et al.) that in-flight
    requests, not client count, set consensus throughput."""
    depths = tuple(depths)
    base = min(depths)
    table = FigureTable(
        figure="Pipeline",
        title="Closed-loop throughput (ops/s) vs session pipeline depth, "
              "3 sites, equal client count, 50% reads",
        columns=["system", *[f"depth {d}" for d in depths],
                 f"d{max(depths)}/d{base}", "linearizable"],
    )
    for label, protocol, consistency in PIPELINE_SYSTEMS:
        cells: Dict[int, float] = {}
        clean = True
        for depth in depths:
            result = run_experiment(pipeline_spec(
                scale, seed, protocol, depth, read_consistency=consistency))
            cells[depth] = result.throughput_ops
            clean = clean and not result.violations
        speedup = (cells[max(depths)] / cells[base] if cells[base]
                   else float("nan"))
        table.add_row(label, *[cells[d] for d in depths],
                      round(speedup, 2), "yes" if clean else "NO")
    table.notes.append("equal client fleet on every cell — only the "
                       "per-session window differs; depth 1 is the "
                       "pre-session closed-loop client")
    table.notes.append("'linearizable' = full HistoryChecker (prefix "
                       "agreement + monotonic reads + lease-read "
                       "freshness over client-observed events); the PQL "
                       "row serves LEASE_LOCAL reads from leases while "
                       "pipelined")
    return table


def pipeline_open_loop(scale: float = 1.0, seed: int = 1,
                       loads: Tuple[float, ...] = (200, 400, 800, 1600),
                       depth: int = 8,
                       protocols: Tuple[Tuple[str, str], ...] = (
                           ("Raft", "raft"), ("MultiPaxos", "multipaxos")),
                       obs: bool = False) -> FigureTable:
    """The latency-vs-offered-load curve: Poisson arrivals at a target
    aggregate rate, latency measured from submission (queueing included).
    Offered loads are NOT scaled by `scale` — service capacity does not
    scale either, and the knee is the point of the figure.  With `obs` the
    runs collect request spans and each protocol's highest-load p99 request
    gets a one-line latency budget in the notes (see the `tail` figure for
    the full breakdown)."""
    table = FigureTable(
        figure="Pipeline-openloop",
        title=f"Open-loop latency vs offered load (depth-{depth} sessions, "
              "3 sites, 50% reads; latency from submission)",
        columns=["offered ops/s",
                 *[f"{label} {col}" for label, _ in protocols
                   for col in ("ops/s", "mean ms", "p99 ms", "p999 ms")],
                 "linearizable"],
    )
    curves: Dict[str, List[Tuple[float, float, float]]] = {}
    budgets: Dict[str, Dict[str, Dict[str, object]]] = {}
    for load in loads:
        cells: List[float] = []
        clean = True
        for label, protocol in protocols:
            result = run_experiment(pipeline_spec(
                scale, seed, protocol, depth, offered_load=float(load),
                clients_per_region=4).with_(obs=obs))
            achieved = result.completion_throughput_ops
            mean_ms = result.overall_latency["mean"]
            p99_ms = result.overall_latency["p99"]
            p999_ms = result.overall_latency["p999"]
            cells.extend([achieved, mean_ms, p99_ms, p999_ms])
            curves.setdefault(label, []).append((load, achieved, mean_ms))
            clean = clean and not result.violations
            if result.obs is not None:
                budgets[label] = result.obs.tail_budget(pcts=(99.0,))
        table.add_row(f"{load:g}", *cells, "yes" if clean else "NO")
    for label, points in curves.items():
        sat = max(points, key=lambda p: p[1])
        table.notes.append(
            f"{label}: saturates near {sat[1]:.0f} ops/s — past the knee "
            f"the queue grows and mean latency leaves the service-time "
            f"floor ({points[0][2]:.0f} ms at {points[0][0]:g} offered -> "
            f"{points[-1][2]:.0f} ms at {points[-1][0]:g})")
    table.notes.append("open-loop arrivals do not slow down with the "
                       "server: offered > capacity shows up as queueing "
                       "delay, the knee closed-loop figures cannot show")
    for label, report in budgets.items():
        entry = report.get("p99")
        if not entry:
            continue
        bucket, us = max(entry["budget_us"].items(), key=lambda kv: kv[1])
        table.notes.append(
            f"{label} p99 budget at {loads[-1]:g} offered (--obs): "
            f"{bucket} {us / 1000:.0f} ms of "
            f"{entry['latency_us'] / 1000:.0f} ms — run the `tail` figure "
            f"for the phase-by-phase breakdown")
    return table


def pipeline_figures(scale: float = 1.0, seed: int = 1,
                     depths: Tuple[int, ...] = (1, 2, 4, 8),
                     loads: Tuple[float, ...] = (200, 400, 800, 1600),
                     obs: bool = False) -> str:
    """The full `pipeline` CLI figure: depth sweep + open-loop curve."""
    return (pipeline_depth_sweep(scale, seed, depths=depths).render()
            + "\n\n"
            + pipeline_open_loop(scale, seed, loads=loads, obs=obs).render())


# ---------------------------------------------------------------------------
# Tail: where does the tail live?  One open-loop run past the saturation
# knee with full observability on (repro.obs) — the latency budget the
# open-loop curve's p99 column cannot show.
# ---------------------------------------------------------------------------

#: Gauge families shown under the tail figure, headline (peak) series each.
_TAIL_GAUGE_FAMILIES: Tuple[str, ...] = (
    "session_submit_queue", "session_in_flight", "cpu_backlog_us",
    "nic_backlog_us", "mux_buffered", "commit_lag", "lock_table",
)


def _headline_gauges(gauges: Dict[str, List[Tuple[int, float]]],
                     families: Tuple[str, ...] = _TAIL_GAUGE_FAMILIES,
                     ) -> List[str]:
    """Pick the peak series of each gauge family (a family covers all
    per-host/per-replica series, e.g. `cpu_backlog_us.*`)."""
    picked: List[str] = []
    for family in families:
        candidates = [name for name in gauges
                      if name == family or name.startswith(f"{family}.")]
        if not candidates:
            continue
        picked.append(max(candidates, key=lambda name: max(
            (value for _, value in gauges[name]), default=0.0)))
    return picked


def tail_figure(scale: float = 1.0, seed: int = 1,
                offered_load: float = 1600.0, depth: int = 8,
                protocol: str = "raft",
                metrics_out: Optional[str] = None) -> str:
    """The `tail` CLI figure: one open-loop run past the knee with spans,
    gauges and the sim profiler all on.  Reports the exemplar request at
    p50/p99/p999 of the end-to-end latency distribution broken down phase
    by phase (the phases sum to the latency exactly — interval
    attribution), the queue gauges the waiting happened in, and the
    profiler's ranked wall-clock report.  `metrics_out` additionally dumps
    the raw telemetry (records/spans/gauges/profile) as JSONL."""
    spec = pipeline_spec(scale, seed, protocol, depth,
                         offered_load=float(offered_load),
                         clients_per_region=4).with_(obs=True)
    result = run_experiment(spec)
    obs = result.obs
    recon = obs.reconstruct()
    spans = recon.spans()
    budget = tail_budget(spans)
    if not budget:
        message = (f"Tail: no complete spans reconstructed "
                   f"({len(recon.incomplete())} in flight at run end) — "
                   f"run longer (--scale) or raise the span ring capacity")
        if metrics_out:
            lines = obs.dump(metrics_out, meta={"figure": "tail"})
            message += f"\ntelemetry: {lines} JSONL lines -> {metrics_out}"
        return message
    pct_names = list(budget)
    table = FigureTable(
        figure="Tail",
        title=f"Phase-by-phase latency budget (ms), {protocol} at "
              f"{offered_load:g} offered ops/s past the knee, "
              f"depth-{depth} sessions, 3 sites",
        columns=["phase", *pct_names, "the interval covers"],
    )
    seen = set()
    for entry in budget.values():
        seen.update(entry["phases_us"])
    for phase in PHASE_LABELS:
        if phase not in seen:
            continue
        cells = [
            ("-" if phase not in budget[p]["phases_us"]
             else f"{budget[p]['phases_us'][phase] / 1000:.1f}")
            for p in pct_names
        ]
        table.add_row(phase, *cells, PHASE_LABELS[phase])
    table.add_row(
        "end-to-end",
        *[f"{budget[p]['latency_us'] / 1000:.1f}" for p in pct_names],
        "the phases above sum to this (interval attribution)")
    for p in pct_names:
        entry = budget[p]
        phase_sum = sum(entry["phases_us"].values())
        drift = (abs(phase_sum - entry["latency_us"])
                 / max(entry["latency_us"], 1))
        bucket, us = max(entry["budget_us"].items(), key=lambda kv: kv[1])
        table.notes.append(
            f"{p} exemplar {entry['trace']} "
            f"({entry['attempts']} attempt(s)): {bucket} dominates with "
            f"{us / 1000:.1f} of {entry['latency_us'] / 1000:.1f} ms "
            f"({us / max(entry['latency_us'], 1) * 100:.0f}%); "
            f"phase-sum drift {drift * 100:.2f}%")
    table.notes.append(
        f"{len(spans)} complete spans "
        f"({len(recon.incomplete())} still in flight at run end, "
        f"{obs.span_log.dropped} phase records ring-evicted); achieved "
        f"{result.completion_throughput_ops:.0f} ops/s, measured latency "
        f"mean {result.overall_latency['mean']:.0f} / "
        f"p99 {result.overall_latency['p99']:.0f} / "
        f"p999 {result.overall_latency['p999']:.0f} ms")
    parts = [table.render()]
    headline = _headline_gauges(obs.metrics.gauges)
    if headline:
        parts.append("queue gauges (bucket maxima over the run; one line "
                     "per family's peak series):\n"
                     + render_timelines(obs.metrics.gauges, names=headline))
    if obs.profiler is not None:
        parts.append(obs.profiler.render())
    if metrics_out:
        lines = obs.dump(metrics_out, meta={
            "figure": "tail", "protocol": protocol, "scale": scale,
            "seed": seed, "offered_load": offered_load, "depth": depth,
            "achieved_ops": result.completion_throughput_ops,
        })
        parts.append(f"telemetry: {lines} JSONL lines -> {metrics_out}")
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Sharding: throughput vs shard count (beyond the paper — the production
# answer to the Figure 10b single-leader ceiling)
# ---------------------------------------------------------------------------

def _shard_column(count: int) -> str:
    return f"{count} shard" + ("s" if count != 1 else "")


def sharding_scaling(scale: float = 1.0, seed: int = 1,
                     shard_counts: Tuple[int, ...] = (1, 2, 4, 8),
                     placements: Tuple[str, ...] = ("spread", "colocated"),
                     protocol: str = "raft") -> FigureTable:
    """Aggregate committed throughput vs shard count, per leader placement.

    Fixed offered load (clients per region constant), network-bound 4 KB
    writes over a uniform keyspace.  One shard is the paper's deployment:
    the leader's NIC is the ceiling.  Sharding multiplies leaders; `spread`
    puts them in different regions so every regional uplink is spent, while
    `colocated` funnels every group's replication through one region's
    uplink — the Figure 10b bottleneck again, one level up.
    """
    workload = WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                              value_size=4096)
    table = FigureTable(
        figure="Sharding",
        title=f"Aggregate throughput (ops/s) vs shard count, {protocol}, "
              "4 KB writes, uniform keys",
        columns=["placement", *map(_shard_column, shard_counts), "linearizable"],
    )
    for placement in placements:
        cells: List[float] = []
        clean = True
        for count in shard_counts:
            spec = ShardedSpec(
                protocol=protocol,
                num_shards=count,
                placement=placement,
                clients_per_region=_scaled(60, scale),
                duration_s=6.0 * max(scale, 0.5),
                warmup_s=1.8 * max(scale, 0.5),
                cooldown_s=0.5,
                workload=workload,
                seed=seed,
                check_history=True,
            )
            result = run_sharded_experiment(spec)
            clean = clean and result.linearizable and result.filtered == 0
            cells.append(result.throughput_ops)
        table.add_row(placement, *cells, "yes" if clean else "NO")
    table.notes.append("per-shard HistoryChecker: prefix agreement, "
                       "monotonic reads, lease freshness — 'linearizable' "
                       "covers every shard of every point")
    table.notes.append("colocated pins every shard leader in one region; "
                       "its shared uplink caps aggregate throughput where "
                       "spread keeps scaling until the offered load is served")
    return table


# ---------------------------------------------------------------------------
# Coalesce: host-multiplexed groups with cross-group message coalescing
# (beyond the paper — the multi-raft answer to the Figure 9c/10a
# per-message CPU ceiling: amortize the headers across colocated groups)
# ---------------------------------------------------------------------------

def coalesce_spec(scale: float = 1.0, seed: int = 1, num_shards: int = 8,
                  coalesce: bool = True, protocol: str = "raft") -> ShardedSpec:
    """One host-multiplexed trial: every site runs ONE machine hosting all
    `num_shards` group replicas, leaders colocated in one region, 8 B
    CPU-bound writes.  The offered load is fixed (not scaled): the figure
    measures the saturated leader host, where per-message header work is
    the bottleneck that coalescing amortizes — `scale` shortens the run.
    """
    return ShardedSpec(
        protocol=protocol,
        num_shards=num_shards,
        placement="colocated",
        clients_per_region=60,
        workload=WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                                value_size=8),
        duration_s=6.0 * max(scale, 0.5),
        warmup_s=1.8 * max(scale, 0.5),
        cooldown_s=0.5,
        seed=seed,
        check_history=True,
        site_uplink_factor=None,
        hosts_per_site=1,
        coalesce=coalesce,
        coalesce_flush_interval=int(ms(2)),
    )


def coalesce_figure(scale: float = 1.0, seed: int = 1,
                    shard_counts: Tuple[int, ...] = (2, 4, 8),
                    modes: Tuple[str, ...] = ("off", "on"),
                    protocol: str = "raft") -> FigureTable:
    """Throughput with and without cross-group coalescing, vs shard count,
    at colocated placement on one shared host per site.

    Without coalescing, eight colocated leaders each pay `per_message` CPU
    (and 48 header bytes) for every append/reply/heartbeat on the shared
    machine.  With coalescing, all messages to the same destination host
    ride one envelope per flush tick and the leaders' empty heartbeats
    merge into one host beacon — the TiKV/Cockroach store-level batching.
    """
    table = FigureTable(
        figure="Coalesce",
        title=f"Host-multiplexed throughput (ops/s) vs shard count, "
              f"{protocol}, colocated leaders, 1 host/site, 8 B writes",
        columns=["coalescing", *map(_shard_column, shard_counts),
                 "msgs/envelope", "linearizable"],
    )
    peak = max(shard_counts)
    results: Dict[str, Dict[int, object]] = {}
    for mode in modes:
        cells: List[float] = []
        clean = True
        amortization = 0.0
        results[mode] = {}
        for count in shard_counts:
            result = run_sharded_experiment(coalesce_spec(
                scale, seed, num_shards=count, coalesce=(mode == "on"),
                protocol=protocol))
            results[mode][count] = result
            clean = clean and result.linearizable and result.filtered == 0
            cells.append(result.throughput_ops)
            if count == peak:
                amortization = result.messages_per_envelope
        table.add_row(mode, *cells, round(amortization, 2),
                      "yes" if clean else "NO")
    if "on" in results and "off" in results:
        on, off = results["on"][peak], results["off"][peak]
        speedup = (on.throughput_ops / off.throughput_ops
                   if off.throughput_ops else float("nan"))
        counters = on.counters
        table.notes.append(
            f"at {peak} shards: coalescing {speedup:.2f}x throughput; "
            f"envelopes={counters.get('coalesce_envelopes', 0)} carrying "
            f"messages={counters.get('coalesce_messages', 0)} "
            f"(+beacon beats={counters.get('coalesce_beacon_beats', 0)} "
            f"merged into beacons={counters.get('coalesce_beacons', 0)}) — "
            f"{on.messages_per_envelope:.1f} messages per per-message "
            f"header paid")
    table.notes.append("same machines, same load, same protocol on both "
                       "rows; only the transport differs — the delta is "
                       "per-message CPU-header amortization (ONE "
                       "NodeCosts.per_message per envelope; wire bytes "
                       "keep their per-message framing)")
    table.notes.append("offered load is fixed at 60 clients/region: the "
                       "figure requires a saturated leader host, so "
                       "--scale shortens the run instead of shedding load")
    return table


# ---------------------------------------------------------------------------
# Reshard: a live N -> M split under load (beyond the paper — the shard
# layer's answer to reconfiguration, where Howard & Mortier locate the hard
# correctness/performance tradeoffs)
# ---------------------------------------------------------------------------

def reshard_spec(scale: float = 1.0, seed: int = 1,
                 shards_from: int = 2, shards_to: int = 4,
                 reshard_at_s: Optional[float] = None,
                 protocol: str = "raft") -> ReshardSpec:
    """The reshard figure's trial: network-bound 4 KB writes saturating
    `shards_from` groups, split to `shards_to` mid-run under load."""
    duration = 10.0 * max(scale, 0.5)
    return ReshardSpec(
        protocol=protocol,
        num_shards=shards_from,
        placement="spread",
        clients_per_region=_scaled(60, scale),
        workload=WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                                value_size=4096),
        duration_s=duration,
        warmup_s=1.8 * max(scale, 0.5),
        cooldown_s=0.5,
        seed=seed,
        check_history=True,
        reshard_to=shards_to,
        reshard_at_s=(reshard_at_s if reshard_at_s is not None
                      else 0.4 * duration),
    )


def reshard_table(result: ReshardResult) -> FigureTable:
    """Render a `ReshardResult` as the reshard throughput-timeline figure."""
    spec = result.spec
    table = FigureTable(
        figure="Reshard",
        title=(f"Live reshard {spec.num_shards}->{spec.reshard_to} under "
               f"load ({spec.protocol}, 4 KB writes): throughput timeline"),
        columns=["t (s)", "ops/s", "phase"],
    )
    done_s = result.migration_completed_s or float("inf")
    for start, ops in result.timeline:
        if start < spec.reshard_at_s:
            phase = f"pre-split ({spec.num_shards} shards)"
        elif start < done_s:
            phase = "migrating"
        else:
            phase = f"post-split ({spec.reshard_to} shards)"
        table.add_row(f"{start:.1f}", ops, phase)
    table.notes.append(
        f"steady-state throughput: {result.pre_throughput:.1f} ops/s before "
        f"the split, {result.post_throughput:.1f} after; migration of "
        f"{result.moves} key ranges took {result.migration_ms:.0f} ms")
    table.notes.append(
        f"ack accounting: {result.completed} completions, "
        f"{result.acks_lost} lost, {result.acks_duplicated} duplicated, "
        f"{result.duplicate_executions} writes executed twice (store "
        f"versions vs distinct acked PUTs); {result.redirects} redirects "
        f"({result.capped_redirects} hit the hop cap), {result.filtered} "
        f"boundary commands bounced at apply")
    table.notes.append(
        "per-shard HistoryChecker across the epoch change: "
        + ("all linearizable" if result.linearizable
           else f"VIOLATIONS {result.violations}"))
    return table


def reshard_timeline(scale: float = 1.0, seed: int = 1,
                     shards_from: int = 2, shards_to: int = 4,
                     reshard_at_s: Optional[float] = None) -> FigureTable:
    return reshard_table(run_reshard_experiment(
        reshard_spec(scale, seed, shards_from=shards_from,
                     shards_to=shards_to, reshard_at_s=reshard_at_s)))


# ---------------------------------------------------------------------------
# Membership: live host replacement through logged config changes (beyond
# the paper — voter sets as versioned replica state, joint consensus for
# the Raft family vs α-bounded reconfiguration for the Paxos family,
# driven through the same harness so the two styles are comparable)
# ---------------------------------------------------------------------------

#: Protocols whose replicas reconfigure by the α-window rule; everything
#: else voter-based uses joint consensus (the cluster validates for real).
ALPHA_FAMILY = ("multipaxos", "paxos-pql")


def membership_spec(scale: float = 1.0, seed: int = 1,
                    protocol: str = "raft", num_shards: int = 2,
                    replace_at_s: Optional[float] = None,
                    alpha: int = 0) -> MembershipSpec:
    """The membership figure's trial: open-ended load over `num_shards`
    groups on one machine per site; one machine dies permanently at
    `replace_at_s` and is replaced live.  The run is long relative to the
    replacement so the post window measures steady state, not the dip."""
    duration = 12.0 * max(scale, 0.5)
    return MembershipSpec(
        protocol=protocol,
        num_shards=num_shards,
        placement="spread",
        clients_per_region=_scaled(30, scale),
        workload=WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                                value_size=1024),
        duration_s=duration,
        warmup_s=1.8 * max(scale, 0.5),
        cooldown_s=0.5,
        seed=seed,
        check_history=True,
        # A replaced machine never answers: the retry timeout is the
        # client-visible failover knob, so the figure uses a schedule
        # sized to the replacement, not the legacy 5 s constant.
        retry=RetryPolicy(retry_timeout=ms(800), retry_cap=sec(4)),
        replace_at_s=(replace_at_s if replace_at_s is not None
                      else 0.3 * duration),
        alpha=alpha,
    )


def _membership_stall_s(result: MembershipResult) -> float:
    """Unavailability proxy: total bucket time inside the replacement
    window where throughput fell below half the pre-replacement rate."""
    threshold = 0.5 * result.pre_throughput
    done_s = result.replace_completed_s or result.spec.duration_s
    stall = 0.0
    for start, ops, _p99 in result.timeline:
        if result.replace_started_s <= start < done_s and ops < threshold:
            stall += 0.5
    return stall


def membership_table(result: MembershipResult) -> FigureTable:
    """Render a `MembershipResult` as a throughput/p99 timeline figure."""
    spec = result.spec
    style = ("joint consensus (quorums over Cold AND Cnew while joint)"
             if result.kind == "joint"
             else f"α-bounded single-decree (α="
                  f"{spec.alpha or DEFAULT_ALPHA})")
    table = FigureTable(
        figure="Membership",
        title=(f"Live host replacement under load ({spec.protocol}, "
               f"{result.kind}): throughput/p99 timeline"),
        columns=["t (s)", "ops/s", "p99 (ms)", "phase"],
    )
    done_s = result.replace_completed_s or float("inf")
    for start, ops, p99 in result.timeline:
        if start < spec.replace_at_s:
            phase = "pre-replacement"
        elif start < done_s:
            phase = "replacing"
        else:
            phase = "post-replacement"
        p99_cell = f"{p99:.1f}" if p99 == p99 else "-"
        table.add_row(f"{start:.1f}", ops, p99_cell, phase)
    table.notes.append(
        f"reconfiguration style: {style}; {result.replaced_host} died at "
        f"t={result.replace_started_s:.1f}s, replaced by "
        f"{result.replacement_host}")
    table.notes.append(
        f"config_changes={result.config_changes} committed transitions "
        f"across {result.groups_changed} hosted groups; replacement took "
        f"{result.replacement_ms:.0f} ms, throughput stalled (<50% of "
        f"pre) for {_membership_stall_s(result):.1f} s")
    table.notes.append(
        f"steady-state throughput: {result.pre_throughput:.1f} ops/s "
        f"before the kill, {result.post_throughput:.1f} after the splice "
        f"({result.throughput_ratio:.2f}x)")
    table.notes.append(
        f"ack accounting: {result.completed} completions, "
        f"{result.acks_lost} lost, {result.acks_duplicated} duplicated, "
        f"{result.duplicate_executions} writes executed twice; "
        f"{result.redirects} redirects ({result.capped_redirects} hit the "
        f"hop cap), {result.filtered} commands bounced at apply")
    table.notes.append(
        "per-shard HistoryChecker across the config change: "
        + ("all linearizable" if result.linearizable
           else f"VIOLATIONS {result.violations}"))
    return table


def membership_contrast_table(joint: MembershipResult,
                              alpha: MembershipResult) -> FigureTable:
    """The joint-vs-α contrast: the same host replacement, both styles."""
    table = FigureTable(
        figure="Membership-contrast",
        title="Joint consensus vs α-bounded reconfiguration: one machine "
              "replaced live, same harness, both styles",
        columns=["style", "protocol", "replacement (ms)", "stall (s)",
                 "post/pre tput", "sim events", "safe"],
    )
    for result in (joint, alpha):
        safe = (result.replacement_completed and result.acks_lost == 0
                and result.acks_duplicated == 0
                and result.duplicate_executions == 0 and result.linearizable)
        table.add_row(
            result.kind, result.spec.protocol,
            f"{result.replacement_ms:.0f}",
            f"{_membership_stall_s(result):.1f}",
            round(result.throughput_ratio, 2),
            result.events_processed,
            "yes" if safe else "NO")
    table.notes.append(
        "joint logs TWO entries per group (joint, then final) and holds "
        "quorums over both configs in between — no unavailability window "
        "but every commit pays the wider intersection while joint")
    table.notes.append(
        "α-bounded logs ONE config entry, but slots within α of the "
        "decision stay under the OLD voters — including the dead "
        "machine's replica, so those slots pay the next-nearest quorum "
        "until the window drains (α slots per group at the run's rate)")
    table.notes.append(
        "'sim events' is the whole-run event count under identical load "
        "and duration — the message-cost proxy for the styles' overhead")
    return table


def membership_timeline(scale: float = 1.0, seed: int = 1,
                        protocol: str = "raft",
                        replace_at_s: Optional[float] = None,
                        alpha: int = 0) -> str:
    """The full `membership` CLI figure: the requested protocol's
    replacement timeline, the opposite family's timeline, and the
    joint-vs-α contrast over the pair."""
    first = run_membership_experiment(membership_spec(
        scale, seed, protocol=protocol, replace_at_s=replace_at_s,
        alpha=alpha))
    other = "multipaxos" if first.kind == "joint" else "raft"
    second = run_membership_experiment(membership_spec(
        scale, seed, protocol=other, replace_at_s=replace_at_s,
        alpha=alpha))
    joint, bounded = ((first, second) if first.kind == "joint"
                      else (second, first))
    return "\n\n".join([membership_table(first).render(),
                        membership_table(second).render(),
                        membership_contrast_table(joint, bounded).render()])


# ---------------------------------------------------------------------------
# Cross-shard transactions: committed throughput vs shard count and
# cross-shard ratio, plus the same trial under a nemesis fault schedule
# (beyond the paper — 2PC composed over the protocol-agnostic groups)
# ---------------------------------------------------------------------------


def txn_spec(scale: float = 1.0, seed: int = 1, num_shards: int = 4,
             cross_shard_ratio: float = 0.1, txn_size: int = 2,
             protocol: str = "raft") -> TxnSpec:
    """One transactional trial: `txn_size`-op transactions, 50 % reads,
    64 B values, a cross-shard 2PC with probability `cross_shard_ratio`."""
    return TxnSpec(
        protocol=protocol,
        num_shards=num_shards,
        placement="spread",
        clients_per_region=_scaled(20, scale),
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                                value_size=64, records=10_000),
        duration_s=6.0 * max(scale, 0.5),
        warmup_s=1.5 * max(scale, 0.5),
        cooldown_s=0.5,
        seed=seed,
        check_history=True,
        txn_size=txn_size,
        cross_shard_ratio=cross_shard_ratio,
    )


def _txn_safety(result: TxnResult) -> str:
    if result.safe:
        return "yes"
    return (f"NO (lost={result.acks_lost} dup={result.acks_duplicated} "
            f"re-exec={result.duplicate_executions} "
            f"ser={len(result.serializability_violations)})")


def txn_scaling(scale: float = 1.0, seed: int = 1,
                shard_counts: Tuple[int, ...] = (1, 2, 4),
                cross_ratios: Tuple[float, ...] = (0.0, 0.1, 0.5),
                protocol: str = "raft") -> FigureTable:
    """Committed transactional throughput (ops/s = txns/s x txn_size) vs
    shard count, swept over the cross-shard ratio.  At 0 % every
    transaction takes the single-command fast path — one atomic log entry
    in the owning group — so the row tracks plain sharded throughput; the
    50 % row pays two WAN round trips (prepare, commit) plus the logged
    decision for half its transactions."""
    table = FigureTable(
        figure="Txn",
        title=f"Transactional throughput (ops/s) vs shard count, {protocol}, "
              "2-op txns, 50% reads, 64 B values",
        columns=["cross-shard", *map(_shard_column, shard_counts),
                 "strict-serializable + zero lost/dup acks"],
    )
    for ratio in cross_ratios:
        cells: List[float] = []
        clean = "yes"
        for count in shard_counts:
            result = run_txn_experiment(txn_spec(
                scale, seed, num_shards=count, cross_shard_ratio=ratio,
                protocol=protocol))
            cells.append(result.ops_throughput)
            if not result.safe:
                clean = _txn_safety(result)
        table.add_row(f"{int(ratio * 100)}%", *cells, clean)
    table.notes.append("0% cross-shard = single-command fast path (one "
                       "atomic log entry per txn); 2PC prepares lock keys "
                       "wait-die, commits replicate the decision in the "
                       "home shard before phase 2")
    table.notes.append("'strict-serializable' = Elle-style cycle check over "
                       "wr/ww/rw/real-time edges against the stores' "
                       "per-key install orders, plus ack accounting")
    return table


def txn_fault_nemesis(cluster, seed: int = 1) -> Nemesis:
    """The figure's fault schedule: a shard leader killed mid-prepare
    traffic, the busiest coordinator killed mid-commit traffic, and a
    leader partitioned later — recovery must replay the decision log."""
    duration = cluster.spec.duration_s
    nemesis = Nemesis(cluster, seed=seed)
    nemesis.leader_kill_at(0.3 * duration)
    nemesis.coordinator_kill_at(0.45 * duration, 0)
    nemesis.leader_partition_at(0.6 * duration)
    # Machine-granular: a coordinator host (with its control replica)
    # stays dark past lease expiry, so a peer MUST fence and sweep it —
    # the figure's "coordinator failovers" row counts these takeovers.
    nemesis.coordinator_host_kill_at(0.7 * duration, role="txn")
    return nemesis


def txn_faults(scale: float = 1.0, seed: int = 1, num_shards: int = 4,
               cross_shard_ratio: float = 0.5,
               protocol: str = "raft") -> Tuple[FigureTable, TxnResult]:
    """The 50 %-cross-shard trial re-run under the nemesis schedule."""
    spec = txn_spec(scale, seed, num_shards=num_shards,
                    cross_shard_ratio=cross_shard_ratio, protocol=protocol)
    holder: Dict[str, Nemesis] = {}

    def install(cluster) -> None:
        holder["nemesis"] = txn_fault_nemesis(cluster, seed=seed)

    result = run_txn_experiment(spec, nemesis=install)
    nemesis = holder["nemesis"]
    table = FigureTable(
        figure="Txn-faults",
        title=f"{int(cross_shard_ratio * 100)}% cross-shard transactions "
              f"under faults ({protocol}, {num_shards} shards): leader kill "
              "mid-prepare, coordinator kill mid-commit, leader partition, "
              "coordinator HOST kill (failover to a standby)",
        columns=["metric", "value"],
    )
    table.add_row("committed txns", result.committed_total)
    table.add_row("txn throughput (txn/s)", result.txn_throughput)
    table.add_row("2PC commits / attempt aborts / waits",
                  f"{result.commits_2pc} / {result.attempt_aborts} / "
                  f"{result.waits}")
    table.add_row("coordinator recoveries", result.recoveries)
    table.add_row("coordinator failovers (host kill)", result.failovers)
    table.add_row("acks lost / duplicated", f"{result.acks_lost} / "
                                            f"{result.acks_duplicated}")
    table.add_row("acked writes re-executed", result.duplicate_executions)
    table.add_row("strict-serializability violations",
                  len(result.serializability_violations))
    table.add_row("prepared locks left (in-flight only)", result.locks_left)
    for at_s, what in nemesis.log:
        table.notes.append(f"t={at_s:.2f}s {what}")
    return table, result


def _host_kill_takeover_ms(nemesis: Nemesis, takeovers) -> float:
    """Wall time from the schedule's (only) host kill to the first role
    takeover that follows it, in milliseconds."""
    kills = [at_s for at_s, what in nemesis.log
             if what.startswith("host_kill: crashed")]
    if not kills:
        return float("nan")
    after = [at for at, _role in takeovers if at / 1e6 >= kills[0]]
    if not after:
        return float("nan")
    return min(after) / 1e3 - kills[0] * 1e3


def _txn_failover_trial(scale: float, seed: int, protocol: str):
    """One transactional run whose busiest-site coordinator HOST dies with
    2PC in flight; returns (failover ms, result, nemesis)."""
    spec = txn_spec(scale, seed, num_shards=2, cross_shard_ratio=0.6,
                    protocol=protocol)
    cluster = TxnCluster(spec)
    nemesis = Nemesis(cluster, seed=seed, host_down_s=0.4 * spec.duration_s)
    nemesis.coordinator_host_kill_at(0.45 * spec.duration_s, role="txn")
    cluster.nemesis = nemesis
    result = cluster.run()
    latency_ms = _host_kill_takeover_ms(
        nemesis, [t for c in cluster.coordinators for t in c.takeovers])
    return latency_ms, result, nemesis


def _reshard_failover_trial(scale: float, seed: int, protocol: str):
    """One live 2->4 reshard whose lease-holding driver's host dies
    mid-plan (donor leaders are crashed first so the plan is still in
    flight); returns (failover ms, result, nemesis)."""
    spec = reshard_spec(scale, seed, protocol=protocol)
    spec.duration_s += 4.0  # room to finish the stretched migration
    holder: Dict[str, object] = {}

    def install(cluster) -> None:
        nemesis = Nemesis(cluster, seed=seed, leader_down_s=1.0,
                          host_down_s=0.35 * spec.duration_s)
        nemesis.leader_kill_at(spec.reshard_at_s + 0.1, shard=0)
        nemesis.leader_kill_at(spec.reshard_at_s + 0.1, shard=1)
        nemesis.coordinator_host_kill_at(spec.reshard_at_s + 1.6,
                                         role="reshard")
        cluster.nemesis = nemesis
        holder["cluster"] = cluster
        holder["nemesis"] = nemesis

    result = run_reshard_experiment(spec, nemesis=install)
    plane = holder["cluster"].coordinator
    latency_ms = _host_kill_takeover_ms(
        holder["nemesis"],
        [t for c in plane.coordinators for t in c.takeovers])
    return latency_ms, result, holder["nemesis"]


def coordinator_failover(scale: float = 1.0,
                         seeds: Tuple[int, ...] = (1, 2, 3),
                         protocol: str = "raft"
                         ) -> Tuple[FigureTable, Dict[str, object]]:
    """The control-plane failover figure: kill the MACHINE under each
    plane's active coordinator mid-flight and measure how fast a hot
    standby takes over through the control journal.

    Per seed, two trials: (1) a 60 %-cross-shard transactional run whose
    coordinator host dies with 2PC in flight — a peer must fence and
    sweep it within milliseconds of lease expiry; (2) a live 2->4 reshard
    whose lease-holding driver's host dies mid-plan — a standby claims
    the role and resumes from the journaled cursor.  The machines stay
    dark for seconds, far longer than any measured failover, so
    completion proves the takeover, not the restart.  Seeds where the
    kill also lands on the control-log LEADER's host pay one extra
    election — that regime shows up as the slow tail of the sweep."""
    table = FigureTable(
        figure="Coordinator-failover",
        title=f"Control-plane failover under machine kills ({protocol}): "
              "the active coordinator's host dies, a hot standby takes "
              "over through the replicated decision log",
        columns=["seed", "txn failover (ms)", "txn safe",
                 "reshard failover (ms)", "reshard done + safe"],
    )
    txn_ms: List[float] = []
    reshard_ms: List[float] = []
    txn_results: List[TxnResult] = []
    reshard_results: List[ReshardResult] = []
    for seed in seeds:
        t_ms, t_result, t_nemesis = _txn_failover_trial(scale, seed, protocol)
        r_ms, r_result, r_nemesis = _reshard_failover_trial(scale, seed,
                                                            protocol)
        txn_ms.append(t_ms)
        reshard_ms.append(r_ms)
        txn_results.append(t_result)
        reshard_results.append(r_result)
        r_ok = (r_result.reshard_completed and r_result.acks_lost == 0
                and r_result.acks_duplicated == 0
                and r_result.duplicate_executions == 0
                and r_result.linearizable)
        table.add_row(seed, t_ms, _txn_safety(t_result), r_ms,
                      "yes" if r_ok else "NO")
        for at_s, what in t_nemesis.log:
            if "host_kill" in what:
                table.notes.append(f"seed {seed} txn t={at_s:.2f}s {what}")
        for at_s, what in r_nemesis.log:
            if "host_kill" in what:
                table.notes.append(f"seed {seed} reshard t={at_s:.2f}s {what}")
    med = lambda xs: sorted(xs)[len(xs) // 2]  # noqa: E731
    table.notes.append(
        f"median failover: txn {med(txn_ms):.0f} ms, reshard "
        f"{med(reshard_ms):.0f} ms (lease expiry 320 ms + one committed "
        f"take/claim record); the slow tail is a kill that also took the "
        f"control-log leader's host — one election more")
    table.notes.append(
        f"txn failovers {[r.failovers for r in txn_results]}, reshard "
        f"owner takeovers {[r.failovers for r in reshard_results]} — every "
        f"run failed over, none waited out the machine restart")
    summary = {"txn_failover_ms": txn_ms, "reshard_failover_ms": reshard_ms,
               "txn_results": txn_results, "reshard_results": reshard_results}
    return table, summary


def txn_figures(scale: float = 1.0, seed: int = 1,
                shard_counts: Tuple[int, ...] = (1, 2, 4),
                cross_ratios: Tuple[float, ...] = (0.0, 0.1, 0.5)) -> str:
    """The full `txn` CLI figure: the scaling sweep plus the faulted run."""
    scaling = txn_scaling(scale, seed, shard_counts=shard_counts,
                          cross_ratios=cross_ratios)
    faults, _result = txn_faults(scale, seed,
                                 num_shards=max(shard_counts),
                                 cross_shard_ratio=max(cross_ratios))
    return scaling.render() + "\n\n" + faults.render()
