"""Regenerate the paper's figures from the command line.

    python -m repro.bench                 # every figure, default scale
    python -m repro.bench --scale 1.0     # EXPERIMENTS.md numbers
    python -m repro.bench fig9c fig10a    # a subset
    python -m repro.bench sharding --shards 1 4 --placement spread
    python -m repro.bench reshard --reshard-at 4.0 --reshard-to 8
    python -m repro.bench membership --membership-protocol multipaxos
    python -m repro.bench mencius-pipeline --mencius-depth 1 4
    python -m repro.bench txn --txn-shards 1 2 4 --cross-ratio 0 0.5
    python -m repro.bench failover --scale 0.6
    python -m repro.bench coalesce --coalesce both --coalesce-shards 4 8
    python -m repro.bench tail --scale 0.2 --metrics-out out.jsonl
    python -m repro.bench pipeline --obs
    python -m repro.bench perf --scale 1.0 --perf-out BENCH_perf.json \
        --perf-baseline benchmarks/results/BENCH_perf.json

Installed via setup.py this is also the `repro-bench` console script.

`perf` is the simulator-core microbenchmark (events/sec, sim-s per
wall-s, profiler breakdown); it is excluded from the default "all
figures" run — ask for it by name.  With `--perf-baseline` the run is
compared against a committed BENCH_perf.json and exits non-zero when
normalized events/sec drops more than `--perf-fail-threshold` below it
(the CI perf smoke contract).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import experiments as ex
from repro.bench import perf
from repro.bench.report import render_all
from repro.shard.placement import PLACEMENTS
from repro.specs import mapping, variants

FIGURES = {
    "fig3": lambda scale, seed: mapping.render(),
    "fig6": lambda scale, seed: variants.render(),
    "fig9ab": lambda scale, seed: render_all(ex.fig9_latency(scale, seed)),
    "fig9c": lambda scale, seed: ex.fig9c_peak_throughput(scale, seed).render(),
    "fig9d": lambda scale, seed: ex.fig9d_speedup(scale, seed).render(),
    "fig10a": lambda scale, seed: ex.fig10a_throughput_8b(scale, seed).render(),
    "fig10b": lambda scale, seed: ex.fig10b_throughput_4kb(scale, seed).render(),
    "fig10c": lambda scale, seed: ex.fig10c_latency_8b(scale, seed).render(),
    "fig10d": lambda scale, seed: ex.fig10d_latency_4kb(scale, seed).render(),
    "pipeline": lambda scale, seed: ex.pipeline_figures(scale, seed),
    "tail": lambda scale, seed: ex.tail_figure(scale, seed),
    "sharding": lambda scale, seed: ex.sharding_scaling(scale, seed).render(),
    "reshard": lambda scale, seed: ex.reshard_timeline(scale, seed).render(),
    "membership": lambda scale, seed: ex.membership_timeline(scale, seed),
    "mencius-pipeline": lambda scale, seed: ex.mencius_pipeline(
        scale, seed).render(),
    "txn": lambda scale, seed: ex.txn_figures(scale, seed),
    "failover": lambda scale, seed: ex.coordinator_failover(
        scale, seeds=(seed, seed + 1, seed + 2))[0].render(),
    "coalesce": lambda scale, seed: ex.coalesce_figure(scale, seed).render(),
    "perf": None,  # bound in main() (needs the parsed perf flags)
}

#: Figures run when none are named: everything but the perf microbench,
#: which exists for before/after comparison, not the paper's evaluation.
DEFAULT_FIGURES = [name for name in FIGURES if name != "perf"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument("figures", nargs="*", choices=[[], *FIGURES][1:] or None,
                        default=list(DEFAULT_FIGURES),
                        help="which figures to run (default: all paper "
                             "figures; `perf` only runs when named)")
    parser.add_argument("--scale", type=float, default=0.6,
                        help="client/duration scale (1.0 = EXPERIMENTS.md)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--pipeline-depth", type=int, nargs="+",
                        default=[1, 2, 4, 8], metavar="N",
                        help="session pipeline depths for the pipeline "
                             "figure's closed-loop sweep (default: 1 2 4 8)")
    parser.add_argument("--offered-load", type=float, nargs="+",
                        default=[200, 400, 800, 1600], metavar="R",
                        help="aggregate open-loop arrival rates (ops/s) for "
                             "the pipeline figure's latency-vs-load curve "
                             "(default: 200 400 800 1600; NOT scaled by "
                             "--scale — the knee is the point)")
    parser.add_argument("--obs", action="store_true",
                        help="collect observability (request spans, queue "
                             "gauges, sim profile) on figures that support "
                             "it — currently the pipeline open-loop curve; "
                             "the tail figure always collects")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="tail figure: also dump the run's raw "
                             "telemetry (records/spans/gauges/profile) as "
                             "JSONL to FILE")
    parser.add_argument("--tail-load", type=float, default=1600.0,
                        metavar="R",
                        help="tail figure: offered open-loop load in ops/s "
                             "(default: 1600 — past the Raft knee, so "
                             "queueing dominates the tail)")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8],
                        metavar="N",
                        help="shard counts for the sharding figure "
                             "(default: 1 2 4 8)")
    parser.add_argument("--placement", default="both",
                        choices=[*sorted(PLACEMENTS), "both"],
                        help="leader placement for the sharding figure "
                             "(default: both)")
    parser.add_argument("--reshard-at", type=float, default=None, metavar="S",
                        help="reshard figure: trigger the split S seconds "
                             "into the run (default: 40%% of the duration)")
    parser.add_argument("--reshard-from", type=int, default=2, metavar="N",
                        help="reshard figure: starting shard count "
                             "(default: 2)")
    parser.add_argument("--reshard-to", type=int, default=4, metavar="N",
                        help="reshard figure: shard count after the split "
                             "(default: 4)")
    parser.add_argument("--membership-protocol", default="raft",
                        metavar="P",
                        help="membership figure: protocol for the first "
                             "timeline (default: raft; the contrast run "
                             "picks the opposite reconfiguration family)")
    parser.add_argument("--membership-at", type=float, default=None,
                        metavar="S",
                        help="membership figure: kill the host S seconds "
                             "into the run (default: 30%% of the duration)")
    parser.add_argument("--membership-alpha", type=int, default=0,
                        metavar="A",
                        help="membership figure: α window for the "
                             "α-bounded run (default: 0 = protocol "
                             "default)")
    parser.add_argument("--mencius-depth", type=int, nargs="+",
                        default=[1, 2, 4, 8], metavar="N",
                        help="mencius-pipeline figure: session depths "
                             "(default: 1 2 4 8)")
    parser.add_argument("--txn-shards", type=int, nargs="+", default=[1, 2, 4],
                        metavar="N",
                        help="shard counts for the txn figure (default: 1 2 4)")
    parser.add_argument("--cross-ratio", type=float, nargs="+",
                        default=[0.0, 0.1, 0.5], metavar="R",
                        help="cross-shard ratios for the txn figure "
                             "(default: 0 0.1 0.5)")
    parser.add_argument("--coalesce", default="both",
                        choices=["on", "off", "both"],
                        help="coalesce figure: which transport modes to run "
                             "(default: both — the A/B the figure is about)")
    parser.add_argument("--coalesce-shards", type=int, nargs="+",
                        default=[2, 4, 8], metavar="N",
                        help="shard counts for the coalesce figure "
                             "(default: 2 4 8)")
    parser.add_argument("--perf-out", metavar="FILE", default=None,
                        help="perf figure: write the full report (all legs, "
                             "profiles, calibration) as JSON to FILE")
    parser.add_argument("--perf-baseline", metavar="FILE", default=None,
                        help="perf figure: compare against a committed "
                             "BENCH_perf.json (its post_refactor numbers)")
    parser.add_argument("--perf-fail-threshold", type=float, default=0.30,
                        metavar="R",
                        help="perf figure: with --perf-baseline, exit "
                             "non-zero when normalized events/sec drops "
                             "more than R below the baseline (default: "
                             "0.30)")
    args = parser.parse_args(argv)
    if any(depth < 1 for depth in args.pipeline_depth):
        parser.error("--pipeline-depth values must be >= 1")
    if any(rate <= 0 for rate in args.offered_load):
        parser.error("--offered-load values must be positive")
    if any(count < 1 for count in args.shards):
        parser.error("--shards values must be >= 1")
    if args.reshard_from < 1 or args.reshard_to < 1:
        parser.error("--reshard-from/--reshard-to must be >= 1")
    if args.membership_alpha < 0:
        parser.error("--membership-alpha must be >= 0")
    if any(depth < 1 for depth in args.mencius_depth):
        parser.error("--mencius-depth values must be >= 1")
    if any(count < 1 for count in args.txn_shards):
        parser.error("--txn-shards values must be >= 1")
    if any(not 0.0 <= ratio <= 1.0 for ratio in args.cross_ratio):
        parser.error("--cross-ratio values must be in [0, 1]")
    if args.tail_load <= 0:
        parser.error("--tail-load must be positive")
    if any(count < 1 for count in args.coalesce_shards):
        parser.error("--coalesce-shards values must be >= 1")
    if not 0.0 <= args.perf_fail_threshold < 1.0:
        parser.error("--perf-fail-threshold must be in [0, 1)")

    placements = (tuple(sorted(PLACEMENTS, reverse=True))
                  if args.placement == "both" else (args.placement,))
    coalesce_modes = (("off", "on") if args.coalesce == "both"
                      else (args.coalesce,))
    figures = dict(FIGURES)
    figures["pipeline"] = lambda scale, seed: ex.pipeline_figures(
        scale, seed, depths=tuple(args.pipeline_depth),
        loads=tuple(args.offered_load), obs=args.obs)
    figures["tail"] = lambda scale, seed: ex.tail_figure(
        scale, seed, offered_load=args.tail_load,
        metrics_out=args.metrics_out)
    figures["sharding"] = lambda scale, seed: ex.sharding_scaling(
        scale, seed, shard_counts=tuple(args.shards),
        placements=placements).render()
    figures["reshard"] = lambda scale, seed: ex.reshard_timeline(
        scale, seed, shards_from=args.reshard_from,
        shards_to=args.reshard_to, reshard_at_s=args.reshard_at).render()
    figures["membership"] = lambda scale, seed: ex.membership_timeline(
        scale, seed, protocol=args.membership_protocol,
        replace_at_s=args.membership_at, alpha=args.membership_alpha)
    figures["mencius-pipeline"] = lambda scale, seed: ex.mencius_pipeline(
        scale, seed, depths=tuple(args.mencius_depth)).render()
    figures["txn"] = lambda scale, seed: ex.txn_figures(
        scale, seed, shard_counts=tuple(args.txn_shards),
        cross_ratios=tuple(args.cross_ratio))
    figures["coalesce"] = lambda scale, seed: ex.coalesce_figure(
        scale, seed, shard_counts=tuple(args.coalesce_shards),
        modes=coalesce_modes).render()

    perf_state: dict = {}
    if args.perf_baseline is not None:
        with open(args.perf_baseline) as handle:
            perf_state["baseline"] = json.load(handle)

    def perf_figure(scale, seed):
        report = perf.run_perf(scale, seed)
        perf_state["report"] = report
        return perf.render_perf(report, perf_state.get("baseline"))

    figures["perf"] = perf_figure

    for name in args.figures:
        start = time.time()
        print(figures[name](args.scale, args.seed))
        print(f"[{name}: {time.time() - start:.1f}s]\n")

    exit_code = 0
    report = perf_state.get("report")
    if report is not None:
        if args.perf_out is not None:
            with open(args.perf_out, "w") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
        baseline = perf_state.get("baseline")
        if baseline is not None:
            ok, message = perf.check_regression(
                report, baseline, args.perf_fail_threshold)
            print(message)
            if not ok:
                exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
