"""Experiment harness.

`run_experiment(spec)` builds a simulated deployment (replica per region,
closed-loop clients per region), runs it for the configured duration, and
returns throughput/latency aggregates over the steady-state window — the
methodology of §5 ("each trial is run for 50 seconds with 10 seconds for
both warm-up and cool-down"), scaled down by default so a full figure sweeps
in seconds of wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.kvstore.checker import HistoryChecker, HistoryEvent
from repro.metrics.recorder import MetricsRecorder
from repro.obs import Observability, ObsConfig, install_standard_gauges
from repro.protocols.config import ClusterConfig, geo_cluster
from repro.protocols.leaderlease import LeaderLeaseReplica
from repro.protocols.mencius import (
    CoordinatedPaxosReplica,
    MenciusReplica,
    RaftStarMenciusReplica,
)
from repro.protocols.multipaxos import MultiPaxosReplica
from repro.protocols.paxos_pql import PaxosPQLReplica
from repro.protocols.pql import RaftStarPQLReplica
from repro.protocols.raft import RaftReplica
from repro.protocols.raftstar import RaftStarReplica
from repro.protocols.types import OpType
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SplitRng
from repro.sim.topology import Topology, ec2_five_regions
from repro.sim.units import sec, to_sec
from repro.workload.clients import spawn_clients
from repro.workload.plan import ClientPlan
from repro.workload.session import RetryPolicy
from repro.workload.ycsb import WorkloadConfig

from repro.protocols.types import Consistency

PROTOCOLS: Dict[str, type] = {
    "raft": RaftReplica,
    "raftstar": RaftStarReplica,
    "raftstar-pql": RaftStarPQLReplica,
    "leaderlease": LeaderLeaseReplica,
    "multipaxos": MultiPaxosReplica,
    "paxos-pql": PaxosPQLReplica,
    "mencius": RaftStarMenciusReplica,
    "coorpaxos": CoordinatedPaxosReplica,
}

MENCIUS_PROTOCOLS = {"mencius", "coorpaxos"}
LEADERLESS = MENCIUS_PROTOCOLS


@dataclass
class ExperimentSpec:
    """One trial's parameters."""

    protocol: str = "raft"
    leader_site: str = "oregon"
    clients_per_region: int = 10
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    duration_s: float = 8.0
    warmup_s: float = 2.0
    cooldown_s: float = 1.0
    seed: int = 1
    topology: Optional[Topology] = None
    execution_mode: Optional[str] = None  # Mencius: "ordered"/"commutative"
    check_history: bool = False
    # Run the FULL history check (prefix agreement + monotonic reads +
    # lease-read freshness over client-observed events) instead of prefix
    # agreement only — the pipelined figures assert this.
    full_check: bool = False
    # -- client fleet (see `workload.plan.ClientPlan`) ----------------------
    # Session pipeline window per client (1 = the legacy closed loop).
    pipeline_depth: int = 1
    # Aggregate open-loop arrival rate in ops/s (None = closed loop).
    offered_load: Optional[float] = None
    # Per-spec retry/backoff schedule for every client session.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    # Default consistency level for the fleet's reads.
    read_consistency: Consistency = Consistency.DEFAULT
    # Share sim Hosts among each site's clients (None = private hosts).
    client_hosts_per_site: Optional[int] = None
    # Observability (repro.obs): collect request-lifecycle spans, queue
    # gauges, and a sim profile for this run.  Off by default — when off,
    # the only cost is one branch per instrumented point.
    obs: bool = False
    obs_config: Optional[ObsConfig] = None

    def with_(self, **changes) -> "ExperimentSpec":
        return replace(self, **changes)

    def client_plan(self) -> ClientPlan:
        return ClientPlan(
            per_region=self.clients_per_region,
            depth=self.pipeline_depth,
            retry=self.retry,
            read_consistency=self.read_consistency,
            offered_load=self.offered_load,
            hosts_per_site=self.client_hosts_per_site,
        )


@dataclass
class ExperimentResult:
    spec: ExperimentSpec
    throughput_ops: float
    read_latency: Dict[str, Dict[str, float]]
    write_latency: Dict[str, Dict[str, float]]
    local_read_fraction: float
    completed: int
    violations: List[str]
    events_processed: int
    # Latency over ALL completions acked inside the window (reads +
    # writes, every site), submission-to-ack: open-loop queueing delay is
    # included, and long-queued requests are not excluded at saturation.
    overall_latency: Dict[str, float] = field(default_factory=dict)
    # Acks landing in the window per second, whatever their submission
    # time — the saturated-open-loop throughput measure.
    completion_throughput_ops: float = 0.0
    # The run's telemetry collector when the spec asked for it (spans,
    # gauges, profiler); None for plain runs.
    obs: Optional[Observability] = None

    def latency_ms(self, group: str, op: str, pct: str = "p90") -> float:
        table = self.read_latency if op == "read" else self.write_latency
        return table[group][pct]


class Cluster:
    """A built deployment: simulator, network, replicas, clients."""

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self.topology = spec.topology or ec2_five_regions()
        self.rng = SplitRng(spec.seed)
        self.sim = Simulator()
        net_config = NetworkConfig()  # FIFO links (TCP) for every protocol
        self.network = Network(self.sim, self.topology, rng=self.rng, config=net_config)
        self.metrics = MetricsRecorder()
        self.checker = HistoryChecker() if spec.check_history else None

        replica_cls = PROTOCOLS[spec.protocol]
        leader = None if spec.protocol in LEADERLESS else f"r_{spec.leader_site}"
        self.config = geo_cluster(self.topology.sites, initial_leader=leader)
        kwargs = {}
        if spec.protocol in MENCIUS_PROTOCOLS and spec.execution_mode is not None:
            kwargs["execution_mode"] = spec.execution_mode
        self.replicas = {
            name: replica_cls(name, self.sim, self.network, self.config, **kwargs)
            for name in self.config.names
        }
        if self.checker is not None:
            for replica in self.replicas.values():
                replica.on_apply_hooks.append(self.checker.record_apply)

        server_of_site = {site: f"r_{site}" for site in self.topology.sites}
        stop_at = sec(spec.duration_s)
        self.clients = spawn_clients(
            self.sim, self.network, self.topology.sites, server_of_site,
            spec.clients_per_region, spec.workload, self.rng, self.metrics,
            stop_at=stop_at, plan=spec.client_plan(),
        )
        if self.checker is not None and spec.full_check:
            # Client-observed events feed the monotonic-read and lease-
            # freshness checks (the pipelined figures assert check_all).
            for client in self.clients:
                client.on_complete_hooks.append(self._record_event)

        self.obs: Optional[Observability] = None
        if spec.obs:
            self.obs = Observability(self.sim, self.metrics, spec.obs_config)
            self.obs.install(self.replicas.values())
            self.obs.install(self.clients)
            install_standard_gauges(
                self.obs.sampler, replicas=self.replicas.values(),
                clients=self.clients, network=self.network)
            self.obs.sampler.start(stop_at=stop_at)

    def _record_event(self, command, reply, start, end) -> None:
        value = command.value if command.op is OpType.PUT else reply.value
        self.checker.record_event(HistoryEvent(
            client=command.client_id, seq=command.seq, op=command.op,
            key=command.key, value=value, start=start, end=end,
            server=reply.server, local_read=reply.local_read,
        ))

    @property
    def leader_replica(self):
        return self.replicas[f"r_{self.spec.leader_site}"]

    def run(self) -> ExperimentResult:
        spec = self.spec
        self.sim.run(until=sec(spec.duration_s))
        window_start = sec(spec.warmup_s)
        window_end = sec(spec.duration_s - spec.cooldown_s)
        violations: List[str] = []
        if self.checker is not None:
            violations = (self.checker.check_all() if spec.full_check
                          else self.checker.check_prefix_agreement())
        return ExperimentResult(
            spec=spec,
            throughput_ops=self.metrics.throughput_ops(window_start, window_end),
            read_latency=self.metrics.split_by_site(
                window_start, window_end, spec.leader_site, op=OpType.GET),
            write_latency=self.metrics.split_by_site(
                window_start, window_end, spec.leader_site, op=OpType.PUT),
            local_read_fraction=self.metrics.local_read_fraction(window_start, window_end),
            completed=len(self.metrics.window(window_start, window_end)),
            violations=violations,
            events_processed=self.sim.events_processed,
            overall_latency=self.metrics.completion_latency_summary_ms(
                window_start, window_end),
            completion_throughput_ops=self.metrics.completion_throughput(
                window_start, window_end),
            obs=self.obs,
        )


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    return Cluster(spec).run()
