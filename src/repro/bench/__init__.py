"""Benchmark harness: one entry point per paper figure."""

from repro.bench.harness import Cluster, ExperimentResult, ExperimentSpec, run_experiment

__all__ = ["Cluster", "ExperimentResult", "ExperimentSpec", "run_experiment"]
