"""Benchmark harness: one entry point per paper figure, plus the sharded
multi-group experiment (`run_sharded_experiment`)."""

from repro.bench.harness import Cluster, ExperimentResult, ExperimentSpec, run_experiment
from repro.shard.cluster import (
    ShardedCluster,
    ShardedResult,
    ShardedSpec,
    run_sharded_experiment,
)

__all__ = [
    "Cluster",
    "ExperimentResult",
    "ExperimentSpec",
    "ShardedCluster",
    "ShardedResult",
    "ShardedSpec",
    "run_experiment",
    "run_sharded_experiment",
]
