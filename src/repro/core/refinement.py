"""Refinement mappings and their mechanical checking.

`B ⇒ A` (B refines A) under a state mapping f when every reachable
transition of B maps to a valid A step — or to no step at all (a stuttering
step, f(s') = f(s)).  §2.2 of the paper; the classic definition from Abadi &
Lamport.

One practical extension, needed for the paper's own mapping (§3, "a Raft*'s
function may imply multiple functions in Paxos"): a single B step may map to
a bounded *sequence* of A steps.  `check_refinement(..., max_high_steps=k)`
accepts a B transition when f(s') is reachable from f(s) in at most k A
steps.  k=1 is strict refinement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.explorer import Explorer
from repro.core.machine import SpecMachine, Transition
from repro.core.state import State


@dataclass
class RefinementMapping:
    """f : states(low) -> states(high), plus documentation metadata.

    `action_map` is optional documentation (low action name -> high action
    names it is expected to imply); the checker verifies the semantic
    condition regardless, and reports when an observed correspondence
    deviates from the documented one.
    """

    name: str
    state_map: Callable[[State], State]
    action_map: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __call__(self, state: State) -> State:
        return self.state_map(state)


@dataclass
class RefinementFailure:
    transition: Transition
    mapped_from: State
    mapped_to: State
    reason: str
    trace: List[Transition] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"low step {self.transition.describe()} has no high counterpart: "
            f"{self.reason}\n  f(s)  = {self.mapped_from}\n  f(s') = {self.mapped_to}"
        )


@dataclass
class RefinementResult:
    low: str
    high: str
    mapping: str
    states_checked: int
    transitions_checked: int
    stutters: int
    complete: bool
    failures: List[RefinementFailure] = field(default_factory=list)
    init_failures: List[State] = field(default_factory=list)
    observed_correspondence: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.init_failures

    def summary(self) -> str:
        status = "HOLDS" if self.ok else "FAILS"
        scope = "complete" if self.complete else "bounded"
        return (
            f"refinement {self.low} => {self.high} [{self.mapping}]: {status} "
            f"({scope}; {self.states_checked} states, "
            f"{self.transitions_checked} transitions, {self.stutters} stutters)"
        )


def check_refinement(
    low: SpecMachine,
    high: SpecMachine,
    mapping: RefinementMapping,
    max_states: int = 50_000,
    max_high_steps: int = 1,
    max_failures: int = 3,
) -> RefinementResult:
    """Explore `low` and check every transition against `high` under f."""
    result = RefinementResult(
        low=low.name, high=high.name, mapping=mapping.name,
        states_checked=0, transitions_checked=0, stutters=0, complete=False,
    )

    # Init condition: every mapped low-initial state must be a high-initial
    # state (§4.3's InitB => InitA obligation).
    high_inits = set(high.initial_states())
    for state in low.initial_states():
        if mapping(state) not in high_inits:
            result.init_failures.append(state)
            if len(result.init_failures) >= max_failures:
                return result

    explorer = Explorer(low, max_states=max_states)
    exploration = explorer.run()
    result.complete = exploration.complete

    # Memoized bounded reachability query in the high machine.
    step_cache: Dict[Tuple[State, State], bool] = {}

    def high_reaches(src: State, dst: State) -> bool:
        key = (src, dst)
        if key in step_cache:
            return step_cache[key]
        seen = {src}
        frontier = deque([(src, 0)])
        found = False
        while frontier:
            cursor, hops = frontier.popleft()
            if hops >= max_high_steps:
                continue
            for nxt in high.successors(cursor):
                if nxt == dst:
                    found = True
                    frontier.clear()
                    break
                if nxt not in seen and hops + 1 < max_high_steps:
                    seen.add(nxt)
                    frontier.append((nxt, hops + 1))
        step_cache[key] = found
        return found

    for state in explorer.reachable_states():
        result.states_checked += 1
        mapped = mapping(state)
        for transition in low.transitions_from(state):
            result.transitions_checked += 1
            mapped_next = mapping(transition.next_state)
            if mapped_next == mapped:
                result.stutters += 1
                result.observed_correspondence.setdefault(
                    transition.action, set()).add("(stutter)")
                continue
            if high_reaches(mapped, mapped_next):
                names = mapping.action_map.get(transition.action)
                result.observed_correspondence.setdefault(
                    transition.action, set()).update(names or ("(step)",))
                continue
            result.failures.append(RefinementFailure(
                transition=transition,
                mapped_from=mapped,
                mapped_to=mapped_next,
                reason=f"f(s') not reachable from f(s) in <= {max_high_steps} "
                       f"high step(s)",
                trace=explorer.trace_to(state),
            ))
            if len(result.failures) >= max_failures:
                return result
    return result


def projection_mapping(name: str, variables) -> RefinementMapping:
    """The identity-on-shared-variables mapping that simply drops auxiliary
    state — the mapping under which every non-mutating optimization refines
    its base protocol (§4.2)."""
    variables = tuple(variables)

    def state_map(state: State) -> State:
        return state.restrict(variables)

    return RefinementMapping(name=name, state_map=state_map)
