"""State machines: Init ∧ □[Next]_vars.

A `SpecMachine` is the executable analogue of a TLA+ module: variables,
constants, a set of initial states and a disjunction of parameterized
actions.  The explorer and the refinement checker both consume this
interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.action import Action
from repro.core.state import State


@dataclass(frozen=True)
class Transition:
    """One step: state --action(params)--> next_state."""

    state: State
    action: str
    params: Tuple[Tuple[str, Any], ...]
    next_state: State

    def describe(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.action}({params})"


@dataclass
class SpecMachine:
    """An executable specification."""

    name: str
    variables: Tuple[str, ...]
    constants: Dict[str, Any]
    init: Callable[[Mapping], Iterable[State]]
    actions: List[Action] = field(default_factory=list)

    def initial_states(self) -> List[State]:
        states = list(self.init(self.constants))
        for state in states:
            self._check_vars(state)
        return states

    def _check_vars(self, state: State) -> None:
        if tuple(sorted(state)) != tuple(sorted(self.variables)):
            missing = set(self.variables) - set(state)
            extra = set(state) - set(self.variables)
            raise ValueError(
                f"{self.name}: state variables mismatch "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )

    def action(self, name: str) -> Action:
        for action in self.actions:
            if action.name == name:
                return action
        raise KeyError(f"{self.name} has no action named {name!r}")

    def transitions_from(self, state: State) -> Iterator[Transition]:
        """All enabled (action, binding) successors of `state`.

        Self-loops (next == state) are suppressed: they are stuttering steps
        and carry no information for reachability or refinement.
        """
        for action in self.actions:
            for binding in action.bindings(self.constants, state):
                if not action.enabled(state, binding):
                    continue
                next_state = action.apply(state, binding)
                if next_state == state:
                    continue
                yield Transition(
                    state=state,
                    action=action.name,
                    params=tuple(sorted(binding.items())),
                    next_state=next_state,
                )

    def successors(self, state: State) -> List[State]:
        return [t.next_state for t in self.transitions_from(state)]

    def replaced(self, **changes) -> "SpecMachine":
        """A shallow-modified copy (used when deriving optimized specs)."""
        fields = {
            "name": self.name,
            "variables": self.variables,
            "constants": dict(self.constants),
            "init": self.init,
            "actions": list(self.actions),
        }
        fields.update(changes)
        return SpecMachine(**fields)
