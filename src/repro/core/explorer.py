"""Bounded explicit-state model checking (a miniature TLC).

Breadth-first exploration of the reachable state space with invariant
checking and counterexample trace reconstruction.  Exploration is bounded by
`max_states`; a bounded run that exhausts the frontier is a *complete* check
for the given finite constants, otherwise the result records that the check
was partial (the standard TLC-with-state-limit methodology).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.machine import SpecMachine, Transition
from repro.core.state import State

Invariant = Callable[[State, Mapping], bool]


@dataclass
class InvariantViolation:
    invariant: str
    state: State
    trace: List[Transition]

    def describe(self) -> str:
        steps = "\n".join(f"  {i}: {t.describe()}" for i, t in enumerate(self.trace))
        return (
            f"invariant {self.invariant!r} violated after {len(self.trace)} steps:\n"
            f"{steps}\nstate:\n{self.state.pretty()}"
        )


@dataclass
class ExplorationResult:
    machine: str
    states_visited: int
    transitions_explored: int
    complete: bool
    violations: List[InvariantViolation] = field(default_factory=list)
    diameter: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class Explorer:
    """BFS model checker."""

    def __init__(self, machine: SpecMachine,
                 invariants: Optional[Dict[str, Invariant]] = None,
                 max_states: int = 100_000,
                 stop_at_first_violation: bool = True) -> None:
        self.machine = machine
        self.invariants = invariants or {}
        self.max_states = max_states
        self.stop_at_first_violation = stop_at_first_violation
        # parent pointers for trace reconstruction
        self._parent: Dict[State, Optional[Tuple[State, Transition]]] = {}

    def run(self) -> ExplorationResult:
        machine = self.machine
        result = ExplorationResult(
            machine=machine.name, states_visited=0, transitions_explored=0, complete=False,
        )
        frontier = deque()
        depth: Dict[State, int] = {}
        for state in machine.initial_states():
            if state not in self._parent:
                self._parent[state] = None
                depth[state] = 0
                frontier.append(state)
                result.states_visited += 1
                if not self._check(state, result):
                    return result

        while frontier:
            state = frontier.popleft()
            for transition in machine.transitions_from(state):
                result.transitions_explored += 1
                nxt = transition.next_state
                if nxt in self._parent:
                    continue
                self._parent[nxt] = (state, transition)
                depth[nxt] = depth[state] + 1
                result.diameter = max(result.diameter, depth[nxt])
                result.states_visited += 1
                if not self._check(nxt, result):
                    return result
                if result.states_visited >= self.max_states:
                    return result  # bounded: frontier not exhausted
                frontier.append(nxt)

        result.complete = True
        return result

    def _check(self, state: State, result: ExplorationResult) -> bool:
        """Returns False when exploration should stop."""
        for name, predicate in self.invariants.items():
            try:
                holds = predicate(state, self.machine.constants)
            except Exception as exc:  # invariant code errors are violations too
                holds = False
                name = f"{name} (raised {type(exc).__name__}: {exc})"
            if not holds:
                result.violations.append(InvariantViolation(
                    invariant=name, state=state, trace=self.trace_to(state),
                ))
                if self.stop_at_first_violation:
                    return False
        return True

    def trace_to(self, state: State) -> List[Transition]:
        trace: List[Transition] = []
        cursor = state
        while True:
            parent = self._parent.get(cursor)
            if parent is None:
                break
            prev, transition = parent
            trace.append(transition)
            cursor = prev
        trace.reverse()
        return trace

    def reachable_states(self) -> List[State]:
        """The states discovered by the last `run()`."""
        return list(self._parent)
