"""Immutable protocol states.

A `State` maps variable names to values; values must be hashable (use
`FMap` for dictionaries and `frozenset`/`tuple` for collections).  States
hash and compare by value, which is what lets the explorer deduplicate the
reachable set and the refinement checker compare mapped states.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple


class FMap(Mapping):
    """A small immutable mapping with value hashing.

    >>> m = FMap({'a': 1})
    >>> m.set('b', 2)['b']
    2
    >>> m['a']
    1
    """

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, items: Any = ()) -> None:
        if isinstance(items, Mapping):
            pairs = tuple(sorted(items.items(), key=lambda kv: repr(kv[0])))
        else:
            pairs = tuple(sorted(items, key=lambda kv: repr(kv[0])))
        object.__setattr__(self, "_items", pairs)
        object.__setattr__(self, "_dict", dict(pairs))
        object.__setattr__(self, "_hash", None)

    def set(self, key: Any, value: Any) -> "FMap":
        new = dict(self._dict)
        new[key] = value
        return FMap(new)

    def update(self, other: Mapping) -> "FMap":
        new = dict(self._dict)
        new.update(other)
        return FMap(new)

    def remove(self, key: Any) -> "FMap":
        new = dict(self._dict)
        new.pop(key, None)
        return FMap(new)

    def __getitem__(self, key: Any) -> Any:
        return self._dict[key]

    def __iter__(self) -> Iterator:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self._items))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, FMap):
            return self._items == other._items
        if isinstance(other, Mapping):
            return self._dict == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self._items)
        return f"FMap({{{inner}}})"


def fmap_const(keys, value) -> FMap:
    """[k ∈ keys |-> value] — the TLA+ constant-function constructor."""
    return FMap({key: value for key in keys})


class State(Mapping):
    """An immutable assignment of values to variable names."""

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, values: Mapping) -> None:
        pairs = tuple(sorted(values.items()))
        object.__setattr__(self, "_items", pairs)
        object.__setattr__(self, "_dict", dict(pairs))
        object.__setattr__(self, "_hash", None)

    def with_(self, **updates: Any) -> "State":
        """A new state with some variables replaced."""
        new = dict(self._dict)
        for key, value in updates.items():
            if key not in new:
                raise KeyError(f"unknown state variable {key!r}")
            new[key] = value
        return State(new)

    def assign(self, updates: Dict[str, Any]) -> "State":
        """Like `with_` but takes a dict (for computed variable names)."""
        new = dict(self._dict)
        for key, value in updates.items():
            new[key] = value
        return State(new)

    def restrict(self, variables) -> "State":
        """Project onto a subset of variables (refinement mappings that just
        drop auxiliary state use this)."""
        return State({var: self._dict[var] for var in variables})

    def __getitem__(self, key: str) -> Any:
        return self._dict[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self._items))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, State):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"State({inner})"

    def pretty(self) -> str:
        return "\n".join(f"  {k} = {v!r}" for k, v in self._items)
