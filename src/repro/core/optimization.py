"""Classifying optimizations (§4.2).

Given a base protocol A and an optimized protocol A∆ (sharing clause
objects, as one shares text when editing a TLA+ spec), `diff_optimization`
splits A∆'s subactions into:

* **added** — no subaction of the same name exists in A, or the derivation
  deleted one of A's conjuncts (footnote 2: such a subaction must be viewed
  as added);
* **unchanged** — identical clause set to A's subaction;
* **modified** — A's clauses plus extra conjuncts.

The optimization is **non-mutating** when no added subaction and no added
clause of a modified subaction *updates* a variable of A.  (Added guard
clauses over A's variables are fine — Figure 4c's `table[k] = {}` is one.)
Non-mutating optimizations refine A under the projection mapping that drops
the new variables, which is what makes the §4.3 port automatically correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine


@dataclass
class ModifiedAction:
    base: Action
    optimized: Action
    added_clauses: Tuple[Clause, ...]


@dataclass
class OptimizationDiff:
    base: SpecMachine
    optimized: SpecMachine
    new_variables: Tuple[str, ...]
    added: List[Action] = field(default_factory=list)
    unchanged: List[Action] = field(default_factory=list)
    modified: List[ModifiedAction] = field(default_factory=list)

    def mutating_writes(self) -> List[str]:
        """Descriptions of every place the optimization writes a base
        variable (empty list == non-mutating)."""
        base_vars = set(self.base.variables)
        problems = []
        for action in self.added:
            for clause in action.updates:
                if clause.var in base_vars:
                    problems.append(
                        f"added action {action.name!r} writes base variable "
                        f"{clause.var!r} (clause {clause.name!r})"
                    )
        for mod in self.modified:
            for clause in mod.added_clauses:
                if clause.kind == "update" and clause.var in base_vars:
                    problems.append(
                        f"modified action {mod.optimized.name!r} adds clause "
                        f"{clause.name!r} writing base variable {clause.var!r}"
                    )
        return problems

    @property
    def non_mutating(self) -> bool:
        return not self.mutating_writes()

    def summary(self) -> str:
        kind = "non-mutating" if self.non_mutating else "MUTATING"
        return (
            f"{self.optimized.name} vs {self.base.name}: {kind}; "
            f"+{len(self.added)} added, {len(self.unchanged)} unchanged, "
            f"{len(self.modified)} modified subactions; "
            f"new vars {list(self.new_variables)}"
        )


def diff_optimization(base: SpecMachine, optimized: SpecMachine) -> OptimizationDiff:
    """Compute the A vs A∆ diff."""
    missing = set(base.variables) - set(optimized.variables)
    if missing:
        raise ValueError(
            f"{optimized.name} drops base variables {sorted(missing)}; "
            f"an optimization must keep all of {base.name}'s state"
        )
    new_vars = tuple(v for v in optimized.variables if v not in base.variables)

    base_actions = {action.name: action for action in base.actions}
    diff = OptimizationDiff(base=base, optimized=optimized, new_variables=new_vars)

    for action in optimized.actions:
        counterpart = base_actions.get(action.name)
        if counterpart is None:
            diff.added.append(action)
            continue
        base_clauses = set(counterpart.clauses)
        opt_clauses = set(action.clauses)
        if base_clauses == opt_clauses:
            diff.unchanged.append(action)
        elif base_clauses <= opt_clauses:
            added = tuple(c for c in action.clauses if c not in base_clauses)
            diff.modified.append(ModifiedAction(
                base=counterpart, optimized=action, added_clauses=added,
            ))
        else:
            # Footnote 2: deleting a conjunct makes it an added subaction.
            diff.added.append(action)
    return diff
