"""The paper's core contribution, executable.

This package is a small TLA+-workalike embedded in Python:

* `state` — immutable, hashable protocol states (`State`, `FMap`);
* `action` — subactions as explicit conjunctions of guard clauses and update
  clauses (§4.1's "formula in conjunctive form"), kept structured so the
  porting algorithm can rewrite them;
* `machine` — `SpecMachine`: Init ∧ □[Next], Next = ∃ params: a1 ∨ a2 ∨ …;
* `explorer` — bounded explicit-state model checking (a mini TLC);
* `refinement` — refinement mappings and mechanical checking that every
  low-level transition implies a high-level action or a stutter (§2.2),
  with bounded multi-step matching for the paper's "one Raft* function may
  imply multiple functions in Paxos";
* `optimization` — diffing A against A∆ into added/unchanged/modified
  subactions and deciding *non-mutating* (§4.2);
* `porting` — the automatic porting algorithm of §4.3 (Case-1/2/3),
  producing an executable B∆.
"""

from repro.core.state import FMap, State
from repro.core.action import Action, Clause, guard, update
from repro.core.machine import SpecMachine
from repro.core.explorer import ExplorationResult, Explorer, InvariantViolation
from repro.core.refinement import RefinementMapping, RefinementResult, check_refinement
from repro.core.optimization import OptimizationDiff, diff_optimization
from repro.core.porting import PortingError, PortSpec, port_optimization

__all__ = [
    "Action",
    "Clause",
    "ExplorationResult",
    "Explorer",
    "FMap",
    "InvariantViolation",
    "OptimizationDiff",
    "PortSpec",
    "PortingError",
    "RefinementMapping",
    "RefinementResult",
    "SpecMachine",
    "State",
    "check_refinement",
    "diff_optimization",
    "guard",
    "port_optimization",
    "update",
]
