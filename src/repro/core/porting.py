"""The automatic porting algorithm (§4.3).

Given

* a base protocol **A**, its non-mutating optimization **A∆**,
* a target protocol **B** that refines A under a state mapping *f*,
* the action correspondence (which A action each B action implies — the
  information content of Figure 3's function table), and
* parameter mappings (§4.3's `f_args`),

`port_optimization` derives **B∆**:

* **Case-1** — an added subaction of A∆ becomes an added subaction of B∆
  whose clauses read A's variables *through f* and write only the new
  variables;
* **Case-2** — every subaction of B is carried over (each implies an
  unchanged A subaction or a stutter);
* **Case-3** — a B subaction implying a *modified* A subaction additionally
  gets the optimization's extra clauses, translated through f and the
  parameter mapping.  A B subaction that implies several modified A
  subactions receives all of their clauses (the Raft* `AppendEntries` ⇒
  `Phase2a ∧ Phase2b` situation §4.4 warns hand-porters about).

The generated machine is executable: its correctness obligations (B∆ ⇒ A∆
and B∆ ⇒ B, Figure 5) can be checked with `core.refinement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.optimization import OptimizationDiff, diff_optimization
from repro.core.refinement import RefinementMapping, projection_mapping
from repro.core.state import State


class PortingError(Exception):
    """The port's preconditions do not hold (mutating optimization, missing
    correspondence/parameter mapping, clause collision)."""


ParamMap = Callable[[Mapping], Dict[str, Any]]


@dataclass
class PortSpec:
    """Everything the port needs beyond the three machines.

    state_map: the refinement mapping f with VarA = f(VarB).
    correspondence: B action name -> tuple of A action names it implies
        (empty tuple = the B action only ever maps to stutters).
    param_maps: (B action name, A action name) -> translator taking the B
        binding to the A binding.  Only needed where the A action (a) is
        modified by the optimization and (b) its added clauses read
        parameters.  Identity by default.
    expansions: (B action name, A action name) -> enumerator of the A
        bindings one B step implies, `fn(b_state, b_binding) -> [a_binding,
        ...]`.  This is the paper's "a Raft* function may imply multiple
        functions in Paxos": a batched AppendEntries maps to one Accept per
        entry, so the optimization's added clauses must be applied once per
        implied step (guards conjoin; updates fold left-to-right).  Default:
        a single binding through `param_maps`.
    """

    state_map: RefinementMapping
    correspondence: Dict[str, Tuple[str, ...]]
    param_maps: Dict[Tuple[str, str], ParamMap] = field(default_factory=dict)
    expansions: Dict[Tuple[str, str], Callable[[Any, Mapping], List[Mapping]]] = field(
        default_factory=dict)

    def params_for(self, b_action: str, a_action: str, binding: Mapping) -> Dict[str, Any]:
        translator = self.param_maps.get((b_action, a_action))
        if translator is None:
            return dict(binding)
        translated = translator(binding)
        merged = dict(binding)
        merged.update(translated)
        return merged

    def bindings_for(self, b_action: str, a_action: str, state: Any,
                     binding: Mapping) -> List[Dict[str, Any]]:
        expansion = self.expansions.get((b_action, a_action))
        if expansion is None:
            return [self.params_for(b_action, a_action, binding)]
        return [dict(b) for b in expansion(state, binding)]


class _CombinedView(Mapping):
    """A B∆ state viewed as an A∆ state: the optimization's new variables
    are read directly, A's variables are read through f.  `overlay` lets a
    fold over multiple implied A steps see intermediate new-variable values."""

    __slots__ = ("_state", "_mapped", "_new_vars", "_overlay")

    def __init__(self, state: State, mapped: State, new_vars,
                 overlay: Optional[Dict[str, Any]] = None) -> None:
        self._state = state
        self._mapped = mapped
        self._new_vars = new_vars
        self._overlay = overlay or {}

    def __getitem__(self, var: str) -> Any:
        if var in self._overlay:
            return self._overlay[var]
        if var in self._new_vars:
            return self._state[var]
        return self._mapped[var]

    def __iter__(self):
        yield from self._new_vars
        yield from self._mapped

    def __len__(self) -> int:
        return len(self._new_vars) + len(self._mapped)


def _translate_clause(clause: Clause, port: PortSpec, base_vars, new_vars,
                      b_action: Optional[str] = None,
                      a_action: Optional[str] = None,
                      prefix: str = "ported") -> Clause:
    """Rewrite an A∆ clause to run against B∆ states.

    For Case-3 clauses the B step may imply several A steps (see
    `PortSpec.expansions`): guard clauses must hold for every implied step;
    update clauses fold over them, each application seeing the previous
    one's value of the target variable.
    """
    base_vars = tuple(base_vars)
    new_vars = frozenset(new_vars)
    inner = clause.fn

    def fn(state: State, params: Mapping) -> Any:
        mapped = port.state_map(state.restrict(base_vars))
        if b_action is not None and a_action is not None:
            bindings = port.bindings_for(b_action, a_action, state, params)
        else:
            bindings = [dict(params)]
        if clause.kind == "guard":
            return all(
                inner(_CombinedView(state, mapped, new_vars), binding)
                for binding in bindings
            )
        value = state[clause.var]
        for binding in bindings:
            view = _CombinedView(state, mapped, new_vars, overlay={clause.var: value})
            value = inner(view, binding)
        return value

    qualifier = f":{a_action}" if a_action else ""
    return Clause(
        name=f"{prefix}{qualifier}:{clause.name}",
        kind=clause.kind,
        fn=fn,
        var=clause.var,
    )


def port_optimization(
    base: SpecMachine,
    optimized: SpecMachine,
    target: SpecMachine,
    port: PortSpec,
    name: Optional[str] = None,
) -> SpecMachine:
    """Generate B∆ from (A, A∆, B, f, f_args)."""
    diff = diff_optimization(base, optimized)
    problems = diff.mutating_writes()
    if problems:
        raise PortingError(
            "the optimization is not non-mutating; cannot port automatically:\n  "
            + "\n  ".join(problems)
        )

    for action in target.actions:
        if action.name not in port.correspondence:
            raise PortingError(
                f"no correspondence given for target action {action.name!r}; "
                f"map it to the A action(s) it implies, or () for stutter-only"
            )

    new_vars = diff.new_variables
    target_vars = tuple(target.variables)
    ported_vars = target_vars + new_vars

    # Init: B's initial states extended with the optimization's new-variable
    # initial values (taken from A∆'s initial states).
    def ported_init(constants: Mapping) -> Iterable[State]:
        opt_inits = optimized.init(optimized.constants)
        delta_parts = []
        seen = set()
        for opt_state in opt_inits:
            part = tuple((v, opt_state[v]) for v in new_vars)
            if part not in seen:
                seen.add(part)
                delta_parts.append(dict(part))
        for b_state in target.init(target.constants):
            for part in delta_parts:
                yield b_state.assign(part)

    modified_by_a_name = {mod.base.name: mod for mod in diff.modified}
    actions: List[Action] = []

    # Cases 2 and 3: carry over every B action; splice in translated clauses
    # where it implies a modified A action.
    for b_action in target.actions:
        implied = port.correspondence[b_action.name]
        extra: List[Clause] = []
        for a_name in implied:
            mod = modified_by_a_name.get(a_name)
            if mod is None:
                continue  # unchanged A action: Case-2
            for clause in mod.added_clauses:
                extra.append(_translate_clause(
                    clause, port, target_vars, new_vars,
                    b_action=b_action.name, a_action=a_name,
                ))
        if extra:
            targets = [c.var for c in b_action.updates] + [
                c.var for c in extra if c.kind == "update"
            ]
            dupes = {t for t in targets if t is not None and targets.count(t) > 1}
            if dupes:
                raise PortingError(
                    f"clause collision porting onto {b_action.name!r}: "
                    f"multiple updates target {sorted(dupes)}"
                )
            actions.append(b_action.with_clauses(extra))
        else:
            actions.append(b_action)

    # Case 1: added subactions, translated wholesale.  Parameter domains are
    # wrapped too, so an added action quantifying over A-state (e.g.
    # "∃ m ∈ msgs") enumerates through f.
    def _wrap_domain(domain_fn):
        frozen_new = frozenset(new_vars)

        def fn(constants: Mapping, state: State):
            mapped = port.state_map(state.restrict(target_vars))
            return domain_fn(constants, _CombinedView(state, mapped, frozen_new))

        return fn

    existing = {action.name for action in actions}
    for a_action in diff.added:
        if a_action.name in existing:
            raise PortingError(
                f"added action {a_action.name!r} collides with a target action name"
            )
        actions.append(Action(
            name=a_action.name,
            params={p: _wrap_domain(d) for p, d in a_action.params.items()},
            clauses=tuple(
                _translate_clause(clause, port, target_vars, new_vars)
                for clause in a_action.clauses
            ),
        ))

    constants = dict(optimized.constants)
    constants.update(target.constants)

    return SpecMachine(
        name=name or f"{target.name}-ported-{optimized.name}",
        variables=ported_vars,
        constants=constants,
        init=ported_init,
        actions=actions,
    )


def ported_to_optimized_mapping(port: PortSpec, base: SpecMachine,
                                optimized: SpecMachine,
                                target: SpecMachine) -> RefinementMapping:
    """The Figure 5 mapping B∆ ⇒ A∆: f on B's variables, identity on the
    optimization's new variables."""
    new_vars = tuple(v for v in optimized.variables if v not in base.variables)
    target_vars = tuple(target.variables)

    def state_map(state: State) -> State:
        mapped = port.state_map(state.restrict(target_vars))
        values = dict(mapped)
        for var in new_vars:
            values[var] = state[var]
        return State(values)

    return RefinementMapping(
        name=f"{port.state_map.name}+identity-on-delta", state_map=state_map,
    )


def ported_to_target_mapping(target: SpecMachine) -> RefinementMapping:
    """The Figure 5 mapping B∆ ⇒ B: drop the new variables."""
    return projection_mapping(f"drop-delta-vars->{target.name}", target.variables)
