"""Subactions as structured conjunctions.

A TLA+ subaction is a conjunction of clauses; some clauses are *enabling
conditions* (guards — predicates over the current state and parameters) and
some assert *next-state values* (updates — `var' = expr`).  The porting
algorithm of §4.3 needs this structure explicitly: it classifies clauses as
original vs added, checks that added clauses never write the base protocol's
variables, and re-targets added clauses onto another protocol through a
state/parameter mapping.

Clauses are identified by name.  Two clauses with the same name are treated
as the same clause when diffing A against A∆ — the framework's contract is
that an optimized spec is built by *reusing* the base spec's clause objects
and adding new ones (exactly how one edits a TLA+ spec).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.state import State


@dataclass(frozen=True)
class Clause:
    """One conjunct of a subaction.

    kind 'guard':  `fn(state, params) -> bool`
    kind 'update': `fn(state, params) -> new value` for variable `var`;
                   the TLA+ clause `var' = fn(...)`.
    """

    name: str
    kind: str  # 'guard' | 'update'
    fn: Callable[[Mapping, Mapping], Any]
    var: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("guard", "update"):
            raise ValueError(f"clause kind must be guard/update, got {self.kind!r}")
        if self.kind == "update" and not self.var:
            raise ValueError(f"update clause {self.name!r} needs a target variable")
        if self.kind == "guard" and self.var:
            raise ValueError(f"guard clause {self.name!r} cannot target a variable")

    def __eq__(self, other: Any) -> bool:  # identity by name (see module doc)
        if isinstance(other, Clause):
            return self.name == other.name and self.kind == other.kind and self.var == other.var
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.kind, self.var))


def guard(name: str) -> Callable:
    """Decorator: `@guard('bal-is-higher')` over `fn(state, params)`."""

    def wrap(fn: Callable) -> Clause:
        return Clause(name=name, kind="guard", fn=fn)

    return wrap


def update(name: str, var: str) -> Callable:
    """Decorator: `@update('adopt-ballot', var='ballot')`."""

    def wrap(fn: Callable) -> Clause:
        return Clause(name=name, kind="update", fn=fn, var=var)

    return wrap


@dataclass
class Action:
    """A parameterized subaction: ∃ params ∈ domains : ∧ clauses.

    `params` maps parameter names to domain functions `fn(constants, state)
    -> iterable`; making domains state-dependent keeps enumeration tractable
    (e.g. "∃ m ∈ msgs" enumerates the current message set rather than a
    static universe).
    """

    name: str
    params: Dict[str, Callable[[Mapping, State], Iterable]] = field(default_factory=dict)
    clauses: Tuple[Clause, ...] = ()

    def __post_init__(self) -> None:
        names = [clause.name for clause in self.clauses]
        if len(set(names)) != len(names):
            raise ValueError(f"action {self.name!r} has duplicate clause names")
        targets = [clause.var for clause in self.clauses if clause.kind == "update"]
        if len(set(targets)) != len(targets):
            raise ValueError(f"action {self.name!r} updates a variable twice")

    @property
    def guards(self) -> Tuple[Clause, ...]:
        return tuple(clause for clause in self.clauses if clause.kind == "guard")

    @property
    def updates(self) -> Tuple[Clause, ...]:
        return tuple(clause for clause in self.clauses if clause.kind == "update")

    @property
    def written_vars(self) -> Tuple[str, ...]:
        return tuple(clause.var for clause in self.updates)

    def bindings(self, constants: Mapping, state: State) -> Iterator[Dict[str, Any]]:
        """Enumerate parameter bindings (cartesian product of domains)."""
        if not self.params:
            yield {}
            return
        names = list(self.params)
        domains = []
        for name in names:
            domain = list(self.params[name](constants, state))
            if not domain:
                return
            domains.append(domain)
        for combo in itertools.product(*domains):
            yield dict(zip(names, combo))

    def enabled(self, state: State, params: Mapping) -> bool:
        return all(clause.fn(state, params) for clause in self.guards)

    def apply(self, state: State, params: Mapping) -> State:
        """The next state: update clauses evaluated against the *current*
        state (TLA+ semantics: all primed expressions see unprimed values)."""
        changes = {
            clause.var: clause.fn(state, params) for clause in self.updates
        }
        return state.assign(changes)

    def with_clauses(self, extra: Iterable[Clause], rename: Optional[str] = None) -> "Action":
        """A derived action with extra conjuncts (used by porting)."""
        return Action(
            name=rename or self.name,
            params=dict(self.params),
            clauses=self.clauses + tuple(extra),
        )

    def __repr__(self) -> str:
        return f"Action({self.name}, params={list(self.params)}, clauses={len(self.clauses)})"
