"""Driving one `ConfigChange` through a replica group's committed log.

The driver is the membership counterpart of a reshard step issuer: a
zero-cost node (like clients, it is not the measured resource) that
submits the encoded change as an ordinary client command and retries on
the jittered-exponential schedule until the group acknowledges it.  The
send ring rotates across the group's surviving replicas, so a dead first
hop — the common case, since a replacement is usually triggered *by* a
machine death — cannot wedge the transition.

At-most-once comes from the command's dedup identity: the client id is
unique per driver and the sequence number is the target config epoch, so
a retried change that already committed is answered from the group's
dedup window instead of re-entering the log (where the replicas' own
epoch guard would make it a no-op anyway — two independent layers).

The ack only says the change *entry* committed (and, for joint
consensus, that the transition has entered the joint phase).  Completion
of the whole transition — `final`/`alpha` applied — is observed by the
cluster through `on_apply_hooks`, not by this node.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.protocols.messages import ClientReply, ClientRequest, ConfigChange
from repro.sim.node import Node, NodeCosts
from repro.sim.units import ms, sec
from repro.workload.session import RetryPolicy

MEMBER_CLIENT_PREFIX = "__member__"

#: Change retries: comparable to the reshard step schedule — a WAN round
#: trip base, capped well below a lockstep worst case.
MEMBER_RETRY = RetryPolicy(retry_timeout=ms(500), retry_cap=sec(4),
                           backoff_base=ms(50), backoff_cap=ms(800))


class MembershipDriver(Node):
    """Submits one config change to a group and retries until acked."""

    ROTATE_AFTER = 2  # unanswered sends per replica before rotating

    def __init__(self, name, sim, network, site: str, ring: List[str],
                 change: ConfigChange, rng,
                 retry: RetryPolicy = MEMBER_RETRY,
                 on_ok: Optional[Callable[[], None]] = None) -> None:
        super().__init__(name, sim, network, site=site,
                         costs=NodeCosts(per_message=0, per_byte=0.0))
        self.change = change
        self.command = change.encode(f"{MEMBER_CLIENT_PREFIX}:{name}",
                                     change.epoch)
        self.retry = retry
        self.rng = rng
        self.on_ok = on_ok
        self.acked = False
        self.acked_at: Optional[int] = None
        self._ring = list(ring)
        self._ring_idx = 0
        self._sends = 0
        self._rejections = 0
        self._retry_timer = self.timer("member-retry")
        self.sim.schedule(0, self._send)

    def _send(self) -> None:
        if self.acked or not self.alive:
            return
        if self._sends and self._sends % self.ROTATE_AFTER == 0:
            self._ring_idx = (self._ring_idx + 1) % len(self._ring)
        self._sends += 1
        self.send(self._ring[self._ring_idx],
                  ClientRequest(command=self.command))
        self._retry_timer.arm(
            self.retry.retry_delay(self._sends - 1, self.rng), self._send)

    def on_message(self, src: str, message) -> None:
        if not isinstance(message, ClientReply) or self.acked:
            return
        if message.request_id != self.command.request_id:
            return  # stale reply of a superseded retry
        if not message.ok:
            # No leader yet (election in progress, or the hop retired):
            # back off, then retry — the ring keeps rotating.
            self._rejections += 1
            self._retry_timer.arm(
                self.retry.backoff_delay(self._rejections, self.rng),
                self._send)
            return
        self._retry_timer.cancel()
        self.acked = True
        self.acked_at = self.sim.now
        if self.on_ok is not None:
            self.on_ok()
