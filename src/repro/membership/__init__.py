"""Dynamic membership: the config algebra shared by both reconfiguration
styles the paper's parallel contrasts (Howard & Mortier, PAPERS.md).

The protocol family splits along the same seam as everything else in this
repo:

* **Joint consensus** (Raft side — Raft, Raft*, the PQL variants): a
  change from ``Cold`` to ``Cnew`` first commits a *joint* config; while
  joint, every election and every commit needs a majority of ``Cold``
  **and** a majority of ``Cnew``, so any two quorums across the
  transition intersect and no two leaders can be elected on disjoint
  voter views.  A second log entry (the *final* config) retires ``Cold``.

* **α-bounded reconfiguration** (Paxos side — MultiPaxos, PaxosPQL): the
  classic single-decree scheme from Lamport's "Paxos Made Simple" §on
  reconfiguration — a config chosen at slot ``s`` governs slots
  ``>= s + α``.  Proposers may keep at most ``α`` slots in flight past
  the commit frontier, so by the time a slot's voters could have changed
  the deciding config is already chosen and applied.  One log entry, no
  joint phase; the cost is the pipeline bound.

This module is the **pure** part: voter sets, quorum predicates, and the
slot-indexed config log, with no simulator or protocol imports — exactly
the surface the hypothesis property tests in `tests/membership/` drive.
The wire/command encoding lives in `repro.protocols.messages`
(`ConfigChange`); the live-replacement orchestration in
`repro.membership.driver` and `repro.shard.cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (AbstractSet, FrozenSet, Iterable, List, Optional,
                    Sequence, Tuple)

#: Default α for the Paxos-side window: generous enough that steady-state
#: pipelining never feels it (the repo's proposers keep far fewer slots in
#: flight), small enough that a reconfiguration becomes effective within
#: one burst of traffic.
DEFAULT_ALPHA = 256


def majority_of(voters: AbstractSet[str]) -> int:
    """Smallest quorum size over `voters` (strict majority)."""
    return len(voters) // 2 + 1


def is_quorum(voters: AbstractSet[str], acks: AbstractSet[str]) -> bool:
    """Whether `acks` contains a majority of `voters`.  Names outside the
    voter set never count — a retired replica's ack is inert."""
    return len(acks & voters) >= majority_of(voters)


def joint_quorum(old: AbstractSet[str], new: AbstractSet[str],
                 acks: AbstractSet[str]) -> bool:
    """The joint-consensus quorum rule: a majority of Cold AND of Cnew.

    Any two ack sets passing this predicate intersect (both contain a
    majority of `old`), which is the whole safety argument for changing
    membership without a stop-the-world barrier."""
    return is_quorum(old, acks) and is_quorum(new, acks)


@dataclass(frozen=True)
class VoterView:
    """A replica's current notion of who votes.

    `groups` is a tuple of voter sets that must EACH be satisfied: one
    entry when stable, two (Cold, Cnew) while a joint config is active.
    `epoch` rises by one per completed change; `phase` is ``"stable"`` or
    ``"joint"``."""

    groups: Tuple[FrozenSet[str], ...]
    epoch: int = 0
    phase: str = "stable"

    @staticmethod
    def stable(voters: Iterable[str], epoch: int = 0) -> "VoterView":
        return VoterView(groups=(frozenset(voters),), epoch=epoch)

    @staticmethod
    def joint(old: Iterable[str], new: Iterable[str],
              epoch: int) -> "VoterView":
        return VoterView(groups=(frozenset(old), frozenset(new)),
                         epoch=epoch, phase="joint")

    @property
    def voters(self) -> FrozenSet[str]:
        """Everyone with a vote in any active group (the peer set)."""
        out: FrozenSet[str] = frozenset()
        for group in self.groups:
            out = out | group
        return out

    @property
    def newest(self) -> FrozenSet[str]:
        """The target voter set (Cnew while joint, the only set when
        stable) — who survives once the change completes."""
        return self.groups[-1]

    def quorum(self, acks: AbstractSet[str]) -> bool:
        """Whether `acks` satisfies every active voter group."""
        return all(is_quorum(group, acks) for group in self.groups)

    def commit_index(self, match_of) -> int:
        """The highest index replicated on a quorum of every active
        group.  `match_of(name)` returns a voter's known match index
        (the caller supplies its own `last_index` for itself)."""
        candidate: Optional[int] = None
        for group in self.groups:
            matches = sorted(match_of(name) for name in group)
            need = majority_of(group)
            group_candidate = matches[len(matches) - need]
            if candidate is None or group_candidate < candidate:
                candidate = group_candidate
        return candidate if candidate is not None else 0


@dataclass
class ConfigLog:
    """The α-bounded config history: which voter set governs which slot.

    A config *decided* (chosen and applied) at slot ``d`` becomes
    *effective* at ``d + α``; slots below the first entry's effective
    slot are governed by the construction-time voter set.  Entries are
    appended in decision order with strictly rising epochs, so replay
    after a crash rebuilds the identical history."""

    initial: FrozenSet[str]
    alpha: int = DEFAULT_ALPHA
    # (effective_slot, voters, epoch), effective slots non-decreasing.
    entries: List[Tuple[int, FrozenSet[str], int]] = field(
        default_factory=list)

    def decide(self, slot: int, voters: Iterable[str], epoch: int) -> int:
        """Record a config decided at `slot`; returns its effective slot.
        Idempotent under replay (a re-decided epoch is ignored)."""
        if self.entries and epoch <= self.entries[-1][2]:
            return next(eff for eff, _v, e in self.entries if e >= epoch)
        effective = slot + self.alpha
        if self.entries and effective < self.entries[-1][0]:
            effective = self.entries[-1][0]
        self.entries.append((effective, frozenset(voters), epoch))
        return effective

    def voters_at(self, slot: int) -> FrozenSet[str]:
        """The voter set governing `slot`: the newest entry whose
        effective slot is <= `slot`, else the initial set.  Because a
        config decided at ``d`` only governs slots ``>= d + α``, no slot
        is ever judged by a config decided after ``slot - α``."""
        governing = self.initial
        for effective, voters, _epoch in self.entries:
            if effective <= slot:
                governing = voters
            else:
                break
        return governing

    def epoch_at(self, slot: int) -> int:
        governing = 0
        for effective, _voters, epoch in self.entries:
            if effective <= slot:
                governing = epoch
            else:
                break
        return governing

    @property
    def epoch(self) -> int:
        """Newest decided epoch (effective or not)."""
        return self.entries[-1][2] if self.entries else 0

    @property
    def current(self) -> FrozenSet[str]:
        """Newest decided voter set (the target of in-flight changes)."""
        return self.entries[-1][1] if self.entries else self.initial

    def window_open(self, next_slot: int, frontier: int) -> bool:
        """The proposer-side α gate: slot `next_slot` may be proposed
        only while it stays within α of the commit `frontier` — the
        invariant that makes `voters_at` sound."""
        return next_slot <= frontier + self.alpha
