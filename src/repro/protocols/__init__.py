"""Runnable consensus protocols on the simulator.

The protocol zoo mirrors the paper's evaluation:

- `multipaxos`   — MultiPaxos (Figure 1).
- `raft`         — Raft (Figure 2 black text; erases follower extras).
- `raftstar`     — Raft* (Figure 2 incl. blue text; never erases, rewrites
                   per-entry ballots, merges safe values on election).
- `pql`          — Raft*-PQL (ported Paxos Quorum Lease).
- `paxos_pql`    — PQL on MultiPaxos (the optimization's original home).
- `leaderlease`  — Raft* + Leader Lease (the LL baseline of §5.1).
- `mencius`      — Raft*-Mencius / Coordinated Raft* and Coordinated Paxos
                   (round-robin instance ownership + skips).
- `mux`          — the host-multiplexed transport: many group replicas on
                   one machine, cross-group message coalescing into
                   per-destination-host envelopes, merged leader beacons.
"""

from repro.protocols.config import ClusterConfig
from repro.protocols.mux import GroupMux, MuxDirectory
from repro.protocols.types import Ballot, Command, Entry, OpType

__all__ = [
    "Ballot",
    "ClusterConfig",
    "GroupMux",
    "MuxDirectory",
    "Command",
    "Entry",
    "OpType",
]
