"""Raft (Figure 2, black text).

Faithful points that matter to the paper's analysis (§3):

* followers **erase** extraneous entries to match the leader's log;
* the leader **never rewrites** terms of existing entries — a newly elected
  leader replicates old-term entries unchanged;
* consequently the leader only advances `commit_index` by counting replicas
  for entries of its **current term** (the §5.4.2 restriction).

Engineering behaviour from the evaluation's etcd baseline is kept: followers
forward client requests to the leader in batches, and the leader micro-batches
AppendEntries.  Reads are persisted through the log like writes (§4.4:
"a strongly consistent read operation is performed by persisting the
operation into the log as if it were a write").
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.membership import VoterView
from repro.protocols.base import ReplicaBase
from repro.protocols.config import ClusterConfig
from repro.protocols.messages import (
    AppendEntries,
    AppendEntriesReply,
    CatchUpReply,
    CatchUpSnapshot,
    ConfigChange,
    RequestVote,
    RequestVoteReply,
)
from repro.protocols.types import NOP, Command, Entry, OpType

MAX_BATCH_ENTRIES = 64


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


class _PeerState:
    """A leader's per-peer replication record.

    One slotted object instead of six parallel dicts (`next_index`,
    `match_index`, `_sent_hwm`, `_sent_commit`, `_hb_match`,
    `_last_progress`): the reply fast path touches most of these per
    message, and one dict probe per reply replaces up to six.

    `empty_append` interns the last empty-heartbeat `AppendEntries` sent
    to this peer: heartbeats to a caught-up follower repeat the same
    (term, prev, commit) for many ticks, so the same message object (and
    its size memo) is reused until one of those fields moves.  Safe
    because messages are frozen-in-practice — nothing mutates an
    `AppendEntries` after construction (DESIGN.md §12)."""

    __slots__ = ("next_index", "match_index", "sent_hwm", "sent_commit",
                 "hb_match", "last_progress", "empty_append")

    def __init__(self, next_index: int = 0, match_index: int = -1,
                 sent_hwm: int = -1, sent_commit: int = -1) -> None:
        self.next_index = next_index
        self.match_index = match_index
        self.sent_hwm = sent_hwm
        self.sent_commit = sent_commit
        self.hb_match = -1
        self.last_progress = 0
        self.empty_append: Optional[AppendEntries] = None


class RaftReplica(ReplicaBase):
    """A Raft replica."""

    # An empty Raft heartbeat (no entries, no commit news) only resets the
    # follower's election timer, so the host mux may merge it into the
    # host-level beacon.  Subclasses whose heartbeat replies carry state
    # (lease liveness, lease-holder sets) override this back to False.
    beacon_mergeable = True

    def __init__(self, name, sim, network, config: ClusterConfig, trace=None) -> None:
        super().__init__(name, sim, network, config, trace=trace)
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log: List[Entry] = []
        self.commit_index = -1
        self.role = Role.FOLLOWER
        self.leader_id: Optional[str] = None

        self._votes: set = set()
        # Leader-side per-peer replication state, one slotted record per
        # peer (next/match index, pipelining high-water marks, stall
        # detection, interned heartbeat skeleton) — see `_PeerState`.
        self._peer_state: Dict[str, _PeerState] = {}
        self._peer_records: List[_PeerState] = []
        # Entries-tuple reuse for `_send_append`: (start, stop, tuple) of
        # the last window built from the log.  Valid while this replica
        # leads (its log is append-only for the term, so a (start, stop)
        # slice never changes content); reset on any role change.
        self._batch_cache: Optional[tuple] = None

        # Dynamic membership (joint consensus): None until the first CONFIG
        # entry applies — every quorum expression below keeps its original
        # static-`config.majority` form while this is None, so a run without
        # membership changes is bit-identical to the pre-membership code.
        self._voters: Optional[VoterView] = None

        self._election_timer = self.timer("election")
        self._heartbeat_timer = self.timer("heartbeat")
        self._flush_timer = self.timer("append-flush")
        self._rng = sim_rng_for(self)

        self.register_handler(RequestVote, self._on_request_vote)
        self.register_handler(RequestVoteReply, self._on_vote_reply)
        self.register_handler(AppendEntries, self._on_append_entries)
        self.register_handler(AppendEntriesReply, self._on_append_reply)
        self.register_handler(CatchUpSnapshot, self._on_catch_up)
        self.register_handler(CatchUpReply, self._on_catch_up_reply)

        if config.initial_leader is not None:
            self._seed_initial_leader(config.initial_leader)
        else:
            self._reset_election_timer()

    # -- bootstrap ---------------------------------------------------------------

    def _seed_initial_leader(self, leader: str) -> None:
        """Start the cluster with an agreed-upon term-1 leader so benchmarks
        measure steady state rather than the first election."""
        self.current_term = 1
        self.voted_for = leader
        self.leader_id = leader
        if self.name == leader:
            # Defer until every replica has registered with the network.
            self.sim.schedule(0, self._assume_leadership, True)
        else:
            self._reset_election_timer()

    # -- helpers --------------------------------------------------------------

    @property
    def last_index(self) -> int:
        return len(self.log) - 1

    def term_at(self, index: int) -> int:
        if index < 0:
            return -1
        if index >= len(self.log):
            return -2  # sentinel: no entry
        return self.log[index].term

    def leader_hint(self) -> Optional[str]:
        return self.leader_id

    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    def beacon_info(self):
        if self.beacon_mergeable and self.role is Role.LEADER:
            return (self.name, self.current_term)
        return None

    def on_host_beacon(self, leader: str, term: int) -> None:
        # Conservative: only a beat for the current term resets the timer
        # (term changes travel through real AppendEntries, as before).
        if term == self.current_term and self.role is Role.FOLLOWER:
            self.leader_id = leader
            self._reset_election_timer()

    def _reset_election_timer(self) -> None:
        if self.joining or self.retired:
            # A freshly spliced-in replica must not disrupt the group with
            # a term bump before a committed config makes it a voter; a
            # retired replica must never campaign again.
            self._election_timer.cancel()
            return
        timeout = self._rng.randint(
            self.config.election_timeout_min, self.config.election_timeout_max
        )
        self._election_timer.arm(timeout, self._on_election_timeout)

    def _step_down(self, term: int, leader: Optional[str] = None) -> None:
        changed_term = term > self.current_term
        if changed_term:
            self.current_term = term
            self.voted_for = None
        self.role = Role.FOLLOWER
        if leader is not None:
            self.leader_id = leader
        self._batch_cache = None
        self._heartbeat_timer.cancel()
        self._flush_timer.cancel()
        self._reset_election_timer()

    # -- elections ---------------------------------------------------------------

    def _on_election_timeout(self) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self.leader_id = None
        self._votes = {self.name}
        self.trace.record(self.sim.now, self.name, "candidate", term=self.current_term)
        message = RequestVote(
            term=self.current_term,
            candidate=self.name,
            last_log_index=self.last_index,
            last_log_term=self.term_at(self.last_index),
        )
        for peer in self.peers:
            self.send(peer, message)
        self._reset_election_timer()

    def _log_up_to_date(self, msg: RequestVote) -> bool:
        my_last_term = self.term_at(self.last_index)
        if msg.last_log_term != my_last_term:
            return msg.last_log_term > my_last_term
        return msg.last_log_index >= self.last_index

    def _on_request_vote(self, src: str, msg: RequestVote) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
        granted = (
            msg.term == self.current_term
            and self.voted_for in (None, msg.candidate)
            and self._log_up_to_date(msg)
        )
        extras: Dict[int, Entry] = {}
        if granted:
            self.voted_for = msg.candidate
            self._reset_election_timer()
            extras = self._vote_extras(msg.last_log_index)
        self.send(
            src,
            RequestVoteReply(
                term=self.current_term,
                voter=self.name,
                granted=granted,
                extra_entries=extras,
            ),
        )

    def _vote_extras(self, candidate_last_index: int) -> Dict[int, Entry]:
        """Raft sends nothing extra; Raft* overrides (Figure 2a lines 14-16)."""
        return {}

    def _on_vote_reply(self, src: str, msg: RequestVoteReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.CANDIDATE or msg.term != self.current_term or not msg.granted:
            return
        self._votes.add(msg.voter)
        self._merge_vote_extras(msg)
        if self._voters is None:
            if len(self._votes) >= self.config.majority:
                self._assume_leadership()
        elif self._voters.quorum(self._votes):
            # Joint rule while a change is in flight: a majority of Cold
            # AND of Cnew — two leaders on disjoint voter views cannot
            # both win because any two joint quorums intersect.
            self._assume_leadership()

    def _merge_vote_extras(self, msg: RequestVoteReply) -> None:
        """Raft ignores extras; Raft* merges safe values (Figure 2a 22-29)."""

    def _assume_leadership(self, initial: bool = False) -> None:
        self.role = Role.LEADER
        self.leader_id = self.name
        self._election_timer.cancel()
        self._batch_cache = None
        self._peer_state = {
            peer: _PeerState(next_index=self.last_index + 1,
                             sent_hwm=self.last_index)
            for peer in self.peers
        }
        self._peer_records = list(self._peer_state.values())
        self.trace.record(self.sim.now, self.name, "leader", term=self.current_term)
        if not initial:
            # Commit-liveness no-op: gives the new term an entry to count.
            self._append_to_log(Command(
                op=OpType.NOP, client_id=f"__leader__{self.name}", seq=self.current_term,
                value_size=0,
            ))
        if self._voters is not None and self._voters.phase == "joint":
            # Safety net: the previous leader died between committing the
            # joint config and appending the final one — the new leader
            # finishes the transition so the group cannot stay joint
            # forever.
            self._append_config(ConfigChange(
                kind="final", epoch=self._voters.epoch,
                new=tuple(sorted(self._voters.newest))))
        self._broadcast_appends()
        self._heartbeat_timer.arm(self.config.heartbeat_interval, self._on_heartbeat)

    def _on_heartbeat(self) -> None:
        if self.role is not Role.LEADER:
            return
        refresh = self.beacon_refresh_due()
        stall_threshold = max(6 * self.config.heartbeat_interval, 600_000)
        now = self.sim.now
        for peer in self.peers:
            # Loss recovery: rewind the pipeline only after a *long* stall
            # (well beyond any RTT plus CPU queueing), or a slow-but-healthy
            # follower gets buried under retransmissions.
            state = self._peer(peer)
            match = state.match_index
            if match > state.hb_match:
                state.last_progress = now
            elif match < state.sent_hwm:
                if now - state.last_progress > stall_threshold:
                    state.sent_hwm = match
                    state.next_index = (min(state.next_index, match + 1)
                                        if match >= 0 else 0)
                    state.last_progress = now
            state.hb_match = match
            # A peer covered by the merged host beacon needs no empty
            # heartbeat: send only if there are entries or commit news —
            # except on refresh ticks, whose real keepalive re-advertises
            # the commit frontier in case the append that first carried it
            # was dropped (`_sent_commit` advances at send, not delivery).
            covered = (not refresh) and self.beacon_covered(peer)
            self._send_append(peer, heartbeat=not covered)
        self._heartbeat_timer.arm(self.config.heartbeat_interval, self._on_heartbeat)

    # -- client path -----------------------------------------------------------------

    def submit_command(self, command: Command) -> None:
        if self.role is Role.LEADER:
            if self.obs is not None:
                self.obs_phase(command.trace_id, "append", index=len(self.log))
            self._append_to_log(command)
            self._schedule_flush()
        else:
            self.forward_to_leader(command)

    def _append_to_log(self, command: Command) -> None:
        term = self.current_term
        if command.op is OpType.CONFIG:
            self._membership_active = True
        self.log.append(Entry.make(term, command, term))

    def _append_config(self, change: ConfigChange) -> None:
        """Leader-originated config entry (the auto-appended `final`).
        The `__config__` client id keeps it inside the store's dedup
        window so a second leader re-appending the same epoch is answered
        idempotently rather than double-applied (the epoch guard in
        `_on_config_applied` makes the re-apply a no-op anyway)."""
        self._append_to_log(change.encode(
            client_id=f"__config__{self.name}", seq=change.epoch))
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        if not self._flush_timer.armed:
            self._flush_timer.arm(self.config.append_flush_interval, self._broadcast_appends)

    # -- replication -----------------------------------------------------------------

    def _broadcast_appends(self) -> None:
        self._flush_timer.cancel()
        if self.role is not Role.LEADER:
            return
        for peer in self.peers:
            self._send_append(peer)

    def _peer(self, peer: str) -> _PeerState:
        """This leader's replication record for `peer` (created on demand
        with the pre-leadership defaults, though `_assume_leadership`
        seeds every peer before any caller runs)."""
        state = self._peer_state.get(peer)
        if state is None:
            state = self._peer_state[peer] = _PeerState(
                next_index=self.last_index + 1)
            self._peer_records.append(state)
        return state

    def _send_append(self, peer: str, heartbeat: bool = False) -> None:
        """Ship the next window of entries to `peer`.

        Pipelined: each call sends only entries beyond what was already
        shipped (`sent_hwm`), with `prev` pointing at the previous shipped
        entry, so back-to-back flushes do not retransmit the in-flight
        suffix.  Sends nothing when there is neither new content nor a new
        commit index to advertise, unless this is a heartbeat.
        """
        state = self._peer_state.get(peer)
        if state is None:
            state = self._peer(peer)
        start = state.next_index
        shipped = state.sent_hwm + 1
        if shipped > start:
            start = shipped
        commit = self.commit_index
        last = len(self.log) - 1
        if start > last:
            # Nothing new to ship — the common case for a flush tick on an
            # idle pipeline.  Bail before touching the log unless a commit
            # advance (or an explicit heartbeat) must be advertised.
            if not heartbeat and commit <= state.sent_commit:
                return
            # Anchor the consistency check at a point the peer is known to
            # have.  Intern the empty heartbeat: to a caught-up follower
            # the same (term, prev, commit) repeats for many ticks, so the
            # message object (and its size memo) is reused until one of
            # those fields moves.
            prev = state.match_index
            if state.sent_hwm < prev:
                state.sent_hwm = prev
            state.sent_commit = commit
            message = state.empty_append
            if (message is None
                    or message.term != self.current_term
                    or message.prev_index != prev
                    or message.leader_commit != commit):
                message = state.empty_append = AppendEntries.make(
                    term=self.current_term,
                    leader=self.name,
                    prev_index=prev,
                    prev_term=self.term_at(prev),
                    entries=(),
                    leader_commit=commit,
                )
            self.send(peer, message)
            return
        # The message aliases the leader's log entries, and receivers
        # adopt those references into their own logs: safe because an
        # `Entry` is never mutated in place anywhere — Raft*'s ballot
        # rewrite replaces entry objects rather than writing through
        # shared ones.  The window tuple itself is cached per (start,
        # stop): fan-out to several peers at the same offset re-sends one
        # tuple instead of re-slicing the log per peer.
        stop = start + MAX_BATCH_ENTRIES
        if stop > last + 1:
            stop = last + 1
        cached = self._batch_cache
        if cached is not None and cached[0] == start and cached[1] == stop:
            entries = cached[2]
        else:
            entries = tuple(self.log[start:stop])
            self._batch_cache = (start, stop, entries)
        prev = start - 1
        hwm = prev + len(entries)
        if state.sent_hwm < hwm:
            state.sent_hwm = hwm
        state.sent_commit = commit
        self.send(peer, AppendEntries.make(
            term=self.current_term,
            leader=self.name,
            prev_index=prev,
            prev_term=self.term_at(prev),
            entries=entries,
            leader_commit=commit,
        ))

    def _on_append_entries(self, src: str, msg: AppendEntries) -> None:
        if msg.term < self.current_term:
            self.send(src, AppendEntriesReply(
                term=self.current_term, follower=self.name,
                success=False, match_index=self.last_index,
            ))
            return
        if msg.term > self.current_term or self.role is not Role.FOLLOWER:
            self._step_down(msg.term, leader=msg.leader)
        self.leader_id = msg.leader
        self._reset_election_timer()

        success, match = self._try_append(msg)
        if success:
            self._advance_commit_follower(min(msg.leader_commit, match))
        self.send(src, self._make_append_reply(success, match))

    def _make_append_reply(self, success: bool, match: int) -> AppendEntriesReply:
        # Fresh construction, never interned: PQL mutates the reply
        # (`lease_holders`) after this returns.
        return AppendEntriesReply.make(
            term=self.current_term, follower=self.name, success=success,
            match_index=match,
        )

    def _try_append(self, msg: AppendEntries) -> tuple:
        """Raft semantics: consistency check, erase conflicts, append.
        Returns (success, match_index)."""
        if msg.prev_index >= 0 and self.term_at(msg.prev_index) != msg.prev_term:
            return False, min(self.last_index, msg.prev_index - 1)
        insert = msg.prev_index + 1
        for offset, entry in enumerate(msg.entries):
            index = insert + offset
            if index <= self.last_index:
                if self.log[index].term != entry.term:
                    # Conflict: erase the extraneous suffix (the step that has
                    # no MultiPaxos counterpart, §3).
                    del self.log[index:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
            if entry.command.op is OpType.CONFIG:
                self._membership_active = True
        return True, msg.prev_index + len(msg.entries)

    def _advance_commit_follower(self, new_commit: int) -> None:
        if new_commit > self.commit_index:
            self.commit_index = min(new_commit, self.last_index)
            self._apply_committed()

    def _on_append_reply(self, src: str, msg: AppendEntriesReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.LEADER or msg.term != self.current_term:
            return
        peer = msg.follower
        state = self._peer(peer)
        if msg.success:
            if msg.match_index > state.match_index:
                state.match_index = msg.match_index
            state.next_index = state.match_index + 1
            self._leader_advance_commit(msg)
            self._send_append(peer)
        else:
            next_index = state.next_index - 1
            if msg.match_index + 1 < next_index:
                next_index = msg.match_index + 1
            if next_index < 0:
                next_index = 0
            state.next_index = next_index
            # Rewind the pipeline so the suffix is resent from next_index.
            state.sent_hwm = next_index - 1
            self._handle_append_reject(peer, msg)
            self._send_append(peer)

    def _handle_append_reject(self, peer: str, msg: AppendEntriesReply) -> None:
        """Hook for Raft* (reject-because-longer needs no-op padding)."""

    def _leader_advance_commit(self, msg: AppendEntriesReply) -> None:
        """Advance commit_index by majority counting; Raft restricts the
        counted entry to the current term (§5.4.2)."""
        if self._voters is not None:
            # Membership-aware commit rule: the highest index replicated
            # on a quorum of EVERY active voter group (one group when
            # stable, Cold and Cnew while joint).  Acks from non-voters
            # (a catching-up joiner, a retired replica) are inert.
            peer_state = self._peer_state
            last = self.last_index
            own = self.name

            def match_of(name: str) -> int:
                if name == own:
                    return last
                state = peer_state.get(name)
                return state.match_index if state is not None else -1

            candidate = min(self._voters.commit_index(match_of), last)
        else:
            matches = sorted(state.match_index for state in self._peer_records)
            # Index replicated on at least `majority` replicas including
            # self: the f-th largest peer match (0-indexed from the end).
            candidate = matches[len(matches) - self.config.f]
            candidate = min(candidate, self.last_index)
        while candidate > self.commit_index and not self._can_commit_at(candidate):
            candidate -= 1
        if candidate > self.commit_index:
            self.commit_index = candidate
            self._apply_committed()
            self._schedule_flush()  # propagate the new commit index

    def _can_commit_at(self, index: int) -> bool:
        return self.term_at(index) == self.current_term

    # -- dynamic membership (joint consensus) -------------------------------------
    #
    # The Raft side of the paper's reconfiguration parallel: a change from
    # Cold to Cnew goes through an intermediate JOINT config under which
    # every election and commit needs a majority of both sets.  Two log
    # entries drive it — `joint(e)` then `final(e)` — and both take effect
    # at APPLY time, so every replica of the group switches voter views at
    # the same log position and replay after a crash is idempotent (the
    # epoch guard skips already-completed transitions).  This trades the
    # canonical effect-at-append rule for determinism the repo's replay
    # paths rely on; the driver serializes changes (one epoch in flight),
    # which keeps the simplification safe.

    def _on_config_applied(self, index: int, command: Command) -> None:
        change = ConfigChange.decode(command)
        if change.kind == "joint":
            if change.epoch != self.config_epoch + 1:
                return  # replay of a completed epoch, or a stale retry
            if self._voters is not None and self._voters.phase == "joint":
                return
            old = frozenset(change.old)
            new = frozenset(change.new)
            self._voters = VoterView.joint(old, new, change.epoch)
            self._splice_peers(old | new)
            if self.role is Role.LEADER:
                self._catch_up_new_peers(new - old)
                # Cold∧Cnew is now in force; immediately log the final
                # config to retire Cold (committed under the joint rule).
                self._append_config(ConfigChange(
                    kind="final", epoch=change.epoch,
                    new=tuple(sorted(new))))
        elif change.kind == "final":
            if change.epoch != self.config_epoch + 1:
                return
            new = frozenset(change.new)
            self.config_epoch = change.epoch
            self._voters = VoterView.stable(new, change.epoch)
            self._splice_peers(new)
            if self.name not in new:
                self._retire()
            elif self.joining:
                # This replica is now a committed voter: join the election
                # machinery.
                self.joining = False
                if self.role is Role.FOLLOWER:
                    self._reset_election_timer()

    def _splice_peers(self, members) -> None:
        """Point the replication fan-out at the active member set (sorted
        for deterministic send order).  Leader-side records for new peers
        are created on demand; records of removed peers become inert —
        the membership-aware commit rule only consults voter names."""
        self.peers = sorted(m for m in members if m != self.name)
        if self.role is Role.LEADER:
            for peer in self.peers:
                self._peer(peer)
        self._batch_cache = None

    def _catch_up_new_peers(self, joiners) -> None:
        """Ship a fresh joiner the full log in one snapshot message.  The
        repo never compacts logs, so replaying it through the ordinary
        apply path rebuilds store, dedup windows, and config state exactly
        (`KVStore.export_full`/`install_full` is the compaction-ready
        alternative, property-tested in tests/membership/)."""
        for peer in sorted(joiners):
            state = self._peer(peer)
            if state.match_index >= 0:
                continue  # already has log state; normal appends suffice
            self.send(peer, CatchUpSnapshot(
                sender=self.name, entries=tuple(self.log),
                commit_index=self.commit_index, term=self.current_term))

    def _on_catch_up(self, src: str, msg: CatchUpSnapshot) -> None:
        if msg.term < self.current_term:
            return
        if msg.term > self.current_term or self.role is not Role.FOLLOWER:
            self._step_down(msg.term, leader=msg.sender)
        self.leader_id = msg.sender
        self._reset_election_timer()
        if not self.log:
            # Install is only ever wholesale into an EMPTY log (the fresh
            # joiner); a lagging rejoiner keeps its log and lets ordinary
            # append backtracking repair it.
            self.log = list(msg.entries)
            if self._membership_active or any(
                    entry.command.op is OpType.CONFIG for entry in self.log):
                self._membership_active = True
            self._advance_commit_follower(
                min(msg.commit_index, self.last_index))
        self.send(src, CatchUpReply(
            follower=self.name, last_index=self.last_index,
            term=self.current_term))

    def _on_catch_up_reply(self, src: str, msg: CatchUpReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.LEADER or msg.term != self.current_term:
            return
        state = self._peer(msg.follower)
        if msg.last_index > state.match_index:
            state.match_index = msg.last_index
            state.next_index = msg.last_index + 1
            if state.sent_hwm < msg.last_index:
                state.sent_hwm = msg.last_index
            self._leader_advance_commit(None)

    def _retire(self) -> None:
        """This replica was removed by a completed config: fence every
        client-facing path (`ReplicaBase`) and stand down permanently."""
        self.retired = True
        self.joining = False
        if self.role is Role.LEADER:
            self._step_down(self.current_term)
        self._election_timer.cancel()
        self._heartbeat_timer.cancel()

    # -- apply --------------------------------------------------------------------

    def _apply_committed(self) -> None:
        commit = self.commit_index
        applied = self.last_applied
        if commit <= applied:
            return
        if (not self._membership_active and not self.on_apply_hooks
                and self.obs is None):
            clients = self._clients
            relays = self._relays
            if not clients and not relays:
                # Nobody is waiting on any completion: hand the store the
                # whole contiguous batch instead of one `apply_entry`
                # frame per entry.
                self.store.apply_batch(self.log, applied + 1, commit + 1)
                self.last_applied = commit
                return
            # Mixed case (the steady state: a leader with pending client
            # requests, or a follower holding request records from before
            # a redirect): entries someone waits on take the full
            # `apply_entry` path — completion semantics are observable
            # message flow — and everything else reduces to `store.apply`
            # plus the `last_applied` bump.
            log = self.log
            store_apply = self.store.apply
            while applied < commit:
                applied += 1
                entry = log[applied]
                command = entry.command
                rid = (command.client_id, command.seq)
                if rid in clients or rid in relays:
                    self.apply_entry(applied, entry)
                else:
                    store_apply(command)
                    self.last_applied = applied
            return
        while self.last_applied < self.commit_index:
            index = self.last_applied + 1
            self.apply_entry(index, self.log[index])

    # -- lifecycle ------------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self._election_timer.cancel()
        self._heartbeat_timer.cancel()
        self._flush_timer.cancel()
        # Persist durable state (term, vote, log) across the crash.
        self.stable["term"] = self.current_term
        self.stable["voted_for"] = self.voted_for
        self.stable["log"] = [entry.copy() for entry in self.log]
        if self._membership_active:
            # Membership view survives the crash (VoterView is frozen, the
            # peer list is rebuilt as a copy).  Re-applying CONFIG entries
            # during recovery replay is then idempotent: the epoch guard in
            # `_on_config_applied` skips completed transitions.
            self.stable["membership"] = (
                self._voters, self.config_epoch, self.retired,
                list(self.peers))

    def on_recover(self) -> None:
        self.current_term = self.stable.get("term", 0)
        self.voted_for = self.stable.get("voted_for")
        self.log = [entry.copy() for entry in self.stable.get("log", [])]
        self.commit_index = -1
        self.last_applied = -1
        self.reset_store()
        self.role = Role.FOLLOWER
        self.leader_id = None
        self._votes = set()
        self._batch_cache = None
        membership = self.stable.get("membership")
        if membership is not None:
            self._voters, self.config_epoch, self.retired, peers = membership
            self.peers = list(peers)
            self._membership_active = True
        self._reset_election_timer()


def sim_rng_for(replica: ReplicaBase):
    """Derive a deterministic per-replica RNG from the network's stream."""
    from repro.sim.rng import SplitRng

    root = getattr(replica.network, "rng_root", None)
    if root is None:
        root = SplitRng(0)
    return root.stream(f"replica:{replica.name}")
