"""Core value types shared by all protocols."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpType(enum.Enum):
    """Operations of the replicated key-value state machine."""

    PUT = "put"
    GET = "get"
    NOP = "nop"  # no-op / skip entries (leader no-ops, Mencius skips)
    # Live resharding: a donor group exports a hash range (and the dedup
    # state of clients whose last command touched it), a recipient group
    # imports it.  Both go through the committed log so every replica of a
    # group flips ownership at the same log position.
    MIGRATE_OUT = "migrate_out"
    MIGRATE_IN = "migrate_in"
    # Cross-shard transactions (repro.shard.txn).  A single-shard
    # transaction is one atomic multi-op command (`TXN`); cross-shard
    # transactions are two-phase commit where every protocol step is an
    # ordinary command through a participant group's committed log, so a
    # participant survives its leader crashing mid-transaction:
    #   TXN_PREPARE  lock keys + stage writes + vote (participant log);
    #   TXN_COMMIT   install staged writes, release locks;
    #   TXN_ABORT    drop staged writes, release locks;
    #   TXN_DECIDE   the coordinator's commit/abort decision, replicated
    #                in the transaction's *home* shard (first decision
    #                recorded wins — recovery replays this log);
    #   TXN_RECOVER  a restarted coordinator's fenced query for its
    #                prepared transactions and logged decisions.
    TXN = "txn"
    TXN_PREPARE = "txn_prepare"
    TXN_COMMIT = "txn_commit"
    TXN_ABORT = "txn_abort"
    TXN_DECIDE = "txn_decide"
    TXN_RECOVER = "txn_recover"
    # Dynamic membership (repro.membership): a logged voter-set change.
    # The command's value carries the `ConfigChange` JSON payload (kind,
    # epoch, voter sets); the store treats it as a no-op — the *protocol*
    # reacts when the entry applies (`ReplicaBase._on_config_applied`),
    # so every replica of a group switches voter views at the same log
    # position.
    CONFIG = "config"


class Consistency(enum.Enum):
    """Per-operation consistency level of the session API.

    DEFAULT       — the serving protocol chooses: lease protocols (PQL,
                    LL) answer reads from local state under a valid lease,
                    everything else goes through the committed log.  This
                    is exactly the pre-session behaviour.
    LINEARIZABLE  — force the operation through the committed log even on
                    a protocol that could serve it from a lease.
    LEASE_LOCAL   — ask for the lease-read path explicitly; on protocols
                    without lease machinery (Raft, MultiPaxos, Mencius)
                    this degrades to the log path, which is still
                    linearizable — just slower.
    """

    DEFAULT = "default"
    LINEARIZABLE = "linearizable"
    LEASE_LOCAL = "lease_local"


@dataclass(frozen=True, slots=True)
class Command:
    """A client command to the replicated state machine.

    `value_size` is the *simulated* payload size in bytes: the evaluation
    replays 8 B and 4 KB request sizes without materializing 4 KB strings.
    """

    op: OpType
    key: str = ""
    value: Optional[str] = None
    client_id: str = ""
    seq: int = 0
    value_size: int = 8
    # Pipelined sessions: every sequence number <= acked_low_water has been
    # acknowledged to the client, so the store may evict those slots from
    # its at-most-once dedup window.  Rides inside the command (not the
    # transport envelope) because eviction must be deterministic across a
    # group's replicas — it happens at apply time, from the log.  -1 means
    # "no information" (legacy single-slot clients, coordinator commands):
    # nothing is ever evicted on its account.
    acked_low_water: int = -1
    # Per-operation consistency level (reads only; see `Consistency`).
    consistency: Consistency = Consistency.DEFAULT
    # Observability: the request-lifecycle span this command belongs to
    # (repro.obs).  None means "my own request id" — only commands issued
    # on *behalf* of another request carry an explicit trace (2PC child
    # commands are stamped with the parent transaction's trace so all of
    # a transaction's prepares/commits join one span).
    trace: Optional[str] = None

    @property
    def request_id(self) -> Tuple[str, int]:
        return (self.client_id, self.seq)

    @property
    def trace_id(self) -> Optional[str]:
        """Span identity for `repro.obs`: the stamped parent trace if any,
        else this command's own (client_id, seq) identity."""
        if self.trace is not None:
            return self.trace
        if not self.client_id:
            return None
        return f"{self.client_id}:{self.seq}"

    @property
    def allows_local_read(self) -> bool:
        """Whether a lease protocol may answer this read from local state
        (LINEARIZABLE is the explicit opt-out that forces the log)."""
        return self.consistency is not Consistency.LINEARIZABLE

    def wire_size(self) -> int:
        """Approximate bytes on the wire."""
        base = 24 + len(self.key)
        if self.op in _VALUE_CARRYING_OPS:
            # MIGRATE_IN carries the exported range snapshot as its value,
            # TXN/TXN_PREPARE the transaction's operation list; `value_size`
            # is set to the blob's real size at construction so replicating
            # the payload costs realistic bytes.
            return base + self.value_size
        return base

    @property
    def is_read(self) -> bool:
        return self.op is OpType.GET

    @property
    def is_write(self) -> bool:
        return self.op is OpType.PUT

    @property
    def is_nop(self) -> bool:
        return self.op is OpType.NOP

    @property
    def is_data(self) -> bool:
        """A client data operation, subject to shard ownership routing
        (migration and no-op commands bypass the ownership guard)."""
        return self.op in _DATA_OPS

    @property
    def is_txn(self) -> bool:
        """Any transaction-layer command (repro.shard.txn)."""
        return self.op in _TXN_OPS

    @property
    def shard_checked(self) -> bool:
        """Commands whose keys must be owned by the serving group: client
        data operations plus single-shard transactions.  2PC commands are
        coordinator-routed and ownership-checked inside the store at
        prepare time instead."""
        return self.op in _SHARD_CHECKED_OPS

    # `Command.make(...)` — the hot-path constructor — is bound after the
    # class body (see `_bind_fast_constructors`): it stores through the
    # slot descriptors directly, skipping the frozen-dataclass `__init__`
    # (one `object.__setattr__` name lookup per field).  Field-for-field
    # equivalent to the dataclass path, property-tested in
    # tests/protocols/test_fast_construct.py.


# Hot-path op sets, built once (an inline tuple literal of enum members is
# rebuilt on every membership test).
_VALUE_CARRYING_OPS = frozenset(
    {OpType.PUT, OpType.MIGRATE_IN, OpType.TXN, OpType.TXN_PREPARE,
     OpType.CONFIG})
_DATA_OPS = frozenset({OpType.PUT, OpType.GET})
_TXN_OPS = frozenset(
    {OpType.TXN, OpType.TXN_PREPARE, OpType.TXN_COMMIT, OpType.TXN_ABORT,
     OpType.TXN_DECIDE, OpType.TXN_RECOVER})
_SHARD_CHECKED_OPS = frozenset({OpType.PUT, OpType.GET, OpType.TXN})


NOP = Command(op=OpType.NOP, client_id="__nop__", seq=0, value_size=0)


@dataclass(frozen=True, slots=True)
class Ballot:
    """A globally unique, totally ordered proposal number.

    MultiPaxos ballots are (round, proposer) pairs; Raft terms map onto
    ballots with proposer resolved by the per-term single-leader election.
    """

    round: int = 0
    proposer: str = ""

    def next_for(self, proposer: str) -> "Ballot":
        return Ballot(self.round + 1, proposer)

    def __lt__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) < (other.round, other.proposer)

    def __le__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) <= (other.round, other.proposer)

    def __gt__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) > (other.round, other.proposer)

    def __ge__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) >= (other.round, other.proposer)


@dataclass(slots=True)
class Entry:
    """A log entry.

    `term` is the Raft term (never rewritten by Raft; rewritten on merge by
    Raft*'s BecomeLeader), `ballot` is Raft*'s added per-entry ballot field —
    the field whose absence in Raft blocks the direct refinement to Paxos
    (§3).  For MultiPaxos entries, `term` and `ballot` coincide with the
    accepted ballot round.
    """

    term: int
    command: Command
    ballot: int = -1

    def wire_size(self) -> int:
        return 16 + self.command.wire_size()

    def copy(self) -> "Entry":
        return Entry(term=self.term, command=self.command, ballot=self.ballot)


def _bind_fast_constructors() -> None:
    """Attach `Command.make` / `Entry.make`: allocation via
    `object.__new__` plus direct slot-descriptor stores.

    The generated dataclass `__init__` of a frozen slots class routes
    every field through `object.__setattr__`, which re-resolves the slot
    descriptor by name on each call; binding the descriptors' `__set__`
    once here removes that lookup from the per-construction cost.  The
    results are indistinguishable from dataclass construction (`__eq__`,
    `hash`, every field and method) — the invariant the hot-path callers
    and the equivalence property tests rely on.
    """
    new = object.__new__
    (c_op, c_key, c_value, c_client, c_seq, c_vsize, c_alw, c_cons,
     c_trace) = (Command.__dict__[name].__set__ for name in (
         "op", "key", "value", "client_id", "seq", "value_size",
         "acked_low_water", "consistency", "trace"))

    def make_command(op: OpType, key: str = "",
                     value: Optional[str] = None, client_id: str = "",
                     seq: int = 0, value_size: int = 8,
                     acked_low_water: int = -1,
                     consistency: Consistency = Consistency.DEFAULT,
                     trace: Optional[str] = None) -> Command:
        self = new(Command)
        c_op(self, op)
        c_key(self, key)
        c_value(self, value)
        c_client(self, client_id)
        c_seq(self, seq)
        c_vsize(self, value_size)
        c_alw(self, acked_low_water)
        c_cons(self, consistency)
        c_trace(self, trace)
        return self

    def make_entry(term: int, command: Command, ballot: int = -1) -> Entry:
        self = new(Entry)
        self.term = term
        self.command = command
        self.ballot = ballot
        return self

    Command.make = staticmethod(make_command)
    Entry.make = staticmethod(make_entry)


_bind_fast_constructors()
