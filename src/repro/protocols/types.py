"""Core value types shared by all protocols."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpType(enum.Enum):
    """Operations of the replicated key-value state machine."""

    PUT = "put"
    GET = "get"
    NOP = "nop"  # no-op / skip entries (leader no-ops, Mencius skips)
    # Live resharding: a donor group exports a hash range (and the dedup
    # state of clients whose last command touched it), a recipient group
    # imports it.  Both go through the committed log so every replica of a
    # group flips ownership at the same log position.
    MIGRATE_OUT = "migrate_out"
    MIGRATE_IN = "migrate_in"


@dataclass(frozen=True)
class Command:
    """A client command to the replicated state machine.

    `value_size` is the *simulated* payload size in bytes: the evaluation
    replays 8 B and 4 KB request sizes without materializing 4 KB strings.
    """

    op: OpType
    key: str = ""
    value: Optional[str] = None
    client_id: str = ""
    seq: int = 0
    value_size: int = 8

    @property
    def request_id(self) -> Tuple[str, int]:
        return (self.client_id, self.seq)

    def wire_size(self) -> int:
        """Approximate bytes on the wire."""
        base = 24 + len(self.key)
        if self.op in (OpType.PUT, OpType.MIGRATE_IN):
            # MIGRATE_IN carries the exported range snapshot as its value;
            # `value_size` is set to the blob's real size at construction so
            # replicating the import costs realistic bytes.
            return base + self.value_size
        return base

    @property
    def is_read(self) -> bool:
        return self.op is OpType.GET

    @property
    def is_write(self) -> bool:
        return self.op is OpType.PUT

    @property
    def is_nop(self) -> bool:
        return self.op is OpType.NOP

    @property
    def is_data(self) -> bool:
        """A client data operation, subject to shard ownership routing
        (migration and no-op commands bypass the ownership guard)."""
        return self.op in (OpType.PUT, OpType.GET)


NOP = Command(op=OpType.NOP, client_id="__nop__", seq=0, value_size=0)


@dataclass(frozen=True)
class Ballot:
    """A globally unique, totally ordered proposal number.

    MultiPaxos ballots are (round, proposer) pairs; Raft terms map onto
    ballots with proposer resolved by the per-term single-leader election.
    """

    round: int = 0
    proposer: str = ""

    def next_for(self, proposer: str) -> "Ballot":
        return Ballot(self.round + 1, proposer)

    def __lt__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) < (other.round, other.proposer)

    def __le__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) <= (other.round, other.proposer)

    def __gt__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) > (other.round, other.proposer)

    def __ge__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) >= (other.round, other.proposer)


@dataclass
class Entry:
    """A log entry.

    `term` is the Raft term (never rewritten by Raft; rewritten on merge by
    Raft*'s BecomeLeader), `ballot` is Raft*'s added per-entry ballot field —
    the field whose absence in Raft blocks the direct refinement to Paxos
    (§3).  For MultiPaxos entries, `term` and `ballot` coincide with the
    accepted ballot round.
    """

    term: int
    command: Command
    ballot: int = -1

    def wire_size(self) -> int:
        return 16 + self.command.wire_size()

    def copy(self) -> "Entry":
        return Entry(term=self.term, command=self.command, ballot=self.ballot)
