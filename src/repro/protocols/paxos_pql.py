"""Paxos Quorum Leases on MultiPaxos (Figure 7 / Appendix A.1, B.3).

The optimization in its original home.  Structurally identical to the ported
Raft*-PQL, which is the point: the added/modified subactions are

* **Read/LocalRead** (added) — serve reads locally under a quorum lease once
  every instance that modified the key is in the chosen set;
* **Phase2b** (modified) — acceptors attach the leases they granted to their
  acceptOK;
* **Learn** (modified) — the proposer waits for acceptOKs from every holder
  in the collected holder set before the value becomes executable.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.protocols.leases import LeaseManager
from repro.protocols.messages import Accept, Accepted, LeaseAck, LeaseGrant
from repro.protocols.multipaxos import MultiPaxosReplica
from repro.protocols.types import Command
from repro.sim.units import ms


class PaxosPQLReplica(MultiPaxosReplica):
    """MultiPaxos with Paxos Quorum Leases."""

    # Accepted replies report lease holders; the commit wait needs them,
    # so keepalives stay real (see RaftStarPQLReplica).
    beacon_mergeable = False

    def __init__(self, name, sim, network, config, trace=None) -> None:
        self._last_modified: Dict[str, int] = {}
        self._pending_reads: List[Command] = []
        self._acceptances_by: Dict[int, set] = {}
        self._reported_holders: Dict[str, tuple] = {}
        # Members removed by a config change but kept in the accept
        # fan-out until their last acked lease grants expire (see
        # `_splice_peers`).
        self._lingering: Set[str] = set()
        super().__init__(name, sim, network, config, trace=trace)
        self._linger_timer = self.timer("pql-linger")
        self.leases = LeaseManager(
            self, duration=config.lease_duration, renew_interval=config.lease_renew_interval,
        )
        self.register_handler(LeaseGrant, lambda src, msg: self.leases.on_grant(src, msg))
        self.register_handler(LeaseAck, lambda src, msg: self.leases.on_ack(msg))
        self.leases.start()
        self._read_sweep_timer = self.timer("read-sweep")
        self._read_sweep_timer.arm(ms(50), self._sweep_pending_reads)
        self._choose_sweep_timer = self.timer("choose-sweep")
        self._choose_sweep_timer.arm(ms(100), self._sweep_pending_chooses)
        self.local_reads_served = 0

    # -- LocalRead ---------------------------------------------------------

    def submit_command(self, command: Command) -> None:
        # LINEARIZABLE reads opt out of the lease path and go through
        # the log (`Command.allows_local_read`).
        if (command.is_read and command.allows_local_read
                and self.leases.has_quorum_lease()):
            if self._read_ready(command):
                self.local_reads_served += 1
                self.serve_local_read(command)
            else:
                self._pending_reads.append(command)
            return
        super().submit_command(command)

    def _read_ready(self, command: Command) -> bool:
        last_mod = self._last_modified.get(command.key, -1)
        return self.commit_index >= last_mod

    def _drain_pending_reads(self) -> None:
        still = []
        for command in self._pending_reads:
            if self._read_ready(command):
                self.local_reads_served += 1
                self.serve_local_read(command)
            elif not self.leases.has_quorum_lease():
                super().submit_command(command)
            else:
                still.append(command)
        self._pending_reads = still

    def _sweep_pending_reads(self) -> None:
        self._drain_pending_reads()
        self._read_sweep_timer.arm(ms(50), self._sweep_pending_reads)

    def _sweep_pending_chooses(self) -> None:
        """Instances blocked on a lease holder become choosable once the
        holder's leases expire; re-check them as time passes."""
        if self.phase1_succeeded:
            for index, voters in list(self._accept_counts.items()):
                if index in self.chosen:
                    continue
                if self._accept_quorum(index, voters) and self._may_choose(index):
                    self._choose(index)
        self._choose_sweep_timer.arm(ms(100), self._sweep_pending_chooses)

    # -- modified Phase2b: attach granted leases ----------------------------------

    def _accepted_lease_holders(self) -> frozenset:
        return self.leases.active_holders()

    def _after_accept(self, index: int, command: Command, msg: Accept) -> None:
        if command.is_write:
            self._last_modified[command.key] = index

    def _accept_locally(self, msg: Accept) -> None:
        super()._accept_locally(msg)
        for index, command in msg.instances.items():
            if command.is_write:
                self._last_modified[command.key] = index

    # -- modified Learn: wait for every lease holder ---------------------------------

    def _note_accepted_reply(self, src: str, msg: Accepted) -> None:
        self._reported_holders[msg.acceptor] = (self.sim.now, msg.lease_holders)
        for index in msg.instance_ids:
            self._acceptances_by.setdefault(index, set()).add(msg.acceptor)

    def _holder_set(self) -> frozenset:
        holders = set(self.leases.active_holders())
        horizon = self.sim.now - self.config.lease_duration
        for reported_at, reported in self._reported_holders.values():
            if reported_at >= horizon:
                holders |= reported
        return frozenset(holders)

    def _may_choose(self, index: int) -> bool:
        acked = self._accept_counts.get(index, set())
        for holder in self._holder_set():
            if holder != self.name and holder not in acked:
                return False
        return True

    def _record_acceptance(self, index, acceptor, ballot) -> None:
        super()._record_acceptance(index, acceptor, ballot)
        # Re-check instances that reached a majority earlier but were
        # waiting on this holder's acceptance.
        if index not in self.chosen:
            voters = self._accept_counts.get(index, set())
            if self._accept_quorum(index, voters) and self._may_choose(index):
                self._choose(index)

    def _advance_commit_frontier(self) -> None:
        super()._advance_commit_frontier()
        self._drain_pending_reads()

    def _learn_commit_frontier(self, commit_index: int) -> None:
        super()._learn_commit_frontier(commit_index)
        self._drain_pending_reads()

    # -- membership: lingering lease holders ---------------------------------------

    def _splice_peers(self, members) -> None:
        """Same rule as RaftStarPQLReplica: a removed member may hold
        acked leases for up to one lease duration, and `_may_choose`
        blocks every instance on its acceptance.  Keep it in the accept
        fan-out as a quorum-inert learner for one lease duration (its
        acceptOKs satisfy the holder wait; `voters_at` never counts them
        toward a quorum it doesn't belong to), while `lease_peers` stops
        granting it fresh leases so its holder status decays."""
        removed = set(self.peers) - set(members) - self._lingering
        super()._splice_peers(members)
        if removed:
            self._lingering |= removed
            self._linger_timer.arm(self.config.lease_duration,
                                   self._prune_lingering)
        if self._lingering:
            self.peers = sorted(set(self.peers) | self._lingering)

    def _prune_lingering(self) -> None:
        if not self._lingering:
            return
        for name in self._lingering:
            self._reported_holders.pop(name, None)
        self._lingering.clear()
        if self._config_log is not None:
            self.peers = sorted(m for m in self._config_log.current
                                if m != self.name)

    def lease_peers(self) -> List[str]:
        """Grant leases to active members only — lingering learners must
        age out of holder status, not have it renewed."""
        return [p for p in self.peers if p not in self._lingering]

    def _retire(self) -> None:
        super()._retire()
        # A retired replica must stop granting leases: a fresh grant
        # would re-enter proposers' holder sets and let this fenced
        # replica keep serving LEASE_LOCAL reads.
        self.leases.stop()
        self._read_sweep_timer.cancel()
        self._choose_sweep_timer.cancel()
        self._pending_reads.clear()

    # -- lifecycle ---------------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self.leases.on_crash()
        self._read_sweep_timer.cancel()
        self._choose_sweep_timer.cancel()
        self._linger_timer.cancel()
        self._pending_reads.clear()

    def on_recover(self) -> None:
        super().on_recover()
        if self._lingering:
            self._linger_timer.arm(self.config.lease_duration,
                                   self._prune_lingering)
