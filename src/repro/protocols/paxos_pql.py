"""Paxos Quorum Leases on MultiPaxos (Figure 7 / Appendix A.1, B.3).

The optimization in its original home.  Structurally identical to the ported
Raft*-PQL, which is the point: the added/modified subactions are

* **Read/LocalRead** (added) — serve reads locally under a quorum lease once
  every instance that modified the key is in the chosen set;
* **Phase2b** (modified) — acceptors attach the leases they granted to their
  acceptOK;
* **Learn** (modified) — the proposer waits for acceptOKs from every holder
  in the collected holder set before the value becomes executable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.protocols.leases import LeaseManager
from repro.protocols.messages import Accept, Accepted, LeaseAck, LeaseGrant
from repro.protocols.multipaxos import MultiPaxosReplica
from repro.protocols.types import Command
from repro.sim.units import ms


class PaxosPQLReplica(MultiPaxosReplica):
    """MultiPaxos with Paxos Quorum Leases."""

    # Accepted replies report lease holders; the commit wait needs them,
    # so keepalives stay real (see RaftStarPQLReplica).
    beacon_mergeable = False

    def __init__(self, name, sim, network, config, trace=None) -> None:
        self._last_modified: Dict[str, int] = {}
        self._pending_reads: List[Command] = []
        self._acceptances_by: Dict[int, set] = {}
        self._reported_holders: Dict[str, tuple] = {}
        super().__init__(name, sim, network, config, trace=trace)
        self.leases = LeaseManager(
            self, duration=config.lease_duration, renew_interval=config.lease_renew_interval,
        )
        self.register_handler(LeaseGrant, lambda src, msg: self.leases.on_grant(src, msg))
        self.register_handler(LeaseAck, lambda src, msg: self.leases.on_ack(msg))
        self.leases.start()
        self._read_sweep_timer = self.timer("read-sweep")
        self._read_sweep_timer.arm(ms(50), self._sweep_pending_reads)
        self._choose_sweep_timer = self.timer("choose-sweep")
        self._choose_sweep_timer.arm(ms(100), self._sweep_pending_chooses)
        self.local_reads_served = 0

    # -- LocalRead ---------------------------------------------------------

    def submit_command(self, command: Command) -> None:
        # LINEARIZABLE reads opt out of the lease path and go through
        # the log (`Command.allows_local_read`).
        if (command.is_read and command.allows_local_read
                and self.leases.has_quorum_lease()):
            if self._read_ready(command):
                self.local_reads_served += 1
                self.serve_local_read(command)
            else:
                self._pending_reads.append(command)
            return
        super().submit_command(command)

    def _read_ready(self, command: Command) -> bool:
        last_mod = self._last_modified.get(command.key, -1)
        return self.commit_index >= last_mod

    def _drain_pending_reads(self) -> None:
        still = []
        for command in self._pending_reads:
            if self._read_ready(command):
                self.local_reads_served += 1
                self.serve_local_read(command)
            elif not self.leases.has_quorum_lease():
                super().submit_command(command)
            else:
                still.append(command)
        self._pending_reads = still

    def _sweep_pending_reads(self) -> None:
        self._drain_pending_reads()
        self._read_sweep_timer.arm(ms(50), self._sweep_pending_reads)

    def _sweep_pending_chooses(self) -> None:
        """Instances blocked on a lease holder become choosable once the
        holder's leases expire; re-check them as time passes."""
        if self.phase1_succeeded:
            for index, voters in list(self._accept_counts.items()):
                if index in self.chosen:
                    continue
                if len(voters) >= self.config.majority and self._may_choose(index):
                    self._choose(index)
        self._choose_sweep_timer.arm(ms(100), self._sweep_pending_chooses)

    # -- modified Phase2b: attach granted leases ----------------------------------

    def _accepted_lease_holders(self) -> frozenset:
        return self.leases.active_holders()

    def _after_accept(self, index: int, command: Command, msg: Accept) -> None:
        if command.is_write:
            self._last_modified[command.key] = index

    def _accept_locally(self, msg: Accept) -> None:
        super()._accept_locally(msg)
        for index, command in msg.instances.items():
            if command.is_write:
                self._last_modified[command.key] = index

    # -- modified Learn: wait for every lease holder ---------------------------------

    def _note_accepted_reply(self, src: str, msg: Accepted) -> None:
        self._reported_holders[msg.acceptor] = (self.sim.now, msg.lease_holders)
        for index in msg.instance_ids:
            self._acceptances_by.setdefault(index, set()).add(msg.acceptor)

    def _holder_set(self) -> frozenset:
        holders = set(self.leases.active_holders())
        horizon = self.sim.now - self.config.lease_duration
        for reported_at, reported in self._reported_holders.values():
            if reported_at >= horizon:
                holders |= reported
        return frozenset(holders)

    def _may_choose(self, index: int) -> bool:
        acked = self._accept_counts.get(index, set())
        for holder in self._holder_set():
            if holder != self.name and holder not in acked:
                return False
        return True

    def _record_acceptance(self, index, acceptor, ballot) -> None:
        super()._record_acceptance(index, acceptor, ballot)
        # Re-check instances that reached a majority earlier but were
        # waiting on this holder's acceptance.
        if index not in self.chosen:
            voters = self._accept_counts.get(index, set())
            if len(voters) >= self.config.majority and self._may_choose(index):
                self._choose(index)

    def _advance_commit_frontier(self) -> None:
        super()._advance_commit_frontier()
        self._drain_pending_reads()

    def _learn_commit_frontier(self, commit_index: int) -> None:
        super()._learn_commit_frontier(commit_index)
        self._drain_pending_reads()

    # -- lifecycle ---------------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self.leases.on_crash()
        self._read_sweep_timer.cancel()
        self._choose_sweep_timer.cancel()
        self._pending_reads.clear()
