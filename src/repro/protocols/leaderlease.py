"""Leader Lease (LL): the §5.1 baseline.

"The leader has sole ownership of the lease, so only the leader can process
a read request with its local copy."  Followers forward reads (and writes)
to the leader; the leader answers reads from its applied state while its
lease is valid.

The lease here is the standard heartbeat-majority lease: the leader considers
itself lease-holder while it has heard append acknowledgements from a
majority within the last `lease_duration`.
"""

from __future__ import annotations

from typing import Dict

from repro.protocols.messages import AppendEntriesReply
from repro.protocols.raft import Role
from repro.protocols.raftstar import RaftStarReplica
from repro.protocols.types import Command


class LeaderLeaseReplica(RaftStarReplica):
    """Raft* + leader-only read lease."""

    # The lease is heartbeat-majority: the leader holds it only while a
    # majority keeps ACKING its appends.  A merged host beacon is unacked,
    # so suppressing empty heartbeats would silently expire the lease on
    # an idle leader — keep the real keepalives.
    beacon_mergeable = False

    def __init__(self, name, sim, network, config, trace=None) -> None:
        self._last_heard: Dict[str, int] = {}
        super().__init__(name, sim, network, config, trace=trace)
        self.local_reads_served = 0

    def _on_append_reply(self, src: str, msg: AppendEntriesReply) -> None:
        if msg.term == self.current_term:
            self._last_heard[msg.follower] = self.sim.now
        super()._on_append_reply(src, msg)

    def has_leader_lease(self) -> bool:
        if self.role is not Role.LEADER:
            return False
        horizon = self.sim.now - self.config.lease_duration
        fresh = sum(1 for at in self._last_heard.values() if at >= horizon)
        return fresh >= self.config.f

    def submit_command(self, command: Command) -> None:
        # LINEARIZABLE reads opt out of the lease path and go through
        # the log (`Command.allows_local_read`).
        if (command.is_read and command.allows_local_read
                and self.has_leader_lease()):
            self.local_reads_served += 1
            self.serve_local_read(command)
            return
        super().submit_command(command)

    def on_crash(self) -> None:
        super().on_crash()
        self._last_heard.clear()
