"""Raft*-PQL: Paxos Quorum Leases ported to Raft* (Figure 8 / Appendix A.2).

The port follows the generated specification:

* **LocalRead** — a replica answers a read locally when it holds leases from
  at least f+1 replicas (itself included) *and* every log entry that modified
  the key is at or below `commit_index` (the `chosenSet` condition of PQL
  translated through the Figure 3 mapping `chosenSet -> log[0..commitIndex]`).

* **LeaderLearn** — followers attach the lease holders they have granted to
  their appendOK; the leader collects holders from the f replies *and unions
  in the holders it granted itself* (the implicit appendOK of the refinement
  mapping — the subtle case the paper's hand-ported version got wrong), and
  only commits once every holder in that set has acknowledged the entry.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.protocols.leases import LeaseManager
from repro.protocols.messages import (
    AppendEntries,
    AppendEntriesReply,
    LeaseAck,
    LeaseGrant,
)
from repro.protocols.raft import Role
from repro.protocols.raftstar import RaftStarReplica
from repro.protocols.types import Command
from repro.sim.units import ms


class RaftStarPQLReplica(RaftStarReplica):
    """Raft* with Paxos Quorum Leases."""

    # PQL appendOK replies report the lease holders each follower granted
    # (Figure 8 line 13) — the leader's commit wait depends on hearing
    # them, so empty heartbeats stay real instead of merging into the
    # host beacon.
    beacon_mergeable = False

    def __init__(self, name, sim, network, config, trace=None) -> None:
        self._last_modified: Dict[str, int] = {}
        self._pending_reads: List[Command] = []
        # Holders reported by each follower in its latest appendOK
        # (Figure 8 line 13: "received holders").
        self._reported_holders: Dict[str, frozenset] = {}
        # Members removed by a config change but kept in the append
        # fan-out until their last acked lease grants expire (see
        # `_splice_peers`).
        self._lingering: Set[str] = set()
        super().__init__(name, sim, network, config, trace=trace)
        self._linger_timer = self.timer("pql-linger")
        self.leases = LeaseManager(
            self, duration=config.lease_duration, renew_interval=config.lease_renew_interval,
        )
        self.register_handler(LeaseGrant, lambda src, msg: self.leases.on_grant(src, msg))
        self.register_handler(LeaseAck, lambda src, msg: self.leases.on_ack(msg))
        self.leases.start()
        self._read_sweep_timer = self.timer("read-sweep")
        self._read_sweep_timer.arm(ms(50), self._sweep_pending_reads)
        self.local_reads_served = 0
        self.forwarded_reads = 0

    # -- client path ----------------------------------------------------------

    def submit_command(self, command: Command) -> None:
        # LINEARIZABLE reads opt out of the lease path and go through
        # the log (`Command.allows_local_read`).
        if (command.is_read and command.allows_local_read
                and self.leases.has_quorum_lease()):
            self._try_local_read(command)
            return
        if command.is_read:
            self.forwarded_reads += 1
        super().submit_command(command)

    def _try_local_read(self, command: Command) -> None:
        """LocalRead (Figure 8): wait until every write to the key is
        committed and applied locally, then answer from local state."""
        if self._read_ready(command):
            self.local_reads_served += 1
            self.serve_local_read(command)
        else:
            self._pending_reads.append(command)

    def _read_ready(self, command: Command) -> bool:
        last_mod = self._last_modified.get(command.key, -1)
        return self.last_applied >= last_mod and self.commit_index >= last_mod

    def _drain_pending_reads(self) -> None:
        if not self._pending_reads:
            return
        still_waiting = []
        for command in self._pending_reads:
            if self._read_ready(command):
                self.local_reads_served += 1
                self.serve_local_read(command)
            elif not self.leases.has_quorum_lease():
                # Lost the lease while waiting: fall back to the log path.
                self.forwarded_reads += 1
                super().submit_command(command)
            else:
                still_waiting.append(command)
        self._pending_reads = still_waiting

    def _sweep_pending_reads(self) -> None:
        self._drain_pending_reads()
        self._read_sweep_timer.arm(ms(50), self._sweep_pending_reads)

    # -- write-tracking for the LocalRead condition ------------------------------

    def _track_writes(self, start_index: int) -> None:
        for index in range(start_index, self.last_index + 1):
            command = self.log[index].command
            if command.is_write:
                self._last_modified[command.key] = index

    def _append_to_log(self, command: Command) -> None:
        super()._append_to_log(command)
        if command.is_write:
            self._last_modified[command.key] = self.last_index

    def _try_append(self, msg: AppendEntries) -> tuple:
        success, match = super()._try_append(msg)
        if success:
            self._track_writes(msg.prev_index + 1)
        return success, match

    # -- the ported LeaderLearn -----------------------------------------------------

    def _make_append_reply(self, success: bool, match: int) -> AppendEntriesReply:
        reply = super()._make_append_reply(success, match)
        reply.lease_holders = self.leases.active_holders()
        return reply

    def _on_append_reply(self, src: str, msg: AppendEntriesReply) -> None:
        if msg.success:
            self._reported_holders[msg.follower] = (self.sim.now, msg.lease_holders)
        super()._on_append_reply(src, msg)

    def _holder_set(self) -> frozenset:
        """Figure 8 line 13: received holders ∪ holders granted by the
        leader itself (the implicit message).  Reports older than a lease
        duration are stale (their grants have expired) and are ignored."""
        holders = set(self.leases.active_holders())
        horizon = self.sim.now - self.config.lease_duration
        for reported_at, reported in self._reported_holders.values():
            if reported_at >= horizon:
                holders |= reported
        return frozenset(holders)

    def _leader_advance_commit(self, msg: AppendEntriesReply) -> None:
        peer_state = self._peer_state
        if self._voters is not None:
            # Membership-aware base candidate (joint consensus, see
            # RaftReplica); the PQL holder wait below is layered on top
            # unchanged.
            last = self.last_index
            own = self.name

            def match_of(name: str) -> int:
                if name == own:
                    return last
                state = peer_state.get(name)
                return state.match_index if state is not None else -1

            candidate = min(self._voters.commit_index(match_of), last)
        else:
            matches = sorted(
                (state.match_index if state is not None else -1)
                for state in (peer_state.get(peer) for peer in self.peers))
            candidate = matches[len(matches) - self.config.f]
            candidate = min(candidate, self.last_index)
        # Every active lease holder must have acknowledged the entry before
        # it commits, or its local reads could miss the write.
        for holder in self._holder_set():
            if holder == self.name:
                continue
            state = peer_state.get(holder)
            candidate = min(candidate,
                            state.match_index if state is not None else -1)
        if candidate > self.commit_index:
            self.commit_index = candidate
            self._apply_committed()
            self._schedule_flush()

    # -- membership: lingering lease holders ---------------------------------------

    def _splice_peers(self, members) -> None:
        """A member removed by a completed config change may still hold
        acked leases for up to one lease duration; the commit wait above
        blocks on every holder's match index, so dropping it from the
        fan-out outright would freeze its match and stall all writes
        until its grants expire.  Keep it in `peers` as a quorum-inert
        learner for one lease duration (its appendOK acks satisfy the
        holder wait but never count toward a voter quorum), while
        `lease_peers` stops granting it fresh leases so its holder
        status actually decays."""
        removed = set(self.peers) - set(members) - self._lingering
        super()._splice_peers(members)
        if removed:
            self._lingering |= removed
            self._linger_timer.arm(self.config.lease_duration,
                                   self._prune_lingering)
        if self._lingering:
            self.peers = sorted(set(self.peers) | self._lingering)
            self._batch_cache = None

    def _prune_lingering(self) -> None:
        if not self._lingering:
            return
        for name in self._lingering:
            self._reported_holders.pop(name, None)
        self._lingering.clear()
        if self._voters is not None:
            self.peers = sorted(m for m in self._voters.voters
                                if m != self.name)
            self._batch_cache = None

    def lease_peers(self) -> List[str]:
        """Grant leases to active members only — lingering learners must
        age out of holder status, not have it renewed."""
        return [p for p in self.peers if p not in self._lingering]

    def _retire(self) -> None:
        super()._retire()
        # A retired replica must stop granting leases: a fresh grant
        # would re-enter other leaders' holder sets and let this fenced
        # replica keep serving LEASE_LOCAL reads.
        self.leases.stop()
        self._read_sweep_timer.cancel()
        self._pending_reads.clear()

    # -- apply: wake pending local reads ----------------------------------------------

    def _apply_committed(self) -> None:
        super()._apply_committed()
        self._drain_pending_reads()

    # -- lifecycle ----------------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self.leases.on_crash()
        self._read_sweep_timer.cancel()
        self._linger_timer.cancel()
        self._pending_reads.clear()
        self._reported_holders.clear()

    def on_recover(self) -> None:
        super().on_recover()
        self._last_modified = {}
        self.leases = LeaseManager(
            self,
            duration=self.config.lease_duration,
            renew_interval=self.config.lease_renew_interval,
        )
        self.leases.start()
        self._read_sweep_timer.arm(ms(50), self._sweep_pending_reads)
        if self._lingering:
            self._linger_timer.arm(self.config.lease_duration,
                                   self._prune_lingering)
