"""MultiPaxos (Figure 1).

A leader-based MultiPaxos: phase 1 is batched over all unchosen instances
(`Prepare` carries the smallest unchosen instance id; `Promise` returns every
accepted instance at or above it), phase 2 runs one (micro-batched) `Accept`
per client command, and instances commit out of order on f+1 acceptances
while execution stays in instance order.

Structural differences from Raft that §3 calls out are visible here:

* acceptors **overwrite** accepted values/ballots, never erase;
* the proposer re-proposes safe values with **its own ballot** (the accepted
  ballot is rewritten, unlike Raft's immutable terms);
* commit is tracked per instance, so a later instance can be chosen while an
  earlier one is still open.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.membership import DEFAULT_ALPHA, ConfigLog, is_quorum
from repro.protocols.base import ReplicaBase
from repro.protocols.config import ClusterConfig
from repro.protocols.messages import (
    Accept,
    Accepted,
    CatchUpReply,
    CatchUpSnapshot,
    ConfigChange,
    Learn,
    Prepare,
    Promise,
)
from repro.protocols.types import Ballot, Command, Entry, OpType

MAX_ACCEPT_BATCH = 256


class MultiPaxosReplica(ReplicaBase):
    """A MultiPaxos server (proposer + acceptor + learner)."""

    # An idle leader's empty Accept only resets follower prepare timers
    # and re-advertises an unchanged commit frontier, so the host mux may
    # merge it into the host beacon.  PQL-on-Paxos overrides to False
    # (its Accepted replies carry lease-holder sets).
    beacon_mergeable = True

    def __init__(self, name, sim, network, config: ClusterConfig, trace=None) -> None:
        super().__init__(name, sim, network, config, trace=trace)
        self.ballot = Ballot(0, "")
        self.phase1_succeeded = False
        self.leader_id: Optional[str] = None
        # Commit frontier last advertised by an (empty) heartbeat: beacon
        # suppression only applies while it is unchanged.  Refresh ticks
        # (`beacon_refresh_due`) still send real empty Accepts so a
        # follower that missed the one frontier-news broadcast (loss, a
        # partition window) is healed within a bounded number of beats.
        self._last_idle_commit = -1
        # Interned idle heartbeat: the empty Accept is identical from tick
        # to tick while (ballot, commit_index) are unchanged, and nothing
        # mutates an Accept after construction, so one object (with its
        # memoized wire size) serves every idle beat of a quiet stretch.
        self._idle_accept: Optional[Accept] = None
        self.instances: Dict[int, Entry] = {}  # accepted values
        self.chosen: Dict[int, Command] = {}
        self.commit_index = -1  # chosen-and-contiguous frontier
        self.log_tail = -1

        # Dynamic membership (α-bounded reconfiguration): None until the
        # first CONFIG entry applies — every quorum expression below keeps
        # its original static-`config.majority` form while this is None.
        # A config decided at slot s governs slots >= s+α; the proposer
        # defers commands that would open a slot past frontier+α so the
        # slot→voters mapping stays sound.
        self._config_log: Optional[ConfigLog] = None
        self._deferred_commands: List[Command] = []

        # proposer state
        self.next_instance = 0
        self._promises: Dict[str, Promise] = {}
        self._accept_counts: Dict[int, Set[str]] = {}
        self._accept_buffer: Dict[int, Command] = {}
        self._prepare_timer = self.timer("prepare")
        self._heartbeat_timer = self.timer("heartbeat")
        self._flush_timer = self.timer("accept-flush")
        from repro.protocols.raft import sim_rng_for

        self._rng = sim_rng_for(self)

        self.register_handler(Prepare, self._on_prepare)
        self.register_handler(Promise, self._on_promise)
        self.register_handler(Accept, self._on_accept)
        self.register_handler(Accepted, self._on_accepted)
        self.register_handler(Learn, self._on_learn)
        self.register_handler(CatchUpSnapshot, self._on_catch_up)
        self.register_handler(CatchUpReply, self._on_catch_up_reply)

        if config.initial_leader is not None:
            self._seed_initial_leader(config.initial_leader)
        else:
            self._reset_prepare_timer()

    # -- bootstrap --------------------------------------------------------------

    def _seed_initial_leader(self, leader: str) -> None:
        self.ballot = Ballot(1, leader)
        self.leader_id = leader
        if self.name == leader:
            self.phase1_succeeded = True
            self._heartbeat_timer.arm(self.config.heartbeat_interval, self._on_heartbeat)
        else:
            self._reset_prepare_timer()

    # -- helpers --------------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.phase1_succeeded

    def leader_hint(self) -> Optional[str]:
        return self.leader_id

    def beacon_info(self):
        if self.beacon_mergeable and self.phase1_succeeded:
            return (self.name, self.ballot.round)
        return None

    def on_host_beacon(self, leader: str, term: int) -> None:
        # Only a beat matching the ballot we already follow counts; ballot
        # changes travel through real Prepare/Accept traffic.
        if (not self.phase1_succeeded and self.leader_id == leader
                and self.ballot.round == term):
            self._reset_prepare_timer()

    def first_unchosen(self) -> int:
        index = self.commit_index + 1
        while index in self.chosen:
            index += 1
        return index

    def _reset_prepare_timer(self) -> None:
        if self.joining or self.retired:
            # A spliced-in replica must not steal the ballot before a
            # committed config makes it a voter; a retired replica must
            # never propose again.
            self._prepare_timer.cancel()
            return
        timeout = self._rng.randint(
            self.config.election_timeout_min, self.config.election_timeout_max
        )
        self._prepare_timer.arm(timeout, self._start_phase1)

    # -- phase 1 ----------------------------------------------------------------------

    def _start_phase1(self) -> None:
        """Phase1a: adopt a higher ballot and ask everyone to promise."""
        self.ballot = self.ballot.next_for(self.name)
        self.phase1_succeeded = False
        self.leader_id = None
        self._promises = {}
        unchosen = self.first_unchosen()
        self.trace.record(self.sim.now, self.name, "phase1a", round=self.ballot.round)
        for peer in self.peers:
            self.send(peer, Prepare(ballot=self.ballot, proposer=self.name, unchosen=unchosen))
        # Promise to ourselves.
        self._promises[self.name] = Promise(
            ballot=self.ballot,
            acceptor=self.name,
            instances={i: e.copy() for i, e in self.instances.items() if i >= unchosen},
            log_tail=self.log_tail,
        )
        self._reset_prepare_timer()

    def _on_prepare(self, src: str, msg: Prepare) -> None:
        if msg.ballot <= self.ballot:
            return  # Paxos acceptors simply ignore stale prepares
        self.ballot = msg.ballot
        self.phase1_succeeded = False
        self.leader_id = msg.proposer
        self._reset_prepare_timer()
        reply = Promise(
            ballot=msg.ballot,
            acceptor=self.name,
            instances={
                i: e.copy() for i, e in self.instances.items() if i >= msg.unchosen
            },
            log_tail=self.log_tail,
            skip_tags=self._promise_skip_tags(msg.unchosen),
        )
        self.send(src, reply)

    def _promise_skip_tags(self, unchosen: int) -> Dict[int, bool]:
        """Hook for Coordinated Paxos (Mencius)."""
        return {}

    def _on_promise(self, src: str, msg: Promise) -> None:
        if msg.ballot != self.ballot or self.phase1_succeeded:
            return
        self._promises[msg.acceptor] = msg
        if self._config_log is None:
            if len(self._promises) >= self.config.majority:
                self._phase1_succeed()
        elif self._phase1_quorum():
            self._phase1_succeed()

    def _phase1_quorum(self) -> bool:
        """Membership-aware phase-1 quorum: the promise set must satisfy
        a majority of EVERY voter set in the config history, so the
        prepare quorum intersects the accept quorum of every open slot
        regardless of which config governs it.  Conservative (history is
        short — one entry per completed change) but unconditionally
        safe."""
        acks = set(self._promises)
        log = self._config_log
        if not is_quorum(log.initial, acks):
            return False
        return all(is_quorum(voters, acks)
                   for _eff, voters, _epoch in log.entries)

    def _phase1_succeed(self) -> None:
        """Phase1Succeed: adopt the highest-ballot value per reported
        instance; fill holes with no-ops; re-propose everything."""
        promises = list(self._promises.values())
        start = self.first_unchosen()
        end = max([p.log_tail for p in promises] + [self.log_tail])
        recovered: Dict[int, Command] = {}
        for index in range(start, end + 1):
            best: Optional[Entry] = None
            for promise in promises:
                entry = promise.instances.get(index)
                if entry is not None and (best is None or entry.ballot > best.ballot):
                    best = entry
            own = self.instances.get(index)
            if own is not None and (best is None or own.ballot > best.ballot):
                best = own
            command = best.command if best is not None else Command(
                op=OpType.NOP, client_id=f"__fill__{self.name}",
                seq=self.ballot.round * 1_000_000 + index, value_size=0,
            )
            recovered[index] = command
        self.phase1_succeeded = True
        self.leader_id = self.name
        self.next_instance = end + 1
        self.trace.record(self.sim.now, self.name, "phase1ok", round=self.ballot.round)
        self._prepare_timer.cancel()
        if recovered:
            self._accept_buffer.update(recovered)
            self._flush_accepts()
        self._heartbeat_timer.arm(self.config.heartbeat_interval, self._on_heartbeat)

    # -- client path / phase 2 -------------------------------------------------------

    def submit_command(self, command: Command) -> None:
        if not self.phase1_succeeded:
            self.forward_to_leader(command)
            return
        if command.op is OpType.CONFIG:
            self._membership_active = True
        if (self._config_log is not None
                and not self._config_log.window_open(self.next_instance,
                                                     self.commit_index)):
            # The α gate: opening this slot would outrun the window that
            # makes the slot→voters mapping sound.  Defer; the frontier
            # advance drains the buffer.
            self._deferred_commands.append(command)
            return
        instance = self.next_instance
        self.next_instance += 1
        if self.obs is not None:
            self.obs_phase(command.trace_id, "append", index=instance)
        self._accept_buffer[instance] = command
        if len(self._accept_buffer) >= MAX_ACCEPT_BATCH:
            self._flush_accepts()
        elif not self._flush_timer.armed:
            self._flush_timer.arm(self.config.append_flush_interval, self._flush_accepts)

    def _flush_accepts(self) -> None:
        self._flush_timer.cancel()
        if not self.phase1_succeeded or not self._accept_buffer:
            return
        batch = self._accept_buffer
        self._accept_buffer = {}
        message = Accept(
            ballot=self.ballot,
            proposer=self.name,
            instances=batch,
            commit_index=self.commit_index,
            is_default=self._accept_is_default(),
        )
        # Accept our own proposals first (the implicit self-accept).
        self._accept_locally(message)
        for peer in self.peers:
            self.send(peer, message)

    def _accept_is_default(self) -> bool:
        return False  # Coordinated Paxos hook

    def _on_heartbeat(self) -> None:
        if not self.phase1_succeeded:
            return
        refresh = self.beacon_refresh_due()
        if self._accept_buffer:
            self._flush_accepts()
        else:
            empty = self._idle_accept
            if (empty is None or empty.ballot is not self.ballot
                    or empty.commit_index != self.commit_index):
                empty = self._idle_accept = Accept(
                    ballot=self.ballot, proposer=self.name, instances={},
                    commit_index=self.commit_index,
                )
            frontier_news = self.commit_index != self._last_idle_commit
            sent_any = False
            for peer in self.peers:
                # Beacon-covered peers skip the empty Accept unless the
                # commit frontier moved since the last idle broadcast — or
                # this is a refresh tick re-advertising it in case that
                # one broadcast was dropped on the way to this peer.
                if frontier_news or refresh or not self.beacon_covered(peer):
                    self.send(peer, empty)
                    sent_any = True
            if sent_any:
                self._last_idle_commit = self.commit_index
        self._heartbeat_timer.arm(self.config.heartbeat_interval, self._on_heartbeat)

    def _accept_locally(self, msg: Accept) -> None:
        make = Entry.make
        round_ = msg.ballot.round
        for index, command in msg.instances.items():
            if command.op is OpType.CONFIG:
                self._membership_active = True
            self.instances[index] = make(round_, command, round_)
            self.log_tail = max(self.log_tail, index)
            self._record_acceptance(index, self.name, msg.ballot)

    def _on_accept(self, src: str, msg: Accept) -> None:
        if msg.ballot < self.ballot:
            return
        if msg.ballot > self.ballot:
            self.ballot = msg.ballot
            self.phase1_succeeded = False
        self.leader_id = msg.proposer
        self._reset_prepare_timer()
        make = Entry.make
        round_ = msg.ballot.round
        for index, command in msg.instances.items():
            if command.op is OpType.CONFIG:
                self._membership_active = True
            self.instances[index] = make(round_, command, round_)
            self.log_tail = max(self.log_tail, index)
            self._after_accept(index, command, msg)
        self._learn_commit_frontier(msg.commit_index)
        if msg.instances:
            self.send(src, Accepted(
                ballot=msg.ballot,
                acceptor=self.name,
                instance_ids=sorted(msg.instances),
                lease_holders=self._accepted_lease_holders(),
            ))

    def _after_accept(self, index: int, command: Command, msg: Accept) -> None:
        """Hook for Coordinated Paxos (skip tags / executable set)."""

    def _accepted_lease_holders(self) -> frozenset:
        """Hook for PQL-on-Paxos."""
        return frozenset()

    def _on_accepted(self, src: str, msg: Accepted) -> None:
        if not self.phase1_succeeded or msg.ballot != self.ballot:
            return
        self._note_accepted_reply(src, msg)
        for index in msg.instance_ids:
            self._record_acceptance(index, msg.acceptor, msg.ballot)

    def _note_accepted_reply(self, src: str, msg: Accepted) -> None:
        """Hook for PQL-on-Paxos (collect lease holders)."""

    def _record_acceptance(self, index: int, acceptor: str, ballot: Ballot) -> None:
        voters = self._accept_counts.setdefault(index, set())
        voters.add(acceptor)
        if self._config_log is not None:
            # α-aware choosing: the voter set that governs THIS slot —
            # acks from non-voters (a catching-up joiner, a retired
            # replica) are inert.
            if (is_quorum(self._config_log.voters_at(index), voters)
                    and index not in self.chosen and self._may_choose(index)):
                self._choose(index)
            return
        if len(voters) >= self.config.majority and index not in self.chosen:
            if self._may_choose(index):
                self._choose(index)

    def _accept_quorum(self, index: int, voters: Set[str]) -> bool:
        """Whether `voters` is an accept quorum for `index` under the
        config governing that slot (subclass re-check paths; the hot path
        in `_record_acceptance` keeps its inline form)."""
        if self._config_log is not None:
            return is_quorum(self._config_log.voters_at(index), voters)
        return len(voters) >= self.config.majority

    def _may_choose(self, index: int) -> bool:
        """Hook for PQL-on-Paxos (lease-holder wait)."""
        return True

    def _choose(self, index: int) -> None:
        entry = self.instances.get(index)
        if entry is None:
            return
        self.chosen[index] = entry.command
        self._advance_commit_frontier()

    def _advance_commit_frontier(self) -> None:
        advanced = False
        # Entries nobody waits on (no hooks, no obs, no pending requester)
        # reduce to `store.apply` + the `last_applied` bump — no throwaway
        # Entry wrapper, no `apply_entry` frame.  Membership runs disable
        # the shortcut so CONFIG entries reach `_on_config_applied`.
        fast = (not self._membership_active and not self.on_apply_hooks
                and self.obs is None)
        clients = self._clients
        relays = self._relays
        chosen = self.chosen
        store_apply = self.store.apply
        while (self.commit_index + 1) in chosen:
            self.commit_index += 1
            advanced = True
            command = chosen[self.commit_index]
            if fast:
                rid = (command.client_id, command.seq)
                if rid not in clients and rid not in relays:
                    store_apply(command)
                    if self.commit_index > self.last_applied:
                        self.last_applied = self.commit_index
                    continue
            self.apply_entry(self.commit_index, Entry.make(0, command))
        if advanced and self._deferred_commands:
            # The α window may have re-opened: re-submit in arrival order
            # (still-closed windows simply re-defer).
            deferred = self._deferred_commands
            self._deferred_commands = []
            for command in deferred:
                self.submit_command(command)
        if advanced and self.phase1_succeeded and not self._flush_timer.armed:
            # Let acceptors learn the new frontier promptly.
            self._flush_timer.arm(self.config.append_flush_interval, self._flush_accepts_or_learn)

    def _flush_accepts_or_learn(self) -> None:
        if self._accept_buffer:
            self._flush_accepts()
        else:
            for peer in self.peers:
                self.send(peer, Learn(
                    instance_ids=[], proposer=self.name, commit_index=self.commit_index,
                ))

    def _learn_commit_frontier(self, commit_index: int) -> None:
        """A follower learns chosen-ness through the leader's frontier."""
        while self.commit_index < commit_index:
            index = self.commit_index + 1
            entry = self.instances.get(index)
            if entry is None:
                return  # hole: wait for a retransmit
            self.chosen[index] = entry.command
            self.commit_index = index
            self.apply_entry(index, entry)

    def _on_learn(self, src: str, msg: Learn) -> None:
        self._learn_commit_frontier(msg.commit_index)

    # -- dynamic membership (α-bounded reconfiguration) ---------------------------
    #
    # The Paxos side of the paper's reconfiguration parallel: ONE logged
    # config entry, no joint phase — a config chosen at slot s governs
    # slots >= s+α (Lamport's scheme), and the proposer never opens a slot
    # more than α past the commit frontier, so by the time a slot's voters
    # could have changed, the deciding config is already applied on every
    # replica at the same log position.

    def _on_config_applied(self, index: int, command: Command) -> None:
        change = ConfigChange.decode(command)
        if self._config_log is None:
            self._config_log = ConfigLog(
                initial=frozenset([self.name, *self.peers]),
                alpha=change.alpha or DEFAULT_ALPHA)
        log = self._config_log
        if change.epoch != log.epoch + 1:
            return  # replay of a completed epoch, or a stale retry
        log.decide(index, change.new, change.epoch)
        self.config_epoch = change.epoch
        new = frozenset(change.new)
        joiners = new - frozenset([self.name, *self.peers])
        self._splice_peers(new)
        if self.name not in new:
            self._retire()
            return
        if self.joining:
            # This replica is now a committed voter: join the ballot
            # machinery.
            self.joining = False
            if not self.phase1_succeeded:
                self._reset_prepare_timer()
        if self.phase1_succeeded and joiners:
            self._catch_up_new_peers(joiners)

    def _splice_peers(self, members) -> None:
        """Point the accept fan-out at the active member set (sorted for
        deterministic send order).  `voters_at` keeps judging past slots
        by their governing config, so a removed replica's acks stay
        countable for the slots it still governs."""
        self.peers = sorted(m for m in members if m != self.name)

    def _catch_up_new_peers(self, joiners) -> None:
        """Ship a fresh joiner the leader's contiguous instance prefix in
        one snapshot; the joiner replays it through the ordinary apply
        path (rebuilding store, dedup windows, and the config log), then
        receives new instances through the spliced accept fan-out."""
        entries: List[Entry] = []
        for index in range(self.log_tail + 1):
            entry = self.instances.get(index)
            if entry is None:
                break  # hole: ship the contiguous prefix only
            entries.append(entry)
        snapshot = CatchUpSnapshot(
            sender=self.name, entries=tuple(entries),
            commit_index=min(self.commit_index, len(entries) - 1),
            term=self.ballot.round)
        for peer in sorted(joiners):
            self.send(peer, snapshot)

    def _on_catch_up(self, src: str, msg: CatchUpSnapshot) -> None:
        if not self.instances and not self.chosen:
            # Install is only ever wholesale into an EMPTY replica (the
            # fresh joiner).
            self.ballot = Ballot(msg.term, msg.sender)
            self.leader_id = msg.sender
            for index, entry in enumerate(msg.entries):
                if entry.command.op is OpType.CONFIG:
                    self._membership_active = True
                self.instances[index] = entry
            self.log_tail = len(msg.entries) - 1
            self._learn_commit_frontier(msg.commit_index)
        self.send(src, CatchUpReply(
            follower=self.name, last_index=self.commit_index,
            term=self.ballot.round))

    def _on_catch_up_reply(self, src: str, msg: CatchUpReply) -> None:
        """Paxos needs no per-peer match bookkeeping — acceptance counting
        does the work — so the reply is just liveness news."""

    def _retire(self) -> None:
        """This replica was removed by an effective config: fence every
        client-facing path (`ReplicaBase`) and stand down permanently."""
        self.retired = True
        self.joining = False
        self.phase1_succeeded = False
        self._prepare_timer.cancel()
        self._heartbeat_timer.cancel()
        self._flush_timer.cancel()

    # -- lifecycle -------------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        for timer in (self._prepare_timer, self._heartbeat_timer, self._flush_timer):
            timer.cancel()
        self.stable["ballot"] = self.ballot
        self.stable["instances"] = {i: e.copy() for i, e in self.instances.items()}
        self.stable["log_tail"] = self.log_tail
        if self._membership_active:
            # Membership state survives the crash; re-applying CONFIG
            # entries during recovery replay is then idempotent (epoch
            # guard in `_on_config_applied`).
            self.stable["membership"] = (
                None if self._config_log is None else ConfigLog(
                    initial=self._config_log.initial,
                    alpha=self._config_log.alpha,
                    entries=list(self._config_log.entries)),
                self.config_epoch, self.retired, list(self.peers))

    def on_recover(self) -> None:
        self.ballot = self.stable.get("ballot", Ballot(0, ""))
        self.instances = {i: e.copy() for i, e in self.stable.get("instances", {}).items()}
        self.log_tail = self.stable.get("log_tail", -1)
        self.phase1_succeeded = False
        self.leader_id = None
        self.chosen = {}
        self.commit_index = -1
        self.last_applied = -1
        self.reset_store()
        self._promises = {}
        self._accept_counts = {}
        self._accept_buffer = {}
        self._deferred_commands = []
        membership = self.stable.get("membership")
        if membership is not None:
            config_log, self.config_epoch, self.retired, peers = membership
            if config_log is not None:
                self._config_log = ConfigLog(
                    initial=config_log.initial, alpha=config_log.alpha,
                    entries=list(config_log.entries))
            self.peers = list(peers)
            self._membership_active = True
        self._reset_prepare_timer()
