"""Quorum leases (Paxos Quorum Leases, Moraru et al. 2014).

A `LeaseManager` runs on every replica.  Each replica *grants* a read lease
to every replica (including itself) and renews it every `lease_renew_interval`
for `lease_duration` (the paper's §5.1 parameters: 0.5 s / 2 s).  A replica
*holds a quorum lease* when it holds valid grants from a majority of
replicas.

The safety contract is the one §4.4/Appendix A.1 describes: any lease quorum
intersects any Paxos quorum, and every replica in a Paxos quorum notifies its
granted holders before a value commits — the protocol layer enforces the
second half by making the leader wait for acks from all *active holders*
before advancing the commit index.

Grantors track holder liveness through `LeaseAck`s, so a crashed holder stops
blocking writes within one lease duration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.protocols.messages import LeaseAck, LeaseGrant


class LeaseManager:
    """Grant/hold bookkeeping for one replica."""

    def __init__(self, replica, duration: int, renew_interval: int) -> None:
        self.replica = replica
        self.duration = duration
        self.renew_interval = renew_interval
        # grants I issued: holder -> expiry of the grant itself
        self.granted: Dict[str, int] = {}
        # acks I received for my grants: holder -> expiry of the acked grant
        self.acked: Dict[str, int] = {}
        # grants I hold: grantor -> expiry
        self.held: Dict[str, int] = {}
        self._renew_timer = replica.timer("lease-renew")

    # -- grantor side -------------------------------------------------------

    def start(self) -> None:
        # Defer the first grant round until all replicas have registered.
        self.replica.sim.schedule(0, self._renew)

    def stop(self) -> None:
        self._renew_timer.cancel()

    def _renew(self) -> None:
        now = self.replica.sim.now
        expiry = now + self.duration
        self.granted[self.replica.name] = expiry
        self.acked[self.replica.name] = expiry
        self.held[self.replica.name] = expiry
        # A replica may fan out appends to more nodes than it leases to —
        # members removed by a config change linger in `peers` as learners
        # for one lease duration so the commit wait drains, but granting
        # them fresh leases would keep them lease holders forever.
        lease_peers = getattr(self.replica, "lease_peers", None)
        targets = self.replica.peers if lease_peers is None else lease_peers()
        for peer in targets:
            self.granted[peer] = expiry
            self.replica.send(peer, LeaseGrant(
                grantor=self.replica.name, holder=peer, expiry=expiry,
            ))
        self._renew_timer.arm(self.renew_interval, self._renew)

    def on_ack(self, message: LeaseAck) -> None:
        self.acked[message.holder] = max(self.acked.get(message.holder, 0), message.expiry)

    def active_holders(self) -> FrozenSet[str]:
        """Holders of my grants that are still alive (acked recently)."""
        now = self.replica.sim.now
        return frozenset(
            holder for holder, expiry in self.acked.items() if expiry >= now
        )

    # -- holder side -----------------------------------------------------------

    def on_grant(self, src: str, message: LeaseGrant) -> None:
        self.held[message.grantor] = max(self.held.get(message.grantor, 0), message.expiry)
        self.replica.send(src, LeaseAck(
            holder=self.replica.name, grantor=message.grantor, expiry=message.expiry,
        ))

    def valid_grant_count(self) -> int:
        now = self.replica.sim.now
        return sum(1 for expiry in self.held.values() if expiry >= now)

    def has_quorum_lease(self) -> bool:
        """PQL Figure 8 line 3: validLeasesNum >= f + 1 (self included)."""
        return self.valid_grant_count() >= self.replica.config.majority

    # -- fault handling ---------------------------------------------------------

    def on_crash(self) -> None:
        self.stop()
        self.granted.clear()
        self.acked.clear()
        self.held.clear()
