"""Cluster configuration shared by all protocol implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.node import Host, NodeCosts
from repro.sim.units import ms, sec


@dataclass
class ClusterConfig:
    """Static configuration of a replica group.

    `replicas` maps replica name -> site name.  Quorums are majorities
    (f = (n-1)//2, quorum = f+1), matching the paper's setup.
    """

    replicas: Dict[str, str]
    initial_leader: Optional[str] = None

    # Timers (microseconds).  WAN-appropriate defaults: election timeouts
    # must exceed the worst RTT (292 ms) by a safe margin.
    election_timeout_min: int = ms(1000)
    election_timeout_max: int = ms(2000)
    heartbeat_interval: int = ms(100)

    # Leader-side micro-batching of appends and follower-side batching of
    # forwarded client requests (the etcd optimization kept on in §5).
    append_flush_interval: int = ms(0.5)
    forward_flush_interval: int = ms(2)
    forward_batch_max: int = 32

    # Quorum-lease parameters (§5.1: 2 s duration, renewed every 0.5 s).
    lease_duration: int = sec(2)
    lease_renew_interval: int = sec(0.5)

    # Mencius.
    skip_interval: int = ms(20)
    revoke_timeout: int = sec(1)

    # Host-multiplexed deployments: cross-group coalescing of messages to
    # the same destination host (`repro.protocols.mux.GroupMux`).  The
    # flush interval is the batching horizon for one envelope; coalescing
    # is off by default — the single-group figures run the original
    # one-message-one-send transport.
    coalesce_enabled: bool = False
    coalesce_flush_interval: int = ms(0.5)
    # Every Nth heartbeat tick a leader sends REAL empty keepalives even to
    # beacon-covered peers.  The beacon replaces the keepalive's timer
    # reset but not its self-healing: an empty append/Accept also carries
    # the commit frontier, and if the one message that advertised a new
    # frontier was dropped (loss, a partition window), suppression would
    # otherwise leave an idle follower behind forever.  The refresh bounds
    # that staleness to beacon_refresh_ticks heartbeat intervals while
    # keeping ~90% of the header amortization.
    beacon_refresh_ticks: int = 10

    # Machine placement: replica name -> the `Host` it runs on.  `None`
    # (the default) gives every replica a private host, the paper's
    # one-process-per-machine deployment.
    hosts: Optional[Dict[str, Host]] = None

    costs: NodeCosts = field(default_factory=NodeCosts)

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a cluster needs at least one replica")
        if self.initial_leader is not None and self.initial_leader not in self.replicas:
            raise ValueError(f"initial leader {self.initial_leader!r} not in replica set")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.replicas)

    @property
    def n(self) -> int:
        return len(self.replicas)

    @property
    def f(self) -> int:
        return (self.n - 1) // 2

    @property
    def majority(self) -> int:
        return self.f + 1

    def peers_of(self, name: str) -> Tuple[str, ...]:
        return tuple(replica for replica in self.replicas if replica != name)

    def site_of(self, name: str) -> str:
        return self.replicas[name]

    def host_of(self, name: str) -> Optional[Host]:
        """The shared host `name` runs on (None = private host)."""
        if self.hosts is None:
            return None
        return self.hosts.get(name)

    def owner_of(self, index: int) -> str:
        """Mencius round-robin instance ownership."""
        names = self.names
        return names[index % len(names)]

    def owned_by(self, name: str, index: int) -> bool:
        return self.owner_of(index) == name


def single_site_cluster(n: int, prefix: str = "s", **kwargs) -> ClusterConfig:
    """n replicas on a LAN topology named s0..s{n-1} (tests)."""
    return ClusterConfig(replicas={f"{prefix}{i}": f"{prefix}{i}" for i in range(n)}, **kwargs)


def geo_cluster(sites, prefix: str = "r", **kwargs) -> ClusterConfig:
    """One replica per site, named <prefix>_<site> (the paper's deployment).

    Sharded deployments pass a per-group prefix (e.g. ``g0_r``) so many
    groups can share one network without name collisions."""
    return ClusterConfig(replicas={f"{prefix}_{site}": site for site in sites}, **kwargs)
