"""Raft* (Figure 2 including the blue text).

Raft* differs from Raft in exactly the two ways §3 introduces so that a
refinement mapping to MultiPaxos exists:

1. **Vote replies carry extra entries.**  A voter includes every entry beyond
   the candidate's last index; the new leader merges the *safe* value per
   index (highest ballot) into its own log, stamping them with its current
   term — the MultiPaxos Phase1Succeed behaviour.  A follower whose log is
   longer than the leader's append range *rejects* instead of erasing.

2. **Per-entry ballots are rewritten on every append.**  Appending at term t
   sets the ballot of *all* covered entries to t (MultiPaxos proposers always
   overwrite the accepted ballot).  This removes the need for Raft's §5.4.2
   commit restriction: any majority-replicated index commits.
"""

from __future__ import annotations

from typing import Dict

from repro.protocols.messages import AppendEntries, AppendEntriesReply, RequestVoteReply
from repro.protocols.raft import RaftReplica, Role
from repro.protocols.types import NOP, Command, Entry, OpType


class RaftStarReplica(RaftReplica):
    """A Raft* replica."""

    def __init__(self, name, sim, network, config, trace=None) -> None:
        self._pending_extras: Dict[int, Entry] = {}
        super().__init__(name, sim, network, config, trace=trace)

    # -- difference 1: vote-reply extras and leader-side merge ------------------

    def _vote_extras(self, candidate_last_index: int) -> Dict[int, Entry]:
        return {
            index: self.log[index].copy()
            for index in range(candidate_last_index + 1, self.last_index + 1)
        }

    def _on_vote_reply(self, src: str, msg: RequestVoteReply) -> None:
        # Stash extras before the base class counts the vote, because reaching
        # a majority triggers _assume_leadership immediately.
        if (
            self.role is Role.CANDIDATE
            and msg.term == self.current_term
            and msg.granted
        ):
            for index, entry in msg.extra_entries.items():
                best = self._pending_extras.get(index)
                if best is None or entry.ballot > best.ballot:
                    self._pending_extras[index] = entry
        super()._on_vote_reply(src, msg)

    def _on_election_timeout(self) -> None:
        self._pending_extras: Dict[int, Entry] = {}
        super()._on_election_timeout()

    def _assume_leadership(self, initial: bool = False) -> None:
        if not initial:
            self._merge_safe_entries()
        super()._assume_leadership(initial=initial)

    def _merge_safe_entries(self) -> None:
        """Figure 2a lines 22-29: adopt the highest-ballot value per index
        beyond our own log, restamped with the current term."""
        extras = getattr(self, "_pending_extras", {})
        for index in sorted(extras):
            if index <= self.last_index:
                continue  # our own entries are already the safe ones
            while self.last_index < index - 1:
                # Hole between our log and a reported extra: fill with no-op
                # (a proposer choosing its own value for an unconstrained
                # instance).
                self._append_to_log(self._padding_nop())
            entry = extras[index]
            if entry.command.op is OpType.CONFIG:
                self._membership_active = True
            self.log.append(Entry(
                term=self.current_term, command=entry.command, ballot=self.current_term,
            ))
        self._pending_extras = {}

    def _padding_nop(self) -> Command:
        return Command(
            op=OpType.NOP,
            client_id=f"__pad__{self.name}",
            seq=self.current_term * 1_000_000 + self.last_index + 1,
            value_size=0,
        )

    # -- difference 1 (follower side): never erase, reject longer logs ---------

    def _try_append(self, msg: AppendEntries) -> tuple:
        if msg.prev_index >= 0 and self.term_at(msg.prev_index) != msg.prev_term:
            return False, min(self.last_index, msg.prev_index - 1)
        if not msg.entries:
            # Pure heartbeat / commit-index update: nothing could be erased,
            # so the no-erase rule does not apply.
            return True, msg.prev_index
        if self.last_index > msg.last_index:
            # Figure 2b line 16: an acceptor rejects the leader's append if
            # its log is longer — erasing has no Paxos counterpart.
            return False, self.last_index
        insert = msg.prev_index + 1
        for offset, entry in enumerate(msg.entries):
            index = insert + offset
            if index <= self.last_index:
                self.log[index] = entry  # overwrite, never truncate
            else:
                self.log.append(entry)
            if entry.command.op is OpType.CONFIG:
                self._membership_active = True
        self._rewrite_ballots(msg.term)
        return True, msg.last_index

    def _rewrite_ballots(self, term: int) -> None:
        """Difference 2: all entries' ballots become the appending term
        (Figure 2b lines 6-7).  Entries are *replaced*, never mutated in
        place — log entries are shared with in-flight messages and peer
        logs (the transport ships references, not copies), so an in-place
        write here would rewrite another replica's state."""
        log = self.log
        for index, entry in enumerate(log):
            if entry.ballot != term:
                log[index] = Entry(term=entry.term, command=entry.command,
                                   ballot=term)

    def _append_to_log(self, command: Command) -> None:
        super()._append_to_log(command)
        self._rewrite_ballots(self.current_term)

    def _handle_append_reject(self, peer: str, msg: AppendEntriesReply) -> None:
        # A follower with a longer log rejected us.  Our merged log already
        # holds every potentially-committed value (phase-1 quorum coverage),
        # so the follower's surplus is unchosen: pad with no-ops so our next
        # append covers (and overwrites) its entire log.
        if msg.match_index > self.last_index and self.role is Role.LEADER:
            while self.last_index < msg.match_index:
                self._append_to_log(self._padding_nop())
            self._schedule_flush()

    # -- difference 2 consequence: no current-term commit restriction ------------

    def _can_commit_at(self, index: int) -> bool:
        return True
