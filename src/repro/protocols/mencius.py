"""Raft*-Mencius (Coordinated Raft*, Appendix A.4/B.6) and Coordinated Paxos
(Appendix A.3/B.5).

Mencius partitions the global log round-robin: with replicas r0..r4, r0 owns
indexes 0,5,10,…, r1 owns 1,6,11,…  Each replica is the *default leader*
(ballot 0) of its owned indexes: it proposes client commands there and they
commit after f acceptances (plus its own).

Skips keep the log moving: whenever a replica observes a higher index in use,
it advances its own next owned index, and per coordinated Paxos everyone may
treat a default leader's unused indexes below its advertised frontier as
chosen no-ops without any phase-2 wait.  The frontier (`next_own`) rides on
every append/ack and on periodic `SkipNotice`s; FIFO links make the
"no entry below the frontier ⇒ skipped" inference sound (the original
Mencius assumption).

Execution:
* **ordered mode** (contended workloads) — a command answers once every
  index up to its own is committed or skipped, which requires learning other
  owners' commit decisions (piggybacked `committed` lists);
* **commutative mode** (conflict-free workloads, the paper's "Raft*-M-0%")
  — a write answers as soon as it commits and all earlier indexes are
  *known* (proposal or skip seen), the optimization §5.2 measures.

Crash recovery: a replica that observes an unresolved index owned by a
silent replica runs coordinated-Paxos phase 1 over the stalled range with a
higher ballot and proposes no-ops (or any accepted value it finds).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.protocols.base import ReplicaBase
from repro.protocols.config import ClusterConfig
from repro.protocols.messages import (
    CommitNotice,
    MenciusAck,
    MenciusAppend,
    MenciusCatchup,
    MenciusPrepare,
    MenciusPromise,
    MenciusState,
    SkipNotice,
)
from repro.protocols.types import Command, Entry, OpType

STATUS_ACCEPTED = "accepted"
STATUS_COMMITTED = "committed"
STATUS_SKIPPED = "skipped"


class MenciusReplica(ReplicaBase):
    """A Mencius replica (default-leader + acceptor + learner in one)."""

    # Leaderless: there is no leader keepalive to merge into a host
    # beacon.  Skip/commit announcements already piggyback on the
    # protocol's own messages, which the host mux coalesces like any other
    # traffic — so Mencius groups are explicitly EXEMPT from beacon
    # merging (pinned by tests/protocols/test_mux.py), mirroring the
    # UnsupportedProtocolError precedent for leaderless resharding.
    beacon_mergeable = False

    #: execution mode: "ordered" or "commutative"
    execution_mode = "ordered"

    def __init__(self, name, sim, network, config: ClusterConfig, trace=None,
                 execution_mode: Optional[str] = None) -> None:
        super().__init__(name, sim, network, config, trace=trace)
        if execution_mode is not None:
            self.execution_mode = execution_mode
        self.rank = list(config.names).index(name)
        self.entries: Dict[int, Entry] = {}
        self.status: Dict[int, str] = {}
        self.skip_tags: Dict[int, bool] = {}   # the ported skipTags array
        self.executable: Set[int] = set()      # the ported executable set
        self.next_own = self.rank              # my next unused owned index
        self.frontier: Dict[str, int] = {n: list(config.names).index(n) for n in config.names}
        self.promised: Dict[int, int] = {}     # per-index promised ballot
        self._acks: Dict[int, Set[str]] = {}
        self._batch: Dict[int, Entry] = {}
        self._fresh_commits: List[int] = []
        self._exec_frontier = -1               # all indexes <= this are applied
        self._reply_frontier = -1              # commutative-mode bookkeeping
        self._last_heard: Dict[str, int] = {n: 0 for n in config.names}
        self._recovering: Dict[str, dict] = {}

        self._flush_timer = self.timer("mencius-flush")
        self._skip_timer = self.timer("skip")
        self._suspect_timer = self.timer("suspect")
        self._skip_timer.arm(config.skip_interval, self._on_skip_tick)
        self._suspect_timer.arm(config.revoke_timeout, self._on_suspect_tick)

        self.register_handler(MenciusAppend, self._on_append)
        self.register_handler(MenciusAck, self._on_ack)
        self.register_handler(SkipNotice, self._on_skip_notice)
        self.register_handler(CommitNotice, self._on_commit_notice)
        self.register_handler(MenciusPrepare, self._on_prepare)
        self.register_handler(MenciusPromise, self._on_promise)
        self.register_handler(MenciusCatchup, self._on_catchup)
        self.register_handler(MenciusState, self._on_state)
        self._last_exec_seen = (-1, 0)  # (frontier, time) for lag detection

    # -- ownership helpers ----------------------------------------------------

    def owner_of(self, index: int) -> str:
        return self.config.owner_of(index)

    def _my_next_owned_at_or_above(self, index: int) -> int:
        n = self.config.n
        base = (index // n) * n + self.rank
        return base if base >= index else base + n

    def leader_hint(self) -> Optional[str]:
        return self.name  # every replica serves its own clients

    def _advertised_frontier(self) -> int:
        """The frontier safe to advertise: everything below it has been
        *sent* (or skipped).  Batched-but-unflushed proposals must not be
        covered, or receivers would misread them as skips."""
        if self._batch:
            return min(self._batch)
        return self.next_own

    # -- client path ---------------------------------------------------------------

    def submit_command(self, command: Command) -> None:
        index = self.next_own
        self.next_own += self.config.n
        entry = Entry(term=0, command=command, ballot=0)
        self.entries[index] = entry
        self.status[index] = STATUS_ACCEPTED
        self._acks.setdefault(index, set()).add(self.name)
        self._batch[index] = entry
        if not self._flush_timer.armed:
            self._flush_timer.arm(self.config.append_flush_interval, self._flush)

    def _flush(self) -> None:
        self._flush_timer.cancel()
        if not self._batch and not self._fresh_commits:
            return
        batch, self._batch = self._batch, {}
        commits, self._fresh_commits = self._fresh_commits, []
        message = MenciusAppend(
            sender=self.name, owner=self.name, ballot=0,
            items=batch, next_own=self.next_own, committed=commits,
        )
        for peer in self.peers:
            self.send(peer, message)

    # -- accepting appends ----------------------------------------------------------------

    def _on_append(self, src: str, msg: MenciusAppend) -> None:
        self._last_heard[msg.sender] = self.sim.now
        accepted_ids: List[int] = []
        for index, entry in msg.items.items():
            if msg.ballot < self.promised.get(index, 0):
                continue
            if self.status.get(index) in (STATUS_COMMITTED, STATUS_SKIPPED):
                accepted_ids.append(index)  # idempotent re-accept
                continue
            self.promised[index] = max(self.promised.get(index, 0), msg.ballot)
            ousted = self.entries.get(index)
            self.entries[index] = entry.copy()
            self.status[index] = STATUS_ACCEPTED
            if msg.is_default and entry.command.is_nop:
                # Coordinated Paxos: a default leader's no-op is learnable
                # immediately (Figure 14 Phase2b lines 26-29).
                self.skip_tags[index] = True
                self.executable.add(index)
                self.status[index] = STATUS_SKIPPED
            accepted_ids.append(index)
            if (
                ousted is not None
                and not ousted.command.is_nop
                and ousted.command.request_id != entry.command.request_id
                and (ousted.command.request_id in self._clients
                     or ousted.command.request_id in self._relays)
            ):
                # A recovery overwrote our pending command with a no-op:
                # re-propose it at a fresh owned index.
                self.submit_command(ousted.command)
        self._note_frontier(msg.owner, msg.next_own)
        self._note_commits(msg.committed)
        self._maybe_skip_past(max(msg.items) if msg.items else msg.next_own - 1)
        if accepted_ids or msg.items:
            # Commit notices are never piggybacked here: they must reach
            # every replica, so they only travel on the broadcast path
            # (_flush), never on a point-to-point ack.
            self.send(src, MenciusAck(
                acker=self.name, owner=msg.owner, ballot=msg.ballot,
                indexes=accepted_ids, accepted=bool(accepted_ids),
                next_own=self._advertised_frontier(),
            ))
        self._advance()

    def _maybe_skip_past(self, seen_index: int) -> None:
        """On observing `seen_index` in use, skip our unused owned indexes
        below it (Mencius rule: never let our turn stall the log)."""
        if seen_index < self.next_own:
            return
        new_next = self._my_next_owned_at_or_above(seen_index + 1)
        for index in range(self.next_own, new_next):
            if self.owner_of(index) == self.name and index not in self.entries:
                self._mark_skipped(index)
        self.next_own = new_next

    def _mark_skipped(self, index: int) -> None:
        self.entries[index] = Entry(term=0, command=Command(
            op=OpType.NOP, client_id="__skip__", seq=index, value_size=0,
        ), ballot=0)
        self.status[index] = STATUS_SKIPPED
        self.skip_tags[index] = True
        self.executable.add(index)

    def _on_ack(self, src: str, msg: MenciusAck) -> None:
        self._last_heard[msg.acker] = self.sim.now
        self._note_frontier(msg.acker, msg.next_own)
        self._note_commits(msg.committed)
        if msg.accepted:
            for index in msg.indexes:
                self._record_ack(index, msg.acker, msg.ballot)
        self._advance()

    def _record_ack(self, index: int, acker: str, ballot: int) -> None:
        if self.status.get(index) in (STATUS_COMMITTED, STATUS_SKIPPED):
            return
        acks = self._acks.setdefault(index, set())
        acks.add(acker)
        if len(acks) >= self.config.majority:
            self.status[index] = STATUS_COMMITTED
            self._fresh_commits.append(index)
            if not self._flush_timer.armed:
                self._flush_timer.arm(self.config.append_flush_interval, self._flush)

    # -- skip / commit dissemination ----------------------------------------------------

    def _note_frontier(self, owner: str, next_own: int) -> None:
        """Learn `owner`'s skip frontier: any of its owned indexes below
        `next_own` for which we hold no entry was never proposed and is a
        chosen no-op (sound on FIFO links)."""
        old = self.frontier.get(owner, 0)
        if next_own <= old:
            return
        self.frontier[owner] = next_own
        for index in range(old, next_own):
            if self.owner_of(index) == owner and index not in self.entries:
                self._mark_skipped_remote(index)

    def _mark_skipped_remote(self, index: int) -> None:
        self.entries[index] = Entry(term=0, command=Command(
            op=OpType.NOP, client_id="__skip__", seq=index, value_size=0,
        ), ballot=0)
        self.status[index] = STATUS_SKIPPED
        self.skip_tags[index] = True
        self.executable.add(index)

    def _note_commits(self, indexes: List[int]) -> None:
        for index in indexes:
            if self.status.get(index) != STATUS_SKIPPED:
                self.status[index] = STATUS_COMMITTED

    def _on_skip_notice(self, src: str, msg: SkipNotice) -> None:
        self._last_heard[msg.owner] = self.sim.now
        self._note_frontier(msg.owner, msg.below)
        self._advance()

    def _on_commit_notice(self, src: str, msg: CommitNotice) -> None:
        self._note_commits(msg.indexes)
        self._advance()

    def _on_skip_tick(self) -> None:
        """Periodic frontier broadcast: keeps idle replicas from stalling
        everyone else's execution."""
        max_seen = max([self.next_own - 1] + [f - 1 for f in self.frontier.values()])
        self._maybe_skip_past(max_seen)
        notice = SkipNotice(owner=self.name, below=self._advertised_frontier())
        for peer in self.peers:
            self.send(peer, notice)
        if self._fresh_commits and not self._flush_timer.armed:
            self._flush_timer.arm(self.config.append_flush_interval, self._flush)
        self._skip_timer.arm(self.config.skip_interval, self._on_skip_tick)

    # -- execution -----------------------------------------------------------------------

    def _resolved(self, index: int) -> bool:
        return self.status.get(index) in (STATUS_COMMITTED, STATUS_SKIPPED)

    def _known(self, index: int) -> bool:
        return index in self.entries

    def _advance(self) -> None:
        # Ordered execution: apply the longest resolved prefix.  Commands
        # answered early in commutative mode have already been popped from
        # the pending tables, so apply_entry only updates the store for them.
        while self._resolved(self._exec_frontier + 1):
            self._exec_frontier += 1
            self.apply_entry(self._exec_frontier, self.entries[self._exec_frontier])
        if self.execution_mode == "commutative":
            self._advance_commutative()

    def _advance_commutative(self) -> None:
        """Commutative mode (Raft*-M-0%): answer a committed write as soon as
        every earlier index is *known* (proposal or skip seen) — conflict-free
        writes need not wait for earlier commits to execute."""
        while True:
            index = self._reply_frontier + 1
            if not self._known(index):
                return
            status = self.status.get(index)
            if status == STATUS_ACCEPTED and self.owner_of(index) == self.name:
                return  # our own entry must commit before we answer it
            self._reply_frontier = index
            command = self.entries[index].command
            if (
                index > self._exec_frontier
                and command.is_write
                and status in (STATUS_COMMITTED, STATUS_SKIPPED)
                and (command.request_id in self._clients
                     or command.request_id in self._relays)
            ):
                self.complete(command, ok=True, value=None)

    # -- crash recovery (revocation) --------------------------------------------------------

    def _on_suspect_tick(self) -> None:
        self._check_stalls()
        self._maybe_catch_up()
        self._suspect_timer.arm(self.config.revoke_timeout, self._on_suspect_tick)

    # -- anti-entropy: catch up on resolved indexes we missed -------------------

    def _maybe_catch_up(self) -> None:
        """If our execution frontier has been stuck while peers advertise
        higher frontiers, we probably missed commit/skip traffic (partition,
        restart): ask a peer for the resolved range."""
        frontier, seen_at = self._last_exec_seen
        if self._exec_frontier > frontier:
            self._last_exec_seen = (self._exec_frontier, self.sim.now)
            return
        behind = max(self.frontier.values()) - 1 > self._exec_frontier + 1
        stuck_for = self.sim.now - seen_at
        if behind and stuck_for >= self.config.revoke_timeout:
            for peer in self.peers:
                self.send(peer, MenciusCatchup(
                    requester=self.name, start=self._exec_frontier + 1))
            self._last_exec_seen = (self._exec_frontier, self.sim.now)

    def _on_catchup(self, src: str, msg: MenciusCatchup) -> None:
        items = {}
        for index in range(msg.start, self._exec_frontier + 1):
            status = self.status.get(index)
            if status in (STATUS_COMMITTED, STATUS_SKIPPED) and index in self.entries:
                items[index] = (self.entries[index].copy(), status)
            if len(items) >= 128:
                break
        if items:
            self.send(src, MenciusState(items=items))

    def _on_state(self, src: str, msg: MenciusState) -> None:
        for index, (entry, status) in msg.items.items():
            if self.status.get(index) in (STATUS_COMMITTED, STATUS_SKIPPED):
                continue
            ousted = self.entries.get(index)
            self.entries[index] = entry.copy()
            self.status[index] = status
            if status == STATUS_SKIPPED:
                self.skip_tags[index] = True
                self.executable.add(index)
            if (
                ousted is not None
                and not ousted.command.is_nop
                and ousted.command.request_id != entry.command.request_id
                and (ousted.command.request_id in self._clients
                     or ousted.command.request_id in self._relays)
            ):
                self.submit_command(ousted.command)
        self._advance()

    def _check_stalls(self) -> None:
        stalled = self._exec_frontier + 1
        horizon = max(self.frontier.values()) if self.frontier else 0
        if stalled >= horizon and not self._batch:
            return
        owner = self.owner_of(stalled)
        if owner == self.name:
            return
        silent_for = self.sim.now - self._last_heard.get(owner, 0)
        if silent_for < self.config.revoke_timeout:
            return
        # Only the lowest-ranked replica that is not the suspect initiates
        # recovery, to avoid duelling recoveries in the common case.
        for candidate in self.config.names:
            if candidate != owner:
                if candidate != self.name:
                    return
                break
        self._start_recovery(owner, stalled, horizon)

    def _start_recovery(self, owner: str, start: int, horizon: int) -> None:
        if owner in self._recovering:
            return
        end = max(horizon, start + self.config.n)
        ballot = self.sim.now // 1000 + self.rank + 1  # unique, increasing
        self._recovering[owner] = {
            "ballot": ballot, "start": start, "end": end, "promises": {},
        }
        message = MenciusPrepare(
            ballot=ballot, proposer=self.name, owner=owner, start=start, end=end,
        )
        for peer in self.peers:
            self.send(peer, message)
        # our own promise
        self._recovering[owner]["promises"][self.name] = self._make_promise(
            ballot, owner, start, end,
        )

    def _make_promise(self, ballot: int, owner: str, start: int, end: int) -> MenciusPromise:
        accepted = {}
        skipped = []
        for index in range(start, end):
            if self.owner_of(index) != owner:
                continue
            self.promised[index] = max(self.promised.get(index, 0), ballot)
            if self.status.get(index) == STATUS_SKIPPED:
                skipped.append(index)
            elif index in self.entries:
                accepted[index] = self.entries[index].copy()
        return MenciusPromise(
            ballot=ballot, acceptor=self.name, owner=owner,
            start=start, end=end, accepted=accepted, skipped=skipped,
        )

    def _on_prepare(self, src: str, msg: MenciusPrepare) -> None:
        for index in range(msg.start, msg.end):
            if self.owner_of(index) == msg.owner and msg.ballot < self.promised.get(index, 0):
                return  # already promised higher; ignore
        self.send(src, self._make_promise(msg.ballot, msg.owner, msg.start, msg.end))

    def _on_promise(self, src: str, msg: MenciusPromise) -> None:
        state = self._recovering.get(msg.owner)
        if state is None or msg.ballot != state["ballot"]:
            return
        state["promises"][msg.acceptor] = msg
        if len(state["promises"]) < self.config.majority:
            return
        # Phase 2: propose the safest value per index (accepted value if any
        # promise reports one, else no-op).
        items: Dict[int, Entry] = {}
        for index in range(state["start"], state["end"]):
            if self.owner_of(index) != msg.owner or self._resolved(index):
                continue
            best: Optional[Entry] = None
            for promise in state["promises"].values():
                entry = promise.accepted.get(index)
                if entry is not None and (best is None or entry.ballot > best.ballot):
                    best = entry
            command = best.command if best is not None else Command(
                op=OpType.NOP, client_id="__revoke__", seq=index, value_size=0,
            )
            entry = Entry(term=state["ballot"], command=command, ballot=state["ballot"])
            items[index] = entry
            self.entries[index] = entry
            self.status[index] = STATUS_ACCEPTED
            self.promised[index] = state["ballot"]
            self._acks[index] = {self.name}
        del self._recovering[msg.owner]
        if items:
            message = MenciusAppend(
                sender=self.name, owner=msg.owner, ballot=state["ballot"],
                items=items, next_own=self._advertised_frontier(), is_default=False,
            )
            for peer in self.peers:
                self.send(peer, message)
        self._advance()

    # -- lifecycle -------------------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        for timer in (self._flush_timer, self._skip_timer, self._suspect_timer):
            timer.cancel()
        self.stable["entries"] = {i: e.copy() for i, e in self.entries.items()}
        self.stable["status"] = dict(self.status)
        self.stable["next_own"] = self.next_own
        self.stable["promised"] = dict(self.promised)

    def on_recover(self) -> None:
        self.entries = {i: e.copy() for i, e in self.stable.get("entries", {}).items()}
        self.status = {
            i: (s if s != STATUS_COMMITTED else STATUS_ACCEPTED)
            for i, s in self.stable.get("status", {}).items()
        }
        for i, s in self.stable.get("status", {}).items():
            if s == STATUS_SKIPPED:
                self.status[i] = STATUS_SKIPPED
        self.next_own = self.stable.get("next_own", self.rank)
        self.promised = dict(self.stable.get("promised", {}))
        self.reset_store()
        self._exec_frontier = -1
        self._reply_frontier = -1
        self.last_applied = -1
        self._acks = {}
        self._batch = {}
        self._fresh_commits = []
        self._recovering = {}
        self._skip_timer.arm(self.config.skip_interval, self._on_skip_tick)
        self._suspect_timer.arm(self.config.revoke_timeout, self._on_suspect_tick)


class RaftStarMenciusReplica(MenciusReplica):
    """Raft*-Mencius: the ported optimization.  Recovery restamps adopted
    entries with the recovery term (Raft*'s ballot-rewriting discipline,
    Figure 15 BecomeLeader lines 11-13)."""


class CoordinatedPaxosReplica(MenciusReplica):
    """Coordinated Paxos (Mencius' substrate, Appendix B.5): identical
    dynamics; accepted entries keep their original ballots on recovery."""
