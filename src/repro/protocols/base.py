"""Common replica machinery.

`ReplicaBase` implements everything the protocols share so each protocol
module only contains consensus logic:

* handler dispatch (message type -> bound method);
* client sessions: requests received directly from clients, and requests
  forwarded from a follower to the leader (etcd-style batched forwarding)
  with replies routed back along the same path;
* the apply pipeline into the replicated `KVStore` with exactly-once apply
  and reply completion;
* hooks for tests/metrics (`on_apply_hooks`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kvstore.store import KVStore
from repro.protocols.config import ClusterConfig
from repro.protocols.messages import (
    ClientReply,
    ClientRequest,
    ForwardBatch,
    ReplyRelay,
)
from repro.protocols.types import Command, Entry, OpType
from repro.sim.node import Node

RequestId = Tuple[str, int]


class ReplicaBase(Node):
    """Base class for consensus replicas."""

    # Host-mux beacon merging: protocols whose empty heartbeat carries no
    # semantic payload beyond "reset your election timer, I lead term T"
    # opt in by setting this True (Raft, MultiPaxos).  Protocols whose
    # keepalive replies carry state the leader needs — lease liveness
    # (Raft*-LL), lease-holder sets (PQL) — and leaderless protocols
    # (Mencius: no leader, skip/commit announcements already piggyback on
    # its coalesced messages) stay False and keep their real keepalives.
    beacon_mergeable = False

    def __init__(self, name, sim, network, config: ClusterConfig, trace=None) -> None:
        super().__init__(
            name,
            sim,
            network,
            site=config.site_of(name),
            costs=config.costs,
            trace=trace,
            host=config.host_of(name),
        )
        self.config = config
        self.peers = config.peers_of(name)
        self.store = KVStore()

        # client sessions
        self._clients: Dict[RequestId, str] = {}
        self._relays: Dict[RequestId, str] = {}
        self._forward_buffer: List[Command] = []
        self._forward_timer = self.timer("forward-flush")

        # host-mux beacon merging (see beacon_refresh_due)
        self._beacon_ticks = 0

        # apply pipeline
        self.last_applied = -1
        self.on_apply_hooks: List[Callable[[str, int, Command], None]] = []

        # Dynamic membership (repro.membership): set once a CONFIG entry
        # enters the log — committed batches then take the per-entry apply
        # path so `_on_config_applied` fires at the right position.  A
        # replica removed by a completed change flips `retired` and fences
        # every client-facing path (stale-voter reads included); `joining`
        # suppresses election machinery on a freshly spawned replica until
        # a committed config makes it a voter.
        self._membership_active = False
        self.config_epoch = 0
        self.retired = False
        self.joining = False

        # Sharded deployments: maps a command to the owning group's id when
        # this replica's group does NOT own its key (None = ours to serve).
        # Misrouted requests are rejected with that redirect hint before
        # they reach the consensus path.
        self.ownership_guard: Optional[Callable[[Command], Optional[int]]] = None
        # Epoch-versioned ownership (live resharding): an object exposing
        # `.epoch` and `.shard_map()` so rejections can tell a stale client
        # how far behind its routing table is — and ship the new map.
        self.shard_info = None

        self._handlers: Dict[type, Callable[[str, Any], None]] = {}
        self.register_handler(ClientRequest, self._on_client_request)
        self.register_handler(ForwardBatch, self._on_forward_batch)
        self.register_handler(ReplyRelay, self._on_reply_relay)

    # -- dispatch ------------------------------------------------------------

    def register_handler(self, message_type: type, handler: Callable[[str, Any], None]) -> None:
        self._handlers[message_type] = handler
        # A host mux caches (replica, handler) pairs per inner-message type
        # (GroupMux._inbound); a late registration must not leave a stale
        # bound method in that cache.  In practice every protocol registers
        # in __init__, before mux registration, so this never fires hot.
        mux = self.mux
        if mux is not None:
            invalidate = getattr(mux, "invalidate_dispatch", None)
            if invalidate is not None:
                invalidate(self.name)

    def on_message(self, src: str, message: Any) -> None:
        handler = self._handlers.get(type(message))
        if handler is None:
            self.trace.record(self.sim.now, self.name, "unhandled", msg=type(message).__name__)
            return
        handler(src, message)

    def _handle(self, src: str, message: Any, incarnation: int) -> None:
        # Specialized dispatch: `Node._handle` -> `on_message` -> dict get
        # collapsed into one frame.  The handler table holds methods bound
        # once at construction, so the per-message work here is a single
        # dict probe plus the call.  Must stay behaviorally identical to
        # Node._handle + ReplicaBase.on_message (the equivalence test in
        # tests/protocols/test_fast_construct.py drives both paths).
        if not self.alive or self.incarnation != incarnation:
            return
        self.messages_handled += 1
        if self.trace.enabled:
            self.trace.record(self.sim.now, self.name, "recv", src=src,
                              msg=type(message).__name__)
        handler = self._handlers.get(type(message))
        if handler is None:
            self.trace.record(self.sim.now, self.name, "unhandled",
                              msg=type(message).__name__)
            return
        handler(src, message)

    # -- client sessions -------------------------------------------------------

    def _on_client_request(self, src: str, message: ClientRequest) -> None:
        command = message.command
        if self.retired:
            # Stale-voter fencing: a replica removed by a committed config
            # must not serve clients — not even lease reads, which would
            # otherwise answer from state the surviving voters have moved
            # past.  The plain rejection sends the client back through its
            # routing table (repaired to the replacement by the cluster).
            self.send(src, ClientReply(request_id=command.request_id,
                                       ok=False, server=self.name))
            return
        if self.ownership_guard is not None and command.shard_checked:
            hint = self.ownership_guard(command)
            if hint is not None:
                if self.obs is not None:
                    self.obs_phase(command.trace_id, "reply", ok=False,
                                   wrong_shard=True)
                self.send(src, self._wrong_shard_reply(command, hint,
                                                       message.epoch))
                return
        if self.obs is not None:
            self.obs_phase(command.trace_id, "server_recv")
        self._clients[command.request_id] = src
        self.submit_command(command)

    def _wrong_shard_reply(self, command: Command, hint: int,
                           client_epoch: Optional[int]) -> ClientReply:
        """A redirect rejection; ships the whole partition map when the
        client's routing epoch is behind this replica's."""
        reply = ClientReply(request_id=command.request_id, ok=False,
                            server=self.name, shard_hint=hint)
        if self.shard_info is not None:
            reply.epoch = self.shard_info.epoch
            if client_epoch is not None and client_epoch < self.shard_info.epoch:
                reply.shard_map = self.shard_info.shard_map()
        return reply

    def submit_command(self, command: Command) -> None:
        """Protocol-specific: propose/forward/serve the command."""
        raise NotImplementedError

    def leader_hint(self) -> Optional[str]:
        """Best current guess of the leader's name (None if unknown)."""
        raise NotImplementedError

    # -- host-mux beacon merging ----------------------------------------------

    def beacon_info(self) -> Optional[Tuple[str, int]]:
        """(leader name, term/round) when this replica currently leads a
        beacon-mergeable group; None otherwise.  The host mux polls this
        every beacon interval to build the merged `HostBeacon`."""
        return None

    def on_host_beacon(self, leader: str, term: int) -> None:
        """A merged host beacon carried a beat for this replica's group:
        protocols that suppress empty heartbeats reset their election
        machinery here."""

    def beacon_covered(self, peer: str) -> bool:
        """Whether the host beacon replaces this leader's empty heartbeat
        to `peer` (so the send may be suppressed)."""
        return (self.beacon_mergeable and self.mux is not None
                and self.mux.beacon_covers(self.name, peer))

    def beacon_refresh_due(self) -> bool:
        """Advance the heartbeat tick counter; every
        `config.beacon_refresh_ticks`-th tick the leader sends REAL empty
        keepalives even to beacon-covered peers — the beacon replaces the
        timer reset but not the commit-frontier self-healing a dropped
        frontier broadcast needs.  Call once per heartbeat tick."""
        self._beacon_ticks += 1
        return self._beacon_ticks % max(1, self.config.beacon_refresh_ticks) == 0

    def complete(self, command: Command, ok: bool, value: Optional[str],
                 local_read: bool = False, shard_hint: Optional[int] = None) -> None:
        """Route the result back to whoever is waiting for this command."""
        request_id = command.request_id
        value_size = command.value_size if command.is_read else 8
        if value and (command.op is OpType.MIGRATE_OUT or command.is_txn):
            # Range snapshots and transaction votes/reads/reports ride back
            # in the reply: charge their real size to the network/CPU models.
            value_size = len(value)
        reply = ClientReply(
            request_id=request_id,
            ok=ok,
            value=value,
            server=self.name,
            value_size=value_size,
            local_read=local_read,
            shard_hint=shard_hint,
        )
        if shard_hint is not None and self.shard_info is not None:
            # Apply-time bounce (the key migrated away while the command
            # was in the log): always ship the map — the requester's epoch
            # is no longer known at this point, and only stale or boundary
            # clients ever see this path.
            reply.epoch = self.shard_info.epoch
            reply.shard_map = self.shard_info.shard_map()
        client = self._clients.pop(request_id, None)
        relay = None if client is not None else self._relays.pop(request_id, None)
        if self.obs is not None and (client is not None or relay is not None):
            self.obs_phase(command.trace_id, "reply", ok=ok)
        if client is not None:
            self.send(client, reply)
            return
        if relay is not None:
            self.send(relay, ReplyRelay(replies=[reply]))

    # -- forwarding (etcd-style batching) ----------------------------------------

    def forward_to_leader(self, command: Command) -> None:
        """Queue a command for batched forwarding to the current leader."""
        leader = self.leader_hint()
        if leader is None or leader == self.name:
            # No leader known: drop; closed-loop clients retry via timeout.
            self.complete(command, ok=False, value=None)
            return
        if self.obs is not None:
            self.obs_phase(command.trace_id, "forward", leader=leader)
        self._forward_buffer.append(command)
        if len(self._forward_buffer) >= self.config.forward_batch_max:
            self._flush_forwards()
        elif not self._forward_timer.armed:
            self._forward_timer.arm(self.config.forward_flush_interval, self._flush_forwards)

    def _flush_forwards(self) -> None:
        self._forward_timer.cancel()
        if not self._forward_buffer:
            return
        leader = self.leader_hint()
        batch = self._forward_buffer
        self._forward_buffer = []
        if leader is None or leader == self.name:
            for command in batch:
                self.complete(command, ok=False, value=None)
            return
        self.send(leader, ForwardBatch(origin=self.name, commands=batch))

    def _on_forward_batch(self, src: str, message: ForwardBatch) -> None:
        for command in message.commands:
            if self.obs is not None:
                self.obs_phase(command.trace_id, "leader_recv",
                               origin=message.origin)
            self._relays[command.request_id] = message.origin
            self.submit_command(command)

    def _on_reply_relay(self, src: str, message: ReplyRelay) -> None:
        for reply in message.replies:
            client = self._clients.pop(reply.request_id, None)
            if client is not None:
                self.send(client, reply)

    # -- apply pipeline --------------------------------------------------------

    def _fast_apply_eligible(self) -> bool:
        """Whether a committed batch may bypass `apply_entry` and go to
        `KVStore.apply_batch` wholesale: nobody is observing the applies
        (no hooks — e.g. `ShardOwnership.on_apply`, which can flip the
        store's key filter MID-batch — no obs collector) and nobody is
        waiting for a completion (no client sessions, no relays).  Under
        those conditions `apply_entry` reduces to `store.apply` plus the
        `last_applied` bump, which is exactly what the batch path does."""
        return (not self._membership_active and not self.on_apply_hooks
                and self.obs is None and not self._clients
                and not self._relays)

    def apply_entry(self, index: int, entry: Entry) -> None:
        """Apply a committed entry to the state machine and complete the
        originating request if it is ours to answer."""
        command = entry.command
        result = self.store.apply(command)
        if index > self.last_applied:
            self.last_applied = index
        if command.op is OpType.CONFIG:
            # Membership changes act at APPLY time so every replica of the
            # group switches voter views at the same log position; the
            # store already recorded the dedup slot (retries answer from
            # cache instead of proposing a second epoch).
            self._on_config_applied(index, command)
        if not result.conflict:
            # Lock-conflict refusals mutate nothing and will be retried as
            # a NEW log entry, so apply observers must not see them — in
            # particular a refused MIGRATE_OUT (prepared locks in range)
            # must not advance `ShardOwnership`, or the donor would turn
            # away a range it still holds.  Deterministic: the lock table
            # is replicated state, so every replica skips the same entry.
            for hook in self.on_apply_hooks:
                hook(self.name, index, command)
        if command.is_nop:
            return
        rid = command.request_id
        if rid in self._clients or rid in self._relays:
            if self.obs is not None:
                self.obs_phase(command.trace_id, "commit", index=index)
            hint = None
            if result.wrong_shard and self.ownership_guard is not None:
                # The key migrated away between this command entering the
                # log and applying: answer with a redirect so the client
                # re-routes instead of treating it as a dead end.
                hint = self.ownership_guard(command)
            self.complete(command, ok=result.ok, value=result.value,
                          shard_hint=hint)

    def reset_store(self) -> None:
        """Fresh state machine for recovery replay, keeping the shard key
        filter (ownership survives a crash; the applied state does not)."""
        self.store = KVStore(key_filter=self.store.key_filter)

    def _on_config_applied(self, index: int, command: Command) -> None:
        """A CONFIG entry reached the apply point.  Protocols that support
        dynamic membership override this to switch voter views; the base
        implementation ignores it (a config entry replicated into a
        protocol without membership support is a harmless no-op)."""

    def serve_local_read(self, command: Command) -> None:
        """Answer a read from local state (lease-protected paths only)."""
        if self.retired:
            # Stale-voter fencing for the lease-read path: a removed
            # replica may still hold an unexpired lease from before the
            # final config committed — answering LEASE_LOCAL reads from it
            # would serve state the new voter set no longer guards.
            self.complete(command, ok=False, value=None)
            return
        if self.ownership_guard is not None:
            hint = self.ownership_guard(command)
            if hint is not None:
                # The key migrated away while the read was pending (it
                # passed the guard at arrival): a local read would now see
                # the exported — empty — slot.  Redirect instead.
                self.complete(command, ok=False, value=None, shard_hint=hint)
                return
        value = self.store.read_local(command.key)
        self.complete(command, ok=True, value=value, local_read=True)

    # -- lifecycle ---------------------------------------------------------------

    def on_crash(self) -> None:
        self._forward_timer.cancel()
        self._clients.clear()
        self._relays.clear()
        self._forward_buffer.clear()
