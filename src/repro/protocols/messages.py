"""Wire messages for every protocol.

All messages implement `size_bytes()` so the network's bandwidth model and
the nodes' CPU model see realistic payload sizes (4 KB entries really cost
4 KB of serialization).

Hot-path representation: every message class is a `slots=True` dataclass
(no per-instance `__dict__`), entry batches are tuples built once by the
sender, and non-constant `size_bytes()` results are memoized per instance
in a `_size` slot.  The three charging sites — node CPU cost, the
network's size estimate, and the mux envelope — all read that one cached
number, so a message's size is computed exactly once no matter how many
layers handle it.  The memo is safe because messages are frozen-in-
practice: senders finish populating fields before the first send, and
nothing mutates a message once it is in flight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (Any, Dict, FrozenSet, Iterable, List, NamedTuple,
                    Optional, Tuple)

from repro.protocols.types import Ballot, Command, Entry, OpType
# The envelope charges through the cost model's own canonical fallbacks
# (64 B / 0 commands for messages implementing neither hook), so a batch
# costs exactly the command/byte work its parts would — what batching
# amortizes is the per-message CPU cost, paid once per envelope.
from repro.sim.node import payload_command_count, payload_size_bytes

HEADER_BYTES = 48

#: Wire cost of referencing an entry already carried elsewhere in the same
#: envelope (see `HostEnvelope`): a (group, index) back-reference.
DEDUP_REF_BYTES = 8


def _entries_size(entries: Iterable[Entry]) -> int:
    return sum(entry.wire_size() for entry in entries)


def _memo() -> Any:
    """A per-instance size cache slot (-1 = not computed yet)."""
    return field(default=-1, init=False, repr=False, compare=False)


# --------------------------------------------------------------------------
# Client <-> replica
# --------------------------------------------------------------------------


@dataclass(slots=True)
class ShardMap:
    """The partition map at `epoch`, as shipped to stale clients.

    Enough to rebuild a routing table without a separate config service:
    ownership is equal hash-ranges over `num_shards` groups, and each
    group's replicas are named by convention (``g<shard>_r_<site>``), so
    epoch + shard count fully determine key -> server routing.
    """

    epoch: int
    num_shards: int

    def size_bytes(self) -> int:
        return 16


@dataclass(slots=True)
class ClientRequest:
    command: Command
    # The epoch of the partition map the client routed with (None for
    # unsharded deployments).  A server on a newer epoch ships its map back
    # with the rejection instead of just a shard id.
    epoch: Optional[int] = None
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + self.command.wire_size()
        return size

    def command_count(self) -> float:
        # Client-facing handling is the expensive path (connection, parse,
        # session bookkeeping) -- ~3 units, mirroring etcd's cost profile.
        return 3.0


@dataclass(slots=True)
class ClientReply:
    request_id: Tuple[str, int]
    ok: bool
    value: Optional[str] = None
    server: str = ""
    value_size: int = 8
    local_read: bool = False
    # Sharded deployments: set on a rejection when the key belongs to a
    # different group, so the client can re-route instead of blind-retrying.
    shard_hint: Optional[int] = None
    # The answering server's partition-map epoch, and — when the requester's
    # epoch is behind it — the full map, so one redirect repairs the whole
    # routing table rather than one key.
    epoch: Optional[int] = None
    shard_map: Optional[ShardMap] = None
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            extra = (self.shard_map.size_bytes()
                     if self.shard_map is not None else 0)
            size = self._size = HEADER_BYTES + self.value_size + extra
        return size


@dataclass(slots=True)
class TxnRequest:
    """Client -> transaction coordinator: run `ops` atomically.

    `ops` is a list of ``(op, key, value)`` triples ("put"/"get", value
    None for reads).  `ts` is the transaction's wait-die priority — fixed
    at the *first* attempt and reused on every retry so a transaction's
    priority ages rather than resets (the property wound-wait/wait-die
    liveness rests on).  Retries reuse `txn_seq`; the coordinator caches
    committed replies per (client, txn_seq)."""

    client: str
    txn_seq: int
    ts: int
    ops: List[Tuple[str, str, Optional[str]]]
    epoch: Optional[int] = None
    # Pipelined sessions: every txn_seq <= this is acknowledged, so the
    # coordinator may evict those committed-reply cache slots (the txn
    # counterpart of `Command.acked_low_water`).
    acked_low_water: int = -1
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + sum(
                24 + len(k) + (len(v) if v else 0) for _, k, v in self.ops)
        return size

    def command_count(self) -> float:
        # Same client-facing cost profile as a ClientRequest.
        return 3.0


@dataclass(slots=True)
class TxnReply:
    """Coordinator -> client: the transaction's outcome.

    `committed` False with `ok` True means a clean abort the client may
    retry under a fresh transaction id; `reads` carries the values observed
    at the 2PC serialization point (all locks held)."""

    client: str
    txn_seq: int
    ok: bool
    committed: bool = False
    reads: Dict[str, Optional[str]] = field(default_factory=dict)
    server: str = ""
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + sum(
                8 + (len(v) if v else 0) for v in self.reads.values())
        return size


@dataclass(slots=True)
class ForwardBatch:
    """A follower forwarding a batch of client commands to the leader
    (the etcd behaviour the paper keeps enabled: 'when a follower receives
    multiple requests from clients, it forwards them to the leader in a
    batch')."""

    origin: str
    commands: List[Command]
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + sum(
                command.wire_size() for command in self.commands)
        return size

    def command_count(self) -> int:
        return len(self.commands)


@dataclass(slots=True)
class ReplyRelay:
    """Leader -> origin follower: results for forwarded commands."""

    replies: List[ClientReply]
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + sum(
                reply.size_bytes() for reply in self.replies)
        return size


# --------------------------------------------------------------------------
# Raft / Raft*
# --------------------------------------------------------------------------


@dataclass(slots=True)
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(slots=True)
class RequestVoteReply:
    term: int
    voter: str
    granted: bool
    # Raft* only: entries the voter has beyond the candidate's log
    # (Figure 2a lines 14-16).  Plain Raft leaves this empty.
    extra_entries: Dict[int, Entry] = field(default_factory=dict)
    # Mencius/Coordinated Raft* only: the voter's skip tags for those entries.
    extra_skip_tags: Dict[int, bool] = field(default_factory=dict)
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + _entries_size(
                self.extra_entries.values())
        return size


@dataclass(slots=True)
class AppendEntries:
    term: int
    leader: str
    prev_index: int
    prev_term: int
    # Built once by the sender as a tuple; never mutated in flight.
    entries: Tuple[Entry, ...]
    leader_commit: int
    # Raft*-Mencius: whether the sender is the default leader for these
    # indexes, and piggybacked skip announcements (owner -> skipped-below).
    is_default: bool = False
    skips: Dict[str, int] = field(default_factory=dict)
    _size: int = _memo()
    # CPU-cost memo: `(NodeCosts, cost)` written by `NodeCosts.cost`.  The
    # same object fans out to every peer (and interned heartbeats repeat
    # for many ticks) — one compute per cost table covers them all.
    _cpu: Optional[tuple] = field(default=None, init=False, repr=False,
                                  compare=False)

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + _entries_size(self.entries)
        return size

    def command_count(self) -> float:
        # Replicated entry processing is cheap relative to client handling.
        return 0.25 * len(self.entries)

    def entry_batch(self) -> Iterable[Entry]:
        """Entries eligible for cross-group envelope dedup."""
        return self.entries

    @property
    def last_index(self) -> int:
        return self.prev_index + len(self.entries)

    # `AppendEntries.make(...)` / `AppendEntriesReply.make(...)` /
    # `HostEnvelope.make(...)` are bound after the class bodies (see
    # `_bind_fast_constructors`): direct slot stores, field-for-field
    # equal to dataclass construction including the -1 size memo.


@dataclass(slots=True)
class AppendEntriesReply:
    term: int
    follower: str
    success: bool
    match_index: int
    # PQL: lease holders currently granted by this follower
    # (the 'leases granted by s' of Figure 7 line 16 / Figure 8 line 9).
    lease_holders: FrozenSet[str] = frozenset()
    # Mencius: piggybacked skip announcement by the replier (owner -> below).
    skips: Dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES


# --------------------------------------------------------------------------
# MultiPaxos
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Prepare:
    """Phase1a: <'prepare', ballot, unchosen>."""

    ballot: Ballot
    proposer: str
    unchosen: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(slots=True)
class Promise:
    """Phase1b reply: <'prepareOK', ballot, instances with id >= unchosen>."""

    ballot: Ballot
    acceptor: str
    instances: Dict[int, Entry]
    log_tail: int
    # Mencius (Coordinated Paxos): skip tags for the reported instances.
    skip_tags: Dict[int, bool] = field(default_factory=dict)
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + _entries_size(
                self.instances.values())
        return size

    def entry_batch(self) -> Iterable[Entry]:
        """Entries eligible for cross-group envelope dedup."""
        return self.instances.values()


@dataclass(slots=True)
class Accept:
    """Phase2a: <'accept', instance, value, ballot>; batched over instances."""

    ballot: Ballot
    proposer: str
    instances: Dict[int, Command]
    commit_index: int
    # Mencius: proposer is default leader for these instances.
    is_default: bool = False
    skips: Dict[str, int] = field(default_factory=dict)
    _size: int = _memo()
    # CPU-cost memo: `(NodeCosts, cost)` written by `NodeCosts.cost`.  The
    # same object fans out to every peer (and interned heartbeats repeat
    # for many ticks) — one compute per cost table covers them all.
    _cpu: Optional[tuple] = field(default=None, init=False, repr=False,
                                  compare=False)

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + sum(
                command.wire_size() for command in self.instances.values())
        return size

    def command_count(self) -> float:
        return 0.25 * len(self.instances)


@dataclass(slots=True)
class Accepted:
    """Phase2b reply: <'acceptOK', instance, value, ballot>."""

    ballot: Ballot
    acceptor: str
    instance_ids: List[int]
    # PQL on Paxos: lease holders granted by this acceptor.
    lease_holders: FrozenSet[str] = frozenset()
    skips: Dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(slots=True)
class Learn:
    """Commit notification broadcast by the proposer."""

    instance_ids: List[int]
    proposer: str
    commit_index: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


# --------------------------------------------------------------------------
# Leases (PQL and Leader Lease)
# --------------------------------------------------------------------------


@dataclass(slots=True)
class LeaseGrant:
    """`grantor` grants `holder` a read lease until `expiry` (sim time)."""

    grantor: str
    holder: str
    expiry: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(slots=True)
class LeaseAck:
    """`holder` acknowledges a grant; a grantor treats holders that stop
    acking as inactive once their grant expires (so writes stop waiting on
    crashed lease holders after at most the lease duration)."""

    holder: str
    grantor: str
    expiry: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


# --------------------------------------------------------------------------
# Dynamic membership (repro.membership)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigChange:
    """The decoded payload of an `OpType.CONFIG` command.

    Not a wire message itself: a config change travels as an ordinary
    client command through the group's committed log (so every replica
    switches voter views at the same log position) with this record as
    its JSON value.  `kind` selects the reconfiguration style:

    * ``"joint"`` — Raft-side phase 1: activate the Cold ∧ Cnew joint
      view (`old` and `new` both populated).  The leader auto-appends the
      matching ``"final"`` once the joint entry applies.
    * ``"final"`` — Raft-side phase 2: retire Cold, voters become `new`.
    * ``"alpha"`` — Paxos-side single-decree change: `new` becomes the
      voter set `alpha` slots after this command's instance.

    `epoch` rises by one per change; a replica applying a stale epoch
    treats the entry as a no-op (replay/duplicate safety)."""

    kind: str
    epoch: int
    new: Tuple[str, ...]
    old: Tuple[str, ...] = ()
    alpha: int = 0

    def encode(self, client_id: str, seq: int) -> Command:
        """The CONFIG command carrying this change."""
        value = json.dumps({
            "kind": self.kind, "epoch": self.epoch,
            "new": sorted(self.new), "old": sorted(self.old),
            "alpha": self.alpha,
        }, sort_keys=True)
        return Command(op=OpType.CONFIG, key="__config__", value=value,
                       client_id=client_id, seq=seq, value_size=len(value))

    @staticmethod
    def decode(command: Command) -> "ConfigChange":
        record = json.loads(command.value or "{}")
        return ConfigChange(
            kind=record.get("kind", ""), epoch=record.get("epoch", 0),
            new=tuple(record.get("new", ())),
            old=tuple(record.get("old", ())),
            alpha=record.get("alpha", 0))


@dataclass(slots=True)
class CatchUpSnapshot:
    """Leader/proposer -> a joining replica: the full replicated state.

    Raft side: the whole log plus the commit index — the joiner replays
    it through its own apply path, rebuilding the store, the dedup
    windows, and the config history exactly (the repo never compacts, so
    the log IS the canonical state; `KVStore.export_full` is the
    compaction-ready alternative the property tests also pin).  Paxos
    side: the chosen instances and the commit frontier, same replay.

    `config` carries the sender's serialized membership state so the
    joiner starts from the right voter view even before the CONFIG
    entries in the payload re-apply."""

    sender: str
    entries: Tuple[Entry, ...]
    commit_index: int
    term: int = 0
    config: Optional[Dict[str, Any]] = None
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + _entries_size(self.entries)
        return size

    def command_count(self) -> float:
        # State transfer is bulk work, same per-entry profile as an
        # append batch.
        return 0.25 * len(self.entries)

    def entry_batch(self) -> Iterable[Entry]:
        """Entries eligible for cross-group envelope dedup."""
        return self.entries


@dataclass(slots=True)
class CatchUpReply:
    """Joining replica -> sender: snapshot installed through `last_index`.
    The sender seeds its replication cursor (match/next index) from this
    instead of probing backwards entry by entry."""

    follower: str
    last_index: int
    term: int = 0

    def size_bytes(self) -> int:
        return HEADER_BYTES


# --------------------------------------------------------------------------
# Mencius
# --------------------------------------------------------------------------


@dataclass(slots=True)
class SkipNotice:
    """`owner` announces all its unused owned indexes below `below` are
    no-op.  Per coordinated Paxos, a default leader proposing no-op lets
    everyone learn the no-op without waiting for phase 2."""

    owner: str
    below: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(slots=True)
class CommitNotice:
    """`owner` announces indexes in `indexes` are committed (Mencius commit
    dissemination; other replicas need it to order execution)."""

    owner: str
    indexes: List[int]

    def size_bytes(self) -> int:
        return HEADER_BYTES + 4 * len(self.indexes)


@dataclass(slots=True)
class MenciusAppend:
    """A (default or recovery) leader proposes values for specific global
    indexes.  `ballot` 0 marks the default leader's coordinated instances;
    recovery proposals carry a higher ballot.  `next_own` advertises the
    sender's next unused owned index (its cumulative skip frontier), and
    `committed` piggybacks its freshly committed indexes."""

    sender: str
    owner: str
    ballot: int
    items: Dict[int, Entry]
    next_own: int
    committed: List[int] = field(default_factory=list)
    is_default: bool = True
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = (HEADER_BYTES
                                 + _entries_size(self.items.values())
                                 + 4 * len(self.committed))
        return size

    def command_count(self) -> float:
        return 0.25 * len(self.items)

    def entry_batch(self) -> Iterable[Entry]:
        """Entries eligible for cross-group envelope dedup."""
        return self.items.values()


@dataclass(slots=True)
class MenciusAck:
    """Acceptance of `MenciusAppend` items; piggybacks the acker's own skip
    frontier and fresh commits."""

    acker: str
    owner: str
    ballot: int
    indexes: List[int]
    accepted: bool
    next_own: int
    committed: List[int] = field(default_factory=list)

    def size_bytes(self) -> int:
        return HEADER_BYTES + 4 * (len(self.indexes) + len(self.committed))


@dataclass(slots=True)
class MenciusCatchup:
    """A lagging replica asks a peer for the resolved range above `start`."""

    requester: str
    start: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(slots=True)
class MenciusState:
    """Catch-up reply: resolved entries (status committed/skipped only)."""

    items: Dict[int, Tuple[Entry, str]]
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + _entries_size(
                e for e, _ in self.items.values())
        return size

    def command_count(self) -> float:
        return 0.25 * len(self.items)

    def entry_batch(self) -> Iterable[Entry]:
        """Entries eligible for cross-group envelope dedup."""
        return [entry for entry, _ in self.items.values()]


@dataclass(slots=True)
class MenciusPrepare:
    """Recovery phase-1 for a suspected-crashed owner's index range."""

    ballot: int
    proposer: str
    owner: str
    start: int
    end: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(slots=True)
class MenciusPromise:
    """Recovery phase-1 reply: accepted entries for the probed range."""

    ballot: int
    acceptor: str
    owner: str
    start: int
    end: int
    accepted: Dict[int, Entry] = field(default_factory=dict)
    skipped: List[int] = field(default_factory=list)
    _size: int = _memo()

    def size_bytes(self) -> int:
        size = self._size
        if size < 0:
            size = self._size = HEADER_BYTES + _entries_size(
                self.accepted.values())
        return size

    def entry_batch(self) -> Iterable[Entry]:
        """Entries eligible for cross-group envelope dedup."""
        return self.accepted.values()


# --------------------------------------------------------------------------
# Host-multiplexed transport (repro.protocols.mux)
# --------------------------------------------------------------------------


class MuxedMessage(NamedTuple):
    """One protocol message in flight through a host mux: the real replica
    endpoints plus the group tag the receiving mux demultiplexes on.

    A NamedTuple, not a dataclass: the mux allocates one per intercepted
    send, and a tuple is the cheapest object with named fields."""

    src: str
    dst: str
    group: int
    payload: Any


# Per-type cache: whether a payload class exposes `entry_batch()` (entries
# eligible for cross-group dedup inside one envelope).
_HAS_BATCH: Dict[type, bool] = {}


def _payload_entry_batch(payload: Any) -> Optional[Iterable[Entry]]:
    tp = type(payload)
    has = _HAS_BATCH.get(tp)
    if has is None:
        has = callable(getattr(payload, "entry_batch", None))
        _HAS_BATCH[tp] = has
    return payload.entry_batch() if has else None


@dataclass(slots=True)
class HostBeacon:
    """The merged keepalive of every colocated leader on one host.

    `beats` maps group id -> (leader name, term/ballot round).  One beacon
    per destination host per heartbeat interval replaces one empty
    heartbeat per (leader, follower) pair; the receiving mux fans it out to
    the per-group follower timers (`ReplicaBase.on_host_beacon`)."""

    src_host: str
    beats: Dict[int, Tuple[str, int]] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + 12 * len(self.beats)


@dataclass(slots=True)
class HostEnvelope:
    """Everything one host sends another in one coalescing flush tick.

    The cost is the sum of the inner payloads plus ONE envelope header:
    the destination host pays `NodeCosts.per_message` once per envelope
    instead of once per inner message, which is the multi-raft CPU
    amortization the `coalesce` figure measures.  Wire bytes are NOT
    amortized: each inner message keeps its own framing (`size_bytes()`
    as it would cost unmuxed — length/type/group tags don't vanish when
    batched), and the envelope adds its one header on top.  Inner
    messages without their own `size_bytes` / `command_count` contribute
    the cost model's fallbacks (64 B, 0 commands) rather than silently
    vanishing from the bill.

    The one wire saving batching DOES earn: an entry that appears more
    than once in the same envelope (the same Command object at the same
    term/ballot, e.g. two followers of one group on one host, or groups
    replicating a shared migration record) is carried once; later
    occurrences cost a `DEDUP_REF_BYTES` back-reference.  One `seen` set
    spans ALL items regardless of originating group or payload kind:
    append streams (`AppendEntries`, `MenciusAppend`) and recovery /
    catch-up payloads (`Promise`, `MenciusState`, `MenciusPromise`) all
    participate via `entry_batch()`, so a shared record travels once even
    when a steady-state stream and a catch-up reply from different groups
    carry it in the same flush.  The key is strict (object identity AND
    term AND ballot): equal *content* in distinct objects is not a safe
    dedup (independent client commands may collide), and the same command
    re-framed at a different ballot is a different wire payload.  The
    per-flush saving is surfaced as `payload_dedup_bytes()` and
    accumulated by the mux into the `coalesce_payload_dedup_bytes`
    counter.
    """

    src_host: str
    dst_host: str
    items: Tuple[MuxedMessage, ...] = ()
    beacon: Optional[HostBeacon] = None
    _size: int = _memo()
    _dedup: int = _memo()

    def _compute(self) -> None:
        inner = 0
        total = 0
        batches = None
        for item in self.items:
            payload = item.payload
            inner += payload_size_bytes(payload)
            batch = _payload_entry_batch(payload)
            if batch is None or not batch:
                continue
            total += len(batch)
            if batches is None:
                batches = [batch]
            else:
                batches.append(batch)
        saved = 0
        if total > 1:
            # Two or more entries across the whole envelope: only then can
            # a key repeat.  (Single-entry flushes — the common idle-ish
            # tick — skip the key walk entirely.)
            seen = set()
            add = seen.add
            for batch in batches:
                for entry in batch:
                    key = (id(entry.command), entry.term, entry.ballot)
                    if key in seen:
                        # Identical entry (same command, same framing): one
                        # back-reference replaces the whole entry.
                        saved += max(0, entry.wire_size() - DEDUP_REF_BYTES)
                    else:
                        add(key)
        if self.beacon is not None:
            inner += self.beacon.size_bytes()
        self._dedup = saved
        self._size = HEADER_BYTES + inner - saved

    def size_bytes(self) -> int:
        if self._size < 0:
            self._compute()
        return self._size

    def payload_dedup_bytes(self) -> int:
        """Wire bytes saved by entry dedup across this envelope's items."""
        if self._dedup < 0:
            self._compute()
        return self._dedup

    def command_count(self) -> float:
        return sum(payload_command_count(m.payload) for m in self.items)

    def message_count(self) -> int:
        """Protocol messages this envelope replaces (beacon included)."""
        return len(self.items) + (1 if self.beacon is not None else 0)


def _bind_fast_constructors() -> None:
    """Attach `.make(...)` to the hot-path message classes: allocation via
    `object.__new__` plus direct slot-descriptor stores, skipping the
    dataclass `__init__`'s per-field `__setattr__` name lookups.  Results
    are field-for-field equal to dataclass construction — including the
    -1 size-memo sentinel and a FRESH (unshared) `skips` dict, matching
    `field(default_factory=dict)` — property-tested in
    tests/protocols/test_fast_construct.py."""
    new = object.__new__

    (a_term, a_leader, a_prev, a_prev_term, a_entries, a_commit,
     a_default, a_skips, a_size, a_cpu) = (
        AppendEntries.__dict__[n].__set__
        for n in ("term", "leader", "prev_index", "prev_term", "entries",
                  "leader_commit", "is_default", "skips", "_size", "_cpu"))

    def make_append(term: int, leader: str, prev_index: int, prev_term: int,
                    entries: Tuple[Entry, ...], leader_commit: int,
                    is_default: bool = False) -> AppendEntries:
        self = new(AppendEntries)
        a_term(self, term)
        a_leader(self, leader)
        a_prev(self, prev_index)
        a_prev_term(self, prev_term)
        a_entries(self, entries)
        a_commit(self, leader_commit)
        a_default(self, is_default)
        a_skips(self, {})
        a_size(self, -1)
        a_cpu(self, None)
        return self

    (r_term, r_follower, r_success, r_match, r_holders, r_skips) = (
        AppendEntriesReply.__dict__[n].__set__
        for n in ("term", "follower", "success", "match_index",
                  "lease_holders", "skips"))
    _no_holders: FrozenSet[str] = frozenset()

    def make_append_reply(term: int, follower: str, success: bool,
                          match_index: int) -> AppendEntriesReply:
        self = new(AppendEntriesReply)
        r_term(self, term)
        r_follower(self, follower)
        r_success(self, success)
        r_match(self, match_index)
        r_holders(self, _no_holders)
        r_skips(self, {})
        return self

    (e_src, e_dst, e_items, e_beacon, e_size, e_dedup) = (
        HostEnvelope.__dict__[n].__set__
        for n in ("src_host", "dst_host", "items", "beacon", "_size",
                  "_dedup"))

    def make_envelope(src_host: str, dst_host: str,
                      items: Tuple[MuxedMessage, ...] = (),
                      beacon: Optional[HostBeacon] = None) -> HostEnvelope:
        self = new(HostEnvelope)
        e_src(self, src_host)
        e_dst(self, dst_host)
        e_items(self, items)
        e_beacon(self, beacon)
        e_size(self, -1)
        e_dedup(self, -1)
        return self

    AppendEntries.make = staticmethod(make_append)
    AppendEntriesReply.make = staticmethod(make_append_reply)
    HostEnvelope.make = staticmethod(make_envelope)


_bind_fast_constructors()
