"""Wire messages for every protocol.

All messages implement `size_bytes()` so the network's bandwidth model and
the nodes' CPU model see realistic payload sizes (4 KB entries really cost
4 KB of serialization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.protocols.types import Ballot, Command, Entry
# The envelope charges through the cost model's own canonical fallbacks
# (64 B / 0 commands for messages implementing neither hook), so a batch
# costs exactly the command/byte work its parts would — what batching
# amortizes is the per-message CPU cost, paid once per envelope.
from repro.sim.node import payload_command_count, payload_size_bytes

HEADER_BYTES = 48


def _entries_size(entries: List[Entry]) -> int:
    return sum(entry.wire_size() for entry in entries)


# --------------------------------------------------------------------------
# Client <-> replica
# --------------------------------------------------------------------------


@dataclass
class ShardMap:
    """The partition map at `epoch`, as shipped to stale clients.

    Enough to rebuild a routing table without a separate config service:
    ownership is equal hash-ranges over `num_shards` groups, and each
    group's replicas are named by convention (``g<shard>_r_<site>``), so
    epoch + shard count fully determine key -> server routing.
    """

    epoch: int
    num_shards: int

    def size_bytes(self) -> int:
        return 16


@dataclass
class ClientRequest:
    command: Command
    # The epoch of the partition map the client routed with (None for
    # unsharded deployments).  A server on a newer epoch ships its map back
    # with the rejection instead of just a shard id.
    epoch: Optional[int] = None

    def size_bytes(self) -> int:
        return HEADER_BYTES + self.command.wire_size()

    def command_count(self) -> float:
        # Client-facing handling is the expensive path (connection, parse,
        # session bookkeeping) -- ~3 units, mirroring etcd's cost profile.
        return 3.0


@dataclass
class ClientReply:
    request_id: Tuple[str, int]
    ok: bool
    value: Optional[str] = None
    server: str = ""
    value_size: int = 8
    local_read: bool = False
    # Sharded deployments: set on a rejection when the key belongs to a
    # different group, so the client can re-route instead of blind-retrying.
    shard_hint: Optional[int] = None
    # The answering server's partition-map epoch, and — when the requester's
    # epoch is behind it — the full map, so one redirect repairs the whole
    # routing table rather than one key.
    epoch: Optional[int] = None
    shard_map: Optional[ShardMap] = None

    def size_bytes(self) -> int:
        extra = self.shard_map.size_bytes() if self.shard_map is not None else 0
        return HEADER_BYTES + self.value_size + extra


@dataclass
class TxnRequest:
    """Client -> transaction coordinator: run `ops` atomically.

    `ops` is a list of ``(op, key, value)`` triples ("put"/"get", value
    None for reads).  `ts` is the transaction's wait-die priority — fixed
    at the *first* attempt and reused on every retry so a transaction's
    priority ages rather than resets (the property wound-wait/wait-die
    liveness rests on).  Retries reuse `txn_seq`; the coordinator caches
    committed replies per (client, txn_seq)."""

    client: str
    txn_seq: int
    ts: int
    ops: List[Tuple[str, str, Optional[str]]]
    epoch: Optional[int] = None
    # Pipelined sessions: every txn_seq <= this is acknowledged, so the
    # coordinator may evict those committed-reply cache slots (the txn
    # counterpart of `Command.acked_low_water`).
    acked_low_water: int = -1

    def size_bytes(self) -> int:
        return HEADER_BYTES + sum(24 + len(k) + (len(v) if v else 0)
                                  for _, k, v in self.ops)

    def command_count(self) -> float:
        # Same client-facing cost profile as a ClientRequest.
        return 3.0


@dataclass
class TxnReply:
    """Coordinator -> client: the transaction's outcome.

    `committed` False with `ok` True means a clean abort the client may
    retry under a fresh transaction id; `reads` carries the values observed
    at the 2PC serialization point (all locks held)."""

    client: str
    txn_seq: int
    ok: bool
    committed: bool = False
    reads: Dict[str, Optional[str]] = field(default_factory=dict)
    server: str = ""

    def size_bytes(self) -> int:
        return HEADER_BYTES + sum(8 + (len(v) if v else 0)
                                  for v in self.reads.values())


@dataclass
class ForwardBatch:
    """A follower forwarding a batch of client commands to the leader
    (the etcd behaviour the paper keeps enabled: 'when a follower receives
    multiple requests from clients, it forwards them to the leader in a
    batch')."""

    origin: str
    commands: List[Command]

    def size_bytes(self) -> int:
        return HEADER_BYTES + sum(command.wire_size() for command in self.commands)

    def command_count(self) -> int:
        return len(self.commands)


@dataclass
class ReplyRelay:
    """Leader -> origin follower: results for forwarded commands."""

    replies: List[ClientReply]

    def size_bytes(self) -> int:
        return HEADER_BYTES + sum(reply.size_bytes() for reply in self.replies)


# --------------------------------------------------------------------------
# Raft / Raft*
# --------------------------------------------------------------------------


@dataclass
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class RequestVoteReply:
    term: int
    voter: str
    granted: bool
    # Raft* only: entries the voter has beyond the candidate's log
    # (Figure 2a lines 14-16).  Plain Raft leaves this empty.
    extra_entries: Dict[int, Entry] = field(default_factory=dict)
    # Mencius/Coordinated Raft* only: the voter's skip tags for those entries.
    extra_skip_tags: Dict[int, bool] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + _entries_size(list(self.extra_entries.values()))


@dataclass
class AppendEntries:
    term: int
    leader: str
    prev_index: int
    prev_term: int
    entries: List[Entry]
    leader_commit: int
    # Raft*-Mencius: whether the sender is the default leader for these
    # indexes, and piggybacked skip announcements (owner -> skipped-below).
    is_default: bool = False
    skips: Dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + _entries_size(self.entries)

    def command_count(self) -> float:
        # Replicated entry processing is cheap relative to client handling.
        return 0.25 * len(self.entries)

    @property
    def last_index(self) -> int:
        return self.prev_index + len(self.entries)


@dataclass
class AppendEntriesReply:
    term: int
    follower: str
    success: bool
    match_index: int
    # PQL: lease holders currently granted by this follower
    # (the 'leases granted by s' of Figure 7 line 16 / Figure 8 line 9).
    lease_holders: FrozenSet[str] = frozenset()
    # Mencius: piggybacked skip announcement by the replier (owner -> below).
    skips: Dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES


# --------------------------------------------------------------------------
# MultiPaxos
# --------------------------------------------------------------------------


@dataclass
class Prepare:
    """Phase1a: <'prepare', ballot, unchosen>."""

    ballot: Ballot
    proposer: str
    unchosen: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class Promise:
    """Phase1b reply: <'prepareOK', ballot, instances with id >= unchosen>."""

    ballot: Ballot
    acceptor: str
    instances: Dict[int, Entry]
    log_tail: int
    # Mencius (Coordinated Paxos): skip tags for the reported instances.
    skip_tags: Dict[int, bool] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + _entries_size(list(self.instances.values()))


@dataclass
class Accept:
    """Phase2a: <'accept', instance, value, ballot>; batched over instances."""

    ballot: Ballot
    proposer: str
    instances: Dict[int, Command]
    commit_index: int
    # Mencius: proposer is default leader for these instances.
    is_default: bool = False
    skips: Dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + sum(command.wire_size() for command in self.instances.values())

    def command_count(self) -> float:
        return 0.25 * len(self.instances)


@dataclass
class Accepted:
    """Phase2b reply: <'acceptOK', instance, value, ballot>."""

    ballot: Ballot
    acceptor: str
    instance_ids: List[int]
    # PQL on Paxos: lease holders granted by this acceptor.
    lease_holders: FrozenSet[str] = frozenset()
    skips: Dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class Learn:
    """Commit notification broadcast by the proposer."""

    instance_ids: List[int]
    proposer: str
    commit_index: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


# --------------------------------------------------------------------------
# Leases (PQL and Leader Lease)
# --------------------------------------------------------------------------


@dataclass
class LeaseGrant:
    """`grantor` grants `holder` a read lease until `expiry` (sim time)."""

    grantor: str
    holder: str
    expiry: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class LeaseAck:
    """`holder` acknowledges a grant; a grantor treats holders that stop
    acking as inactive once their grant expires (so writes stop waiting on
    crashed lease holders after at most the lease duration)."""

    holder: str
    grantor: str
    expiry: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


# --------------------------------------------------------------------------
# Mencius
# --------------------------------------------------------------------------


@dataclass
class SkipNotice:
    """`owner` announces all its unused owned indexes below `below` are
    no-op.  Per coordinated Paxos, a default leader proposing no-op lets
    everyone learn the no-op without waiting for phase 2."""

    owner: str
    below: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class CommitNotice:
    """`owner` announces indexes in `indexes` are committed (Mencius commit
    dissemination; other replicas need it to order execution)."""

    owner: str
    indexes: List[int]

    def size_bytes(self) -> int:
        return HEADER_BYTES + 4 * len(self.indexes)


@dataclass
class MenciusAppend:
    """A (default or recovery) leader proposes values for specific global
    indexes.  `ballot` 0 marks the default leader's coordinated instances;
    recovery proposals carry a higher ballot.  `next_own` advertises the
    sender's next unused owned index (its cumulative skip frontier), and
    `committed` piggybacks its freshly committed indexes."""

    sender: str
    owner: str
    ballot: int
    items: Dict[int, Entry]
    next_own: int
    committed: List[int] = field(default_factory=list)
    is_default: bool = True

    def size_bytes(self) -> int:
        return HEADER_BYTES + _entries_size(list(self.items.values())) + 4 * len(self.committed)

    def command_count(self) -> float:
        return 0.25 * len(self.items)


@dataclass
class MenciusAck:
    """Acceptance of `MenciusAppend` items; piggybacks the acker's own skip
    frontier and fresh commits."""

    acker: str
    owner: str
    ballot: int
    indexes: List[int]
    accepted: bool
    next_own: int
    committed: List[int] = field(default_factory=list)

    def size_bytes(self) -> int:
        return HEADER_BYTES + 4 * (len(self.indexes) + len(self.committed))


@dataclass
class MenciusCatchup:
    """A lagging replica asks a peer for the resolved range above `start`."""

    requester: str
    start: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class MenciusState:
    """Catch-up reply: resolved entries (status committed/skipped only)."""

    items: Dict[int, Tuple[Entry, str]]

    def size_bytes(self) -> int:
        return HEADER_BYTES + _entries_size([e for e, _ in self.items.values()])

    def command_count(self) -> float:
        return 0.25 * len(self.items)


@dataclass
class MenciusPrepare:
    """Recovery phase-1 for a suspected-crashed owner's index range."""

    ballot: int
    proposer: str
    owner: str
    start: int
    end: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class MenciusPromise:
    """Recovery phase-1 reply: accepted entries for the probed range."""

    ballot: int
    acceptor: str
    owner: str
    start: int
    end: int
    accepted: Dict[int, Entry] = field(default_factory=dict)
    skipped: List[int] = field(default_factory=list)

    def size_bytes(self) -> int:
        return HEADER_BYTES + _entries_size(list(self.accepted.values()))


# --------------------------------------------------------------------------
# Host-multiplexed transport (repro.protocols.mux)
# --------------------------------------------------------------------------


@dataclass
class MuxedMessage:
    """One protocol message in flight through a host mux: the real replica
    endpoints plus the group tag the receiving mux demultiplexes on."""

    src: str
    dst: str
    group: int
    payload: Any


@dataclass
class HostBeacon:
    """The merged keepalive of every colocated leader on one host.

    `beats` maps group id -> (leader name, term/ballot round).  One beacon
    per destination host per heartbeat interval replaces one empty
    heartbeat per (leader, follower) pair; the receiving mux fans it out to
    the per-group follower timers (`ReplicaBase.on_host_beacon`)."""

    src_host: str
    beats: Dict[int, Tuple[str, int]] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return HEADER_BYTES + 12 * len(self.beats)


@dataclass
class HostEnvelope:
    """Everything one host sends another in one coalescing flush tick.

    The cost is the sum of the inner payloads plus ONE envelope header:
    the destination host pays `NodeCosts.per_message` once per envelope
    instead of once per inner message, which is the multi-raft CPU
    amortization the `coalesce` figure measures.  Wire bytes are NOT
    amortized: each inner message keeps its own framing (`size_bytes()`
    as it would cost unmuxed — length/type/group tags don't vanish when
    batched), and the envelope adds its one header on top.  Inner
    messages without their own `size_bytes` / `command_count` contribute
    the cost model's fallbacks (64 B, 0 commands) rather than silently
    vanishing from the bill.
    """

    src_host: str
    dst_host: str
    items: List[MuxedMessage] = field(default_factory=list)
    beacon: Optional[HostBeacon] = None

    def size_bytes(self) -> int:
        inner = sum(payload_size_bytes(m.payload) for m in self.items)
        if self.beacon is not None:
            inner += self.beacon.size_bytes()
        return HEADER_BYTES + inner

    def command_count(self) -> float:
        return sum(payload_command_count(m.payload) for m in self.items)

    def message_count(self) -> int:
        """Protocol messages this envelope replaces (beacon included)."""
        return len(self.items) + (1 if self.beacon is not None else 0)
