"""Host-multiplexed group transport: cross-group message coalescing.

The paper pins single-group throughput to the leader's per-message CPU
work (Figure 9c/10a), and our `NodeCosts` model reproduces that: every
message costs `per_message` before any real command work.  Real multi-raft
systems (TiKV, CockroachDB) amortize exactly that cost at the *store*
level — all raft groups on one machine share one transport that batches
messages per destination store and merges the groups' heartbeats into one
store-level beacon.

`GroupMux` is that store-level transport for one `Host`:

* every replica of every group on the host registers with the mux; the
  replica's `Node.send` hands replica->replica traffic to the mux instead
  of the network (`Node.mux` seam);
* outbound messages are buffered per destination host and flushed as ONE
  `HostEnvelope` per `flush_interval` tick.  The envelope charges the sum
  of the inner payloads plus a single envelope header to the destination
  host's CPU and both hosts' NICs, so `NodeCosts.per_message` is paid
  once per envelope instead of once per message (wire bytes keep their
  per-message framing; only the CPU header amortizes);
* colocated leaders' empty heartbeats are merged: each beacon interval the
  mux collects `beacon_info()` from every local leader whose protocol
  opted in (`beacon_mergeable`) and ships one `HostBeacon` per destination
  host; the receiving mux fans the beats out to the per-group follower
  timers (`on_host_beacon`).  Leaderless protocols (Mencius) never report
  beacon info and are thereby exempt — their skip/commit announcements
  already ride the coalesced envelopes.

Failure semantics are preserved at replica granularity: a blocked
(src, dst) replica link drops the inner message at enqueue exactly as the
raw network would at send; a crashed destination replica drops its items
at unpack; a crashed *host* (the new crash unit — `Host.crash` fails every
colocated replica and the mux together) loses the whole buffered flush,
like a machine dying with its socket buffers.  Random iid loss applies to
envelopes rather than inner messages (one TCP connection per host pair,
so loss is bursty across the messages sharing it — see DESIGN.md §7).

FIFO: the network is FIFO per (src, dst) pair, the buffers are FIFO lists,
and unpack preserves list order, so per-(src, dst, group) ordering through
the mux matches the unmuxed transport (property-tested in
tests/protocols/test_mux_properties.py).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.protocols.messages import HostBeacon, HostEnvelope, MuxedMessage
from repro.sim.node import Host, Node, NodeCosts

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network


class MuxDirectory:
    """Shared routing state of one multiplexed deployment: which mux (host)
    serves each registered replica."""

    def __init__(self) -> None:
        self.muxes: Dict[str, "GroupMux"] = {}
        self.replica_to_mux: Dict[str, str] = {}
        self.group_of: Dict[str, int] = {}

    def covers(self, name: str) -> bool:
        return name in self.replica_to_mux


class GroupMux(Node):
    """The shared transport of one host: many group replicas, one NIC,
    one coalescing buffer, one merged beacon."""

    def __init__(self, host: Host, sim, network: "Network",
                 directory: MuxDirectory,
                 flush_interval: int,
                 beacon_interval: Optional[int] = None,
                 costs: Optional[NodeCosts] = None,
                 metrics=None) -> None:
        super().__init__(f"mux.{host.name}", sim, network, site=host.site,
                         costs=costs, host=host)
        self.directory = directory
        self.flush_interval = flush_interval
        self.beacon_interval = beacon_interval
        self.metrics = metrics
        self.local: Dict[str, Node] = {}
        self._member_by_group: Dict[int, Node] = {}
        self._buffers: Dict[str, List[MuxedMessage]] = {}
        # Destinations with a non-empty buffer: flush walks only these, so
        # a host talking to 2 of 30 peers pays for 2, not 30.
        self._dirty: Set[str] = set()
        # Outbound route cache: dst replica -> (dst mux name or None for
        # colocated, group).  Replica placement never changes after
        # registration; `register` clears it anyway for safety.
        self._routes: Dict[str, tuple] = {}
        # Inbound dispatch cache: (dst replica, payload type) -> the
        # pre-resolved (replica, bound handler) pair, so unpack skips the
        # registry lookups after the first message of each kind.
        # `ReplicaBase.register_handler` calls `invalidate_dispatch` on
        # late (re-)registration.
        self._inbound: Dict[Tuple[str, type], tuple] = {}
        self._pending_beacons: Dict[str, HostBeacon] = {}
        self._flush_timer = self.timer("mux-flush")
        self._beacon_timer = self.timer("mux-beacon")
        directory.muxes[self.name] = self
        if beacon_interval is not None:
            self._beacon_timer.arm(beacon_interval, self._on_beacon_tick)

    # -- registration --------------------------------------------------------

    def register(self, replica: Node, group: int) -> None:
        """Place `replica` (a member of `group`) behind this mux."""
        if replica.host is not self.host:
            raise ValueError(
                f"{replica.name} lives on host {replica.host.name}, "
                f"not this mux's host {self.host.name}")
        self.local[replica.name] = replica
        self._member_by_group[group] = replica
        self.directory.replica_to_mux[replica.name] = self.name
        self.directory.group_of[replica.name] = group
        self._routes.clear()
        replica.mux = self

    def covers(self, dst: str) -> bool:
        """Whether sends to `dst` should go through the mux layer."""
        return self.directory.covers(dst)

    # -- outbound ------------------------------------------------------------

    def enqueue(self, src: str, dst: str, message: Any) -> None:
        """Buffer a replica->replica message for the next flush tick."""
        network = self.network
        route = self._routes.get(dst)
        if route is None:
            directory = self.directory
            dst_mux = directory.replica_to_mux[dst]
            route = self._routes[dst] = (
                None if dst_mux == self.name else dst_mux,
                directory.group_of[dst])
        dst_mux, group = route
        if dst_mux is None:
            # Colocated endpoints: nothing to amortize, deliver locally.
            network.send(src, dst, message)
            return
        if network._blocked and network.link_blocked(src, dst):
            # Mirror the raw transport: a blocked link drops at send time.
            network.messages_sent += 1
            network.messages_dropped += 1
            return
        buffer = self._buffers.get(dst_mux)
        if buffer is None:
            # One list per destination host for the mux's lifetime: flush
            # empties it in place instead of reallocating per tick.
            buffer = self._buffers[dst_mux] = []
        if not buffer:
            self._dirty.add(dst_mux)
        buffer.append(MuxedMessage(src=src, dst=dst, group=group,
                                   payload=message))
        if not self._flush_timer.armed:
            self._flush_timer.arm(self.flush_interval, self.flush)

    def flush(self) -> None:
        """Ship one envelope per destination host with everything buffered."""
        if not self.alive:
            return
        self._flush_timer.cancel()
        buffers = self._buffers
        beacons, self._pending_beacons = self._pending_beacons, {}
        dirty = self._dirty
        targets = sorted(dirty.union(beacons)) if beacons else sorted(dirty)
        dirty.clear()
        make = HostEnvelope.make
        muxes = self.directory.muxes
        src_host = self.host.name
        for dst_mux in targets:
            buffer = buffers.get(dst_mux)
            if buffer:
                items = tuple(buffer)
                buffer.clear()
            else:
                items = ()
            envelope = make(src_host, muxes[dst_mux].host.name,
                            items, beacons.get(dst_mux))
            self._count("coalesce_envelopes")
            self._count("coalesce_messages", len(items))
            saved = envelope.payload_dedup_bytes()
            if saved:
                self._count("coalesce_payload_dedup_bytes", saved)
            if envelope.beacon is not None:
                self._count("coalesce_beacons")
                self._count("coalesce_beacon_beats", len(envelope.beacon.beats))
            self.network.send(self.name, dst_mux, envelope)

    # -- beacons -------------------------------------------------------------

    def beacon_covers(self, src: str, peer: str) -> bool:
        """Whether the merged host beacon will reach `peer`, so `src` (a
        colocated leader) may suppress its empty heartbeat to it.  False
        for unmuxed or colocated peers (they keep real heartbeats) and for
        blocked links (a partitioned leader must not keep resetting its
        followers' timers through the beacon)."""
        if self.beacon_interval is None:
            return False
        peer_mux = self.directory.replica_to_mux.get(peer)
        if peer_mux is None or peer_mux == self.name:
            return False
        return not self.network.link_blocked(src, peer)

    def _on_beacon_tick(self) -> None:
        for name in sorted(self.local):
            replica = self.local[name]
            if not replica.alive:
                continue
            info = getattr(replica, "beacon_info", lambda: None)()
            if info is None:
                continue
            leader, term = info
            group = self.directory.group_of[name]
            for peer in getattr(replica, "peers", ()):
                if not self.beacon_covers(name, peer):
                    continue
                dst_mux = self.directory.replica_to_mux[peer]
                beacon = self._pending_beacons.setdefault(
                    dst_mux, HostBeacon(src_host=self.host.name))
                beacon.beats[group] = (leader, term)
        if self._pending_beacons and not self._flush_timer.armed:
            self._flush_timer.arm(self.flush_interval, self.flush)
        self._beacon_timer.arm(self.beacon_interval, self._on_beacon_tick)

    # -- inbound -------------------------------------------------------------

    def invalidate_dispatch(self, name: Optional[str] = None) -> None:
        """Drop the inbound dispatch cache (a replica re-registered a
        handler after construction).  Rare by construction — every
        protocol registers in `__init__` — so a full clear is fine."""
        self._inbound.clear()

    def on_message(self, src: str, message: Any) -> None:
        if not isinstance(message, HostEnvelope):
            return
        # Unpack inline with the dispatch cache: semantically identical to
        # `replica.deliver_direct(item.src, item.payload)` per item (alive
        # check, handled counter, trace record, handler dispatch) minus the
        # per-item registry lookups.  `deliver_direct` stays as the
        # fallback for payload types with no registered handler.
        profiler = self.sim.profiler
        if profiler is not None and not profiler.mux_detail:
            profiler = None
        inbound = self._inbound
        local = self.local
        now = self.sim.now
        for item in message.items:
            dst = item.dst
            payload = item.payload
            payload_type = payload.__class__
            cached = inbound.get((dst, payload_type))
            if cached is None:
                replica = local.get(dst)
                if replica is None:
                    # Network stats count wire transmissions (the envelope
                    # was sent and delivered); the discarded inner item is
                    # mux bookkeeping, like the raw transport dropping at a
                    # dead process's doorstep.
                    self._count("coalesce_items_dropped")
                    continue
                handlers = getattr(replica, "_handlers", None)
                handler = (None if handlers is None
                           else handlers.get(payload_type))
                cached = inbound[(dst, payload_type)] = (replica, handler)
            replica, handler = cached
            if not replica.alive:
                self._count("coalesce_items_dropped")
                continue
            if handler is None:
                replica.deliver_direct(item.src, payload)
                continue
            replica.messages_handled += 1
            trace = replica.trace
            if trace.enabled:
                trace.record(now, replica.name, "recv", src=item.src,
                             msg=payload_type.__name__)
            if profiler is None:
                handler(item.src, payload)
            else:
                t0 = time.perf_counter()
                handler(item.src, payload)
                profiler.add_inner(
                    f"handle:HostEnvelope/{payload_type.__name__}",
                    time.perf_counter() - t0)
        if message.beacon is not None:
            for group in sorted(message.beacon.beats):
                leader, term = message.beacon.beats[group]
                replica = self._member_by_group.get(group)
                if replica is None or not replica.alive or replica.name == leader:
                    continue
                on_beacon = getattr(replica, "on_host_beacon", None)
                if on_beacon is not None:
                    on_beacon(leader, term)

    # -- lifecycle -----------------------------------------------------------

    def on_crash(self) -> None:
        # The machine died with its socket buffers: everything queued for
        # the next flush is gone.  Nothing was transmitted, so nothing
        # counts against the network's sent/dropped pair — the loss shows
        # up in the mux's own item counter.
        dropped = sum(len(items) for items in self._buffers.values())
        self._count("coalesce_items_dropped", dropped)
        self._buffers.clear()
        self._dirty.clear()
        self._pending_beacons.clear()
        self._flush_timer.cancel()
        self._beacon_timer.cancel()

    def on_recover(self) -> None:
        if self.beacon_interval is not None:
            self._beacon_timer.arm(self.beacon_interval, self._on_beacon_tick)

    # -- accounting ----------------------------------------------------------

    def _count(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, by)
