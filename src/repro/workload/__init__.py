"""YCSB-like workload generation (closed-loop clients)."""

from repro.workload.ycsb import WorkloadConfig
from repro.workload.clients import ClosedLoopClient, spawn_clients

__all__ = ["ClosedLoopClient", "WorkloadConfig", "spawn_clients"]
