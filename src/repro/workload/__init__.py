"""Workload generation: pipelined client sessions and their drivers.

`Session` is the core (pipeline window, retry policy, consistency levels,
at-most-once seq namespace); `ClosedLoopClient` and `OpenLoopClient` are
generation policies over it; `ClientPlan` is the one spawn path every
layer shares.
"""

from repro.protocols.types import Consistency
from repro.workload.clients import ClosedLoopClient, spawn_clients
from repro.workload.openloop import OpenLoopClient
from repro.workload.plan import ClientPlan
from repro.workload.session import RETRY_TIMEOUT, RetryPolicy, Session
from repro.workload.ycsb import WorkloadConfig

__all__ = [
    "ClientPlan",
    "ClosedLoopClient",
    "Consistency",
    "OpenLoopClient",
    "RETRY_TIMEOUT",
    "RetryPolicy",
    "Session",
    "WorkloadConfig",
    "spawn_clients",
]
