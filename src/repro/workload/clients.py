"""Closed-loop clients.

Each client targets the replica in its own region (the paper's deployment:
client and server instances per region) and issues the next request as soon
as the previous one completes.  Failed requests (no leader yet, dropped
replies) are retried with the same sequence number; the store's at-most-once
semantics make retries safe.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.metrics.recorder import MetricsRecorder, RequestRecord
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import Command, OpType
from repro.sim.node import Node, NodeCosts
from repro.sim.units import ms, sec
from repro.workload.ycsb import WorkloadConfig

RETRY_TIMEOUT = sec(5)


class ClosedLoopClient(Node):
    """A single closed-loop client bound to one server."""

    def __init__(self, name, sim, network, site, server: str,
                 workload: WorkloadConfig, sites, rng, metrics: MetricsRecorder,
                 stop_at: Optional[int] = None) -> None:
        # Clients are not the measured resource: make their CPU free so the
        # servers are the only bottleneck.
        super().__init__(name, sim, network, site=site,
                         costs=NodeCosts(per_message=0, per_byte=0.0))
        self.server = server
        self.workload = workload
        self.sites = list(sites)
        self.rng = rng
        self.metrics = metrics
        self.stop_at = stop_at
        self.seq = 0
        self.in_flight: Optional[Command] = None
        self.sent_at = 0
        self._retry_timer = self.timer("retry")
        # Rejection backoff is a *named* timer: `arm` replaces any pending
        # resend, so duplicated rejections (a retransmit answered twice, or
        # a rejection racing the retry timeout) collapse into one resend
        # instead of multiplying in-flight sends.
        self._backoff_timer = self.timer("backoff")
        self.completed = 0
        # Called with (command, reply, start, end) on every success —
        # the sharded layer wires history checkers through this.
        self.on_complete_hooks: List[Callable] = []
        # Staggered start so clients don't phase-lock.
        self.after(self.rng.randint(0, ms(10)), self._issue_next)

    # -- request generation -----------------------------------------------------

    def _pick_command(self) -> Command:
        self.seq += 1
        is_read = self.rng.random() < self.workload.read_fraction
        if self.rng.random() < self.workload.conflict_rate:
            key = self.workload.hot_key
        else:
            partition = self.workload.partition_for(self.site, self.sites)
            key = WorkloadConfig.key_name(self.rng.choice(partition))
        if is_read:
            return Command(op=OpType.GET, key=key, client_id=self.name,
                           seq=self.seq, value_size=self.workload.value_size)
        return Command(
            op=OpType.PUT, key=key, value=f"{self.name}:{self.seq}",
            client_id=self.name, seq=self.seq, value_size=self.workload.value_size,
        )

    def _issue_next(self) -> None:
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        self.in_flight = self._pick_command()
        self.sent_at = self.sim.now
        self._send_current()

    def _send_current(self) -> None:
        if self.in_flight is None:
            return
        self.send(self.server, self._request_message())
        self._retry_timer.arm(RETRY_TIMEOUT, self._retry)

    def _request_message(self) -> ClientRequest:
        """Hook: sharded clients stamp the request with their map epoch."""
        return ClientRequest(command=self.in_flight)

    def _retry(self) -> None:
        if self.in_flight is not None:
            self._send_current()

    # -- replies -------------------------------------------------------------------

    def on_message(self, src: str, message) -> None:
        if not isinstance(message, ClientReply):
            return
        command = self.in_flight
        if command is None or message.request_id != command.request_id:
            return  # stale reply from a retried request
        self._retry_timer.cancel()
        if not message.ok:
            # No leader yet (or leadership changed mid-flight): back off and
            # retry.  Re-arming the named timer dedupes duplicate rejections.
            self._backoff_timer.arm(ms(20), self._send_current)
            return
        self._backoff_timer.cancel()
        self.in_flight = None
        self.completed += 1
        for hook in self.on_complete_hooks:
            hook(command, message, self.sent_at, self.sim.now)
        self.metrics.add(RequestRecord(
            client=self.name,
            site=self.site,
            server=self.server,
            op=command.op,
            start=self.sent_at,
            end=self.sim.now,
            ok=True,
            local_read=message.local_read,
        ))
        self._issue_next()


def spawn_clients(sim, network, sites, server_of_site, per_region: int,
                  workload: WorkloadConfig, rng_root, metrics: MetricsRecorder,
                  stop_at: Optional[int] = None) -> List[ClosedLoopClient]:
    """Create `per_region` clients in every site, each bound to its local
    server (`server_of_site[site]`)."""
    clients = []
    for site in sites:
        for i in range(per_region):
            name = f"c_{site}_{i}"
            clients.append(ClosedLoopClient(
                name, sim, network, site, server_of_site[site], workload,
                sites, rng_root.stream(f"client:{name}"), metrics, stop_at=stop_at,
            ))
    return clients
