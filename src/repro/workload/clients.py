"""Closed-loop clients: a generation policy over `Session`.

Each client targets the replica in its own region (the paper's deployment:
client and server instances per region) and keeps its pipeline window full
— as soon as fewer than `depth` requests are outstanding it issues the
next one.  With the default `depth=1` this is exactly the paper's
closed-loop client: one outstanding request, the next issued on
completion.  Failed requests (no leader yet, dropped replies) are retried
with the same sequence number under the session's `RetryPolicy`; the
store's windowed at-most-once dedup makes retries safe at any depth.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.types import Command, OpType
from repro.sim.units import ms
from repro.workload.plan import ClientPlan
from repro.workload.session import (  # re-exported: the historical home
    LEGACY_RETRY,
    RETRY_TIMEOUT,
    RetryPolicy,
    Session,
)
from repro.workload.ycsb import WorkloadConfig

__all__ = ["ClosedLoopClient", "spawn_clients", "RetryPolicy",
           "RETRY_TIMEOUT", "LEGACY_RETRY"]


class ClosedLoopClient(Session):
    """A session driven closed-loop: the window is kept full of up to
    `depth` workload-generated requests (depth 1 = the paper's client)."""

    def __init__(self, name, sim, network, site, server: str,
                 workload: WorkloadConfig, sites, rng,
                 metrics: MetricsRecorder, stop_at: Optional[int] = None,
                 **session_kwargs) -> None:
        super().__init__(name, sim, network, site, server, workload, sites,
                         rng, metrics, stop_at=stop_at, **session_kwargs)
        # Staggered start so clients don't phase-lock.
        self.after(self.rng.randint(0, ms(10)), self._refill)

    # -- request generation --------------------------------------------------

    def _pick_op(self):
        """One workload-distributed operation: ("get"|"put", key, value).

        Write values must be UNIQUE (the history checkers anchor on them)
        and are derived from the submission counter, not the seq — an
        open-loop op can sit queued while the seq counter stands still,
        and seq-derived values would collide across the queue."""
        is_read = self.rng.random() < self.workload.read_fraction
        if self.rng.random() < self.workload.conflict_rate:
            key = self.workload.hot_key
        else:
            partition = self.workload.partition_for(self.site, self.sites)
            key = WorkloadConfig.key_name(self.rng.choice(partition))
        if is_read:
            return ("get", key, None)
        return ("put", key, f"{self.name}:{self.submitted + 1}")

    def _issue_one(self) -> None:
        op, key, value = self._pick_op()
        self.submit(op, key, value)

    def _refill(self) -> None:
        while (not self._generation_stopped()
               and self.outstanding < self.depth):
            before = self.outstanding
            self._issue_one()
            if self.outstanding <= before:  # driver declined to issue
                break


def spawn_clients(sim, network, sites, server_of_site, per_region: int,
                  workload: WorkloadConfig, rng_root, metrics: MetricsRecorder,
                  stop_at: Optional[int] = None,
                  plan: Optional[ClientPlan] = None) -> List[ClosedLoopClient]:
    """Create `plan.per_region` clients in every site, each bound to its
    local server (`server_of_site[site]`).  The plan decides depth, retry
    policy, consistency, open/closed loop, and host sharing; the default
    plan reproduces the legacy closed-loop fleet."""
    if plan is None:
        plan = ClientPlan(per_region=per_region)

    def make(name, site, rng, host, rate):
        if rate is not None:
            from repro.workload.openloop import OpenLoopClient  # lazy: cycle

            return OpenLoopClient(
                name, sim, network, site, server_of_site[site], workload,
                sites, rng, metrics, rate_per_sec=rate, stop_at=stop_at,
                host=host, **plan.session_kwargs())
        return ClosedLoopClient(
            name, sim, network, site, server_of_site[site], workload,
            sites, rng, metrics, stop_at=stop_at, host=host,
            **plan.session_kwargs())

    return plan.spawn(sim, sites, rng_root, make)
