"""Workload configuration (the paper's §5 'Workload' paragraph).

Closed-loop clients issue get/put requests back-to-back.  A configured
fraction of requests hits one shared popular record (the *conflict rate*);
otherwise the key space is pre-partitioned among the datacenters evenly and
keys are drawn uniformly from the local partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs matching the paper's experiments.

    read_fraction: probability a request is a GET (0.9 for Fig 9 default).
    conflict_rate: probability of touching the shared hot key (0.05 default).
    value_size: simulated payload bytes for PUTs (8 or 4096 in Fig 10).
    records: total records pre-partitioned across sites (paper: 100 K).
    """

    read_fraction: float = 0.9
    conflict_rate: float = 0.05
    value_size: int = 8
    records: int = 100_000
    hot_key: str = "hot"

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be in [0, 1]")
        if self.records <= 0:
            raise ValueError("records must be positive")

    def partition_for(self, site: str, sites: Sequence[str]) -> range:
        """The local key-id range for `site` (even pre-partitioning)."""
        ordered: List[str] = list(sites)
        idx = ordered.index(site)
        share = self.records // len(ordered)
        start = idx * share
        end = start + share if idx < len(ordered) - 1 else self.records
        return range(start, end)

    def uniform_key(self, rng) -> str:
        """A key drawn uniformly from the whole keyspace, ignoring the
        per-site pre-partitioning — the load model for sharded deployments,
        where ownership is decided by the hash partitioner rather than the
        client's site."""
        return self.key_name(rng.randrange(self.records))

    @staticmethod
    def key_name(key_id: int) -> str:
        return f"k{key_id}"

    @staticmethod
    def key_id(key: str) -> int:
        """Inverse of `key_name` (raises for non-workload keys)."""
        return int(key[1:])
