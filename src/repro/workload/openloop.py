"""Open-loop load: Poisson arrivals at a target rate.

The closed-loop drivers measure *self-clocked* load — each client's next
request waits for its previous ack, so offered load is a function of the
client count and the system's own latency, and a saturated server
silently throttles its own clients.  Real front-end traffic does not slow
down because the backend did.  The open-loop driver submits on an
exponential (Poisson-process) clock at `rate_per_sec` regardless of
completions: requests beyond the pipeline window queue in the session,
latency is measured from *submission* (queueing delay included), and
pushing the offered load past the service capacity shows the classic
latency knee instead of a flat closed-loop point.

`PoissonArrivals` is a driver mixin over any closed-loop client class —
it replaces the refill-on-completion policy with the arrival clock but
keeps the host class's workload generation and routing.  Arrivals stop at
`stop_at` like the closed-loop generators; whatever is still queued keeps
draining so the final accounting balances.
"""

from __future__ import annotations

from typing import Optional

from repro.workload.clients import ClosedLoopClient


class PoissonArrivals:
    """Driver mixin: feed the session from a Poisson arrival process.

    Mix in front of a closed-loop client class; `rate_per_sec` is this
    client's arrival rate.  The host class's `_pick_op` keeps deciding
    *what* is issued — this mixin only decides *when*.
    """

    def __init__(self, *args, rate_per_sec: float, **kwargs) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        self.rate_per_sec = rate_per_sec
        self.arrivals = 0
        self._arrival_timer = None
        super().__init__(*args, **kwargs)
        self._arrival_timer = self.timer("arrival")
        self._schedule_arrival()

    def _interarrival_us(self) -> int:
        return max(1, int(self.rng.expovariate(self.rate_per_sec) * 1e6))

    def _schedule_arrival(self) -> None:
        if self._generation_stopped():
            return
        self._arrival_timer.arm(self._interarrival_us(), self._arrive)

    def _arrive(self) -> None:
        if not self._generation_stopped():
            self.arrivals += 1
            self._issue_one()
        self._schedule_arrival()

    def _refill(self) -> None:
        """Completions do NOT generate work — the arrival clock does.
        (The staggered start-up refill becomes a no-op too; the arrival
        timer armed in __init__ is the only generator.)"""


class OpenLoopClient(PoissonArrivals, ClosedLoopClient):
    """The unsharded open-loop client: Poisson arrivals, one local server."""

    def __init__(self, name, sim, network, site, server, workload, sites,
                 rng, metrics, rate_per_sec: float,
                 stop_at: Optional[int] = None, **session_kwargs) -> None:
        super().__init__(name, sim, network, site, server, workload, sites,
                         rng, metrics, stop_at=stop_at,
                         rate_per_sec=rate_per_sec, **session_kwargs)
