"""`ClientPlan`: the one way client fleets are spawned.

Before the session API, every layer had its own copy of the spawn loop
(`workload.clients.spawn_clients`, `shard.router.spawn_sharded_clients`,
`shard.txn.spawn_txn_clients`, `ShardedCluster._spawn_clients`) — same
naming convention, same rng-stream derivation, same per-site iteration,
duplicated four times.  A `ClientPlan` owns that loop plus the fleet-wide
session knobs:

* `per_region` clients per site, named ``c_<site>_<i>`` with rng stream
  ``client:<name>`` (unchanged, so seeds reproduce);
* pipeline `depth`, `RetryPolicy`, and default read `Consistency` for
  every session in the fleet;
* `offered_load` — when set, the fleet is **open-loop**: each client
  submits on a Poisson clock at ``offered_load / fleet_size`` ops/s
  instead of on completion;
* `hosts_per_site` — when set, clients in a site share that many sim
  `Host`s (machine ``ch<i % n>.<site>``) instead of one private host
  each: the fleet contends on shared NICs and can be crashed per machine,
  the ROADMAP's "host-multiplexed clients" item.  Client CPU cost stays
  zero either way — the servers remain the measured resource.

Layers keep their own client classes; they hand `spawn` a factory
``make(name, site, rng, host, rate)`` and the plan does the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.protocols.types import Consistency
from repro.sim.node import Host
from repro.workload.session import RetryPolicy


@dataclass(frozen=True)
class ClientPlan:
    """Fleet-wide client parameters, shared by every spawn path."""

    per_region: int = 10
    depth: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    read_consistency: Consistency = Consistency.DEFAULT
    # Aggregate open-loop arrival rate (ops/s) across the whole fleet;
    # None = closed loop.
    offered_load: Optional[float] = None
    # Share `hosts_per_site` sim Hosts among each site's clients
    # (None = legacy one-private-host-per-client).
    hosts_per_site: Optional[int] = None
    name_prefix: str = "c"

    def session_kwargs(self) -> Dict:
        """The per-session constructor knobs this plan fixes fleet-wide."""
        return {"depth": self.depth, "retry": self.retry,
                "read_consistency": self.read_consistency}

    def fleet_size(self, sites) -> int:
        return self.per_region * len(sites)

    def rate_per_client(self, sites) -> Optional[float]:
        if self.offered_load is None:
            return None
        return self.offered_load / max(1, self.fleet_size(sites))

    def spawn(self, sim, sites, rng_root,
              make: Callable[..., object]) -> List:
        """Build the fleet: `make(name, site, rng, host, rate)` per client.

        `host` is None (private host) or the shared machine this client
        lives on; `rate` is None (closed loop) or the client's Poisson
        arrival rate in ops/s."""
        rate = self.rate_per_client(sites)
        hosts: Dict[str, Host] = {}
        clients: List = []
        for site in sites:
            for i in range(self.per_region):
                name = f"{self.name_prefix}_{site}_{i}"
                host = None
                if self.hosts_per_site is not None:
                    host_name = f"ch{i % self.hosts_per_site}.{site}"
                    host = hosts.get(host_name)
                    if host is None:
                        host = Host(host_name, sim, site=site)
                        hosts[host_name] = host
                clients.append(make(
                    name=name, site=site,
                    rng=rng_root.stream(f"client:{name}"),
                    host=host, rate=rate))
        return clients
