"""The client session: pipelined requests over one (client_id, seq) namespace.

A `Session` is the client-side core every workload driver in this repo is a
thin policy over.  It owns:

* the **sequence namespace** — every operation gets the next seq, and the
  (client_id, seq) pair is the at-most-once identity the stores dedup on;
* a **pipeline window** of up to `depth` concurrent in-flight commands.
  Each in-flight request carries its own retry and rejection-backoff
  timers, replies complete out of order (matched by request id), and stale
  replies — retransmits of already-answered requests — are discarded;
* the **acked low-water mark**: the largest L such that every seq <= L is
  acknowledged.  Each outgoing command is stamped with it
  (`Command.acked_low_water`), which is what lets the server's windowed
  dedup (`kvstore.store.DedupSession`) evict safely;
* per-operation **consistency levels** (`Consistency`): DEFAULT keeps
  today's behaviour, LINEARIZABLE forces the log, LEASE_LOCAL rides the
  lease-read paths where the protocol has them;
* a **submit queue** for operations arriving while the window is full
  (open-loop drivers submit on their own clock; latency is measured from
  submission, so queueing delay — the knee of the latency-vs-offered-load
  curve — is part of the number).

Drivers plug in at three seams: `_issue_one()` (closed-loop generation),
`_route(key)` (shard routing), and `_on_reject(...)` (redirect policies).
`ClosedLoopClient` with `depth=1` reproduces the original closed-loop
client exactly; `ShardRoutedClient` layers routing and transactions on the
same machinery.

Retry timing is policy, not constants: `RetryPolicy` gives jittered
exponential backoff for both the lost-reply resend timeout and the
rejection backoff, so a whole pipeline window rejected at once (a leader
election, a draining migration) de-synchronizes instead of hammering in
lockstep.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.metrics.recorder import MetricsRecorder, RequestRecord
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import Command, Consistency, OpType
from repro.sim.node import Host, Node, NodeCosts
from repro.sim.units import ms, sec


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for the two client retry paths.

    `retry_timeout` re-sends a request whose reply never came (loss,
    crash); `backoff_base` delays the resend after an explicit rejection
    (no leader yet, draining migration).  Both grow by `multiplier` per
    consecutive occurrence on the same request, capped (`retry_cap` /
    `backoff_cap`), and every delay is spread by +/- `jitter` (a fraction)
    so a rejected pipeline window's retries fan out instead of arriving as
    one synchronized storm.  The defaults reproduce the legacy constants
    (5 s timeout, 20 ms backoff) as the *base* of the schedule.
    """

    retry_timeout: int = sec(5)
    retry_cap: int = sec(20)
    backoff_base: int = ms(20)
    backoff_cap: int = ms(320)
    multiplier: float = 2.0
    jitter: float = 0.1

    def _jittered(self, delay: float, rng) -> int:
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(1, int(delay))

    def retry_delay(self, attempt: int, rng) -> int:
        """Resend timeout before the `attempt`-th retransmit (0-based)."""
        delay = min(self.retry_timeout * self.multiplier ** attempt,
                    float(self.retry_cap))
        return self._jittered(delay, rng)

    def backoff_delay(self, rejections: int, rng) -> int:
        """Backoff after the `rejections`-th consecutive rejection (1-based)."""
        delay = min(self.backoff_base * self.multiplier ** max(0, rejections - 1),
                    float(self.backoff_cap))
        return self._jittered(delay, rng)


#: The legacy resend timeout, kept as the default `RetryPolicy` base.
RETRY_TIMEOUT = sec(5)

#: A deterministic policy reproducing the pre-session fixed constants
#: exactly (no growth, no jitter) — regression tests pin against this.
LEGACY_RETRY = RetryPolicy(multiplier=1.0, jitter=0.0)


class AckFloor:
    """The contiguous-acknowledgement floor of a pipelined namespace:
    the largest L such that every seq <= L is acked, maintained under
    out-of-order ack arrivals.  Shared by the session's command seqs and
    the shard client's txn_seqs — it is the value stamped into outgoing
    requests to drive the server-side dedup-window eviction."""

    __slots__ = ("floor", "_above")

    def __init__(self, floor: int = 0) -> None:
        self.floor = floor
        self._above: set = set()

    def ack(self, seq: int) -> None:
        self._above.add(seq)
        while self.floor + 1 in self._above:
            self.floor += 1
            self._above.discard(self.floor)


class PendingRequest:
    """One in-flight slot of the pipeline window."""

    __slots__ = ("command", "server", "submitted_at", "attempts",
                 "rejections", "redirect_hops", "retry_timer", "backoff_timer",
                 "on_done")

    def __init__(self, command: Command, server: str, submitted_at: int,
                 retry_timer, backoff_timer, on_done=None) -> None:
        self.command = command
        self.server = server
        self.submitted_at = submitted_at  # entered the session (queue incl.)
        self.attempts = 0                 # sends so far
        self.rejections = 0               # consecutive ok=False replies
        self.redirect_hops = 0            # consecutive shard redirects
        self.retry_timer = retry_timer
        self.backoff_timer = backoff_timer
        self.on_done = on_done

    def cancel_timers(self) -> None:
        self.retry_timer.cancel()
        self.backoff_timer.cancel()


class _QueuedOp:
    __slots__ = ("kind", "key", "value", "consistency", "submitted_at",
                 "value_size", "on_done", "trace")

    def __init__(self, kind: str, key: str, value: Optional[str],
                 consistency: Consistency, submitted_at: int,
                 value_size: Optional[int], on_done,
                 trace: Optional[str] = None) -> None:
        self.kind = kind
        self.key = key
        self.value = value
        self.consistency = consistency
        self.submitted_at = submitted_at
        self.value_size = value_size
        self.on_done = on_done
        # Span id allocated at submit time (before the seq exists), so the
        # queueing delay ahead of window admission is part of the span.
        self.trace = trace


_OPS = {"get": OpType.GET, "put": OpType.PUT, "txn": OpType.TXN}


class Session(Node):
    """A pipelined client session bound to (by default) one server.

    Not a workload by itself: call `get`/`put`/`batch` (or let a driver
    subclass generate operations) and completions arrive via
    `on_complete_hooks` / per-op `on_done` callbacks.
    """

    def __init__(self, name, sim, network, site, server: str,
                 workload, sites, rng, metrics: MetricsRecorder,
                 stop_at: Optional[int] = None, depth: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 read_consistency: Consistency = Consistency.DEFAULT,
                 host: Optional[Host] = None) -> None:
        # Clients are not the measured resource: make their CPU free so the
        # servers are the only bottleneck.
        super().__init__(name, sim, network, site=site,
                         costs=NodeCosts(per_message=0, per_byte=0.0),
                         host=host)
        self.server = server
        self.workload = workload
        self.sites = list(sites)
        self.rng = rng
        self.metrics = metrics
        self.stop_at = stop_at
        self.depth = max(1, depth)
        self.retry = retry if retry is not None else RetryPolicy()
        self.read_consistency = read_consistency

        # The workload's value size never changes mid-run: resolve the
        # per-op default once instead of a getattr per admission.
        self._default_value_size = getattr(workload, "value_size", 8)
        self.seq = 0                 # last allocated sequence number
        self.submitted = 0           # operations accepted (window + queue)
        self.completed = 0
        # All seqs <= acked_floor are acknowledged.  Seqs start at 1, so
        # the vacuous floor is 0 (a floor of 0 evicts nothing server-side).
        self._ack_floor = AckFloor()
        self._pending: Dict[int, PendingRequest] = {}
        self._submit_queue: Deque[_QueuedOp] = deque()
        # Called with (command, reply, start, end) on every success —
        # the sharded layer wires history checkers through this.
        self.on_complete_hooks: List[Callable] = []

    # -- introspection -------------------------------------------------------

    @property
    def acked_floor(self) -> int:
        """Largest L with every seq <= L acknowledged (stamped into every
        outgoing command as `acked_low_water`)."""
        return self._ack_floor.floor

    @property
    def in_flight(self) -> Optional[Command]:
        """The oldest un-answered command (None when the window is empty).
        With depth 1 this is *the* in-flight command, as before."""
        if not self._pending:
            return None
        return self._pending[min(self._pending)].command

    @property
    def in_flight_count(self) -> int:
        return len(self._pending)

    @property
    def queued_count(self) -> int:
        return len(self._submit_queue)

    @property
    def outstanding(self) -> int:
        """Operations submitted but not yet acknowledged (window + queue).
        Drivers refill against this, so queued work counts as occupancy."""
        return len(self._pending) + len(self._submit_queue)

    def pending_commands(self) -> List[Command]:
        return [self._pending[seq].command for seq in sorted(self._pending)]

    @property
    def window_free(self) -> bool:
        return len(self._pending) < self.depth

    # -- the session API -----------------------------------------------------

    def get(self, key: str, consistency: Optional[Consistency] = None,
            value_size: Optional[int] = None, on_done=None) -> None:
        """Read `key` at the given consistency (session default if None)."""
        self.submit("get", key, None, consistency=consistency,
                    value_size=value_size, on_done=on_done)

    def put(self, key: str, value: str, value_size: Optional[int] = None,
            on_done=None) -> None:
        """Write `key`; at-most-once under retries by (client_id, seq)."""
        self.submit("put", key, value, value_size=value_size, on_done=on_done)

    def batch(self, ops, on_done=None) -> None:
        """Submit many independent operations through the pipeline window.

        `ops` is a sequence of ("get"|"put", key, value) triples.  NOT
        atomic — each op is its own command and may land on a different
        shard; the window is what makes the batch fast.  For atomicity use
        `transact` (a routing/txn policy, e.g. `ShardRoutedClient`)."""
        for op, key, value in ops:
            self.submit(op, key, value, on_done=on_done)

    def transact(self, ops) -> None:
        raise NotImplementedError(
            "transactions need a routing policy: use ShardRoutedClient "
            "(single-shard atomic commands + cross-shard 2PC) on top of "
            "this session")

    def submit(self, kind: str, key: str, value: Optional[str],
               consistency: Optional[Consistency] = None,
               value_size: Optional[int] = None, on_done=None) -> None:
        """Enqueue one operation; it enters the window as soon as a slot is
        free.  Latency counts from *now* (queueing delay included)."""
        if consistency is None:
            consistency = (self.read_consistency if kind == "get"
                           else Consistency.DEFAULT)
        self.submitted += 1
        trace = None
        if self.obs is not None:
            # "s" namespace: allocated per submission, disjoint from the
            # default `client:seq` trace ids commands fall back to.
            trace = f"{self.name}:s{self.submitted}"
        qop = _QueuedOp(kind, key, value, consistency, self.sim.now,
                        value_size, on_done, trace=trace)
        if trace is not None:
            self.obs_phase(trace, "submit", op=kind)
        if self.window_free:
            self._admit(qop)
        else:
            self._submit_queue.append(qop)

    # -- window management ---------------------------------------------------

    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def _admit(self, qop: _QueuedOp) -> None:
        seq = self._next_seq()
        if qop.value_size is not None:
            value_size = qop.value_size
        elif qop.kind == "txn" and qop.value is not None:
            value_size = len(qop.value)
        else:
            value_size = self._default_value_size
        command = Command.make(
            op=_OPS[qop.kind], key=qop.key, value=qop.value,
            client_id=self.name, seq=seq, value_size=value_size,
            acked_low_water=self._ack_floor.floor, consistency=qop.consistency,
            trace=qop.trace)
        pending = PendingRequest(
            command, self._route(command), qop.submitted_at,
            retry_timer=self.timer("retry"),
            backoff_timer=self.timer("backoff"),
            on_done=qop.on_done)
        self._pending[seq] = pending
        if qop.trace is not None:
            self.obs_phase(qop.trace, "admit", seq=seq)
        self._send(pending)

    def _route(self, command: Command) -> str:
        """Routing policy seam: which server serves this command."""
        return self.server

    def _request_message(self, pending: PendingRequest) -> ClientRequest:
        """Hook: sharded clients stamp the request with their map epoch."""
        return ClientRequest(command=pending.command)

    def _send(self, pending: PendingRequest) -> None:
        pending.attempts += 1
        if self.obs is not None:
            self.obs_phase(pending.command.trace_id, "send",
                           server=pending.server, attempt=pending.attempts)
        self.send(pending.server, self._request_message(pending))
        pending.retry_timer.arm(
            self.retry.retry_delay(pending.attempts - 1, self.rng),
            lambda: self._resend(pending))

    def _resend(self, pending: PendingRequest) -> None:
        """Retry-timeout path: re-resolve routing before re-sending.  The
        routing table may have repointed while the request sat unanswered —
        a replaced host never answers, so without this a client whose only
        window slot targets the dead replica retries it forever."""
        pending.server = self._route(pending.command)
        self._send(pending)

    # -- replies -------------------------------------------------------------

    def on_message(self, src: str, message) -> None:
        if not isinstance(message, ClientReply):
            return
        self._before_reply(message)
        client_id, seq = message.request_id
        pending = self._pending.get(seq) if client_id == self.name else None
        if pending is None or pending.command.request_id != message.request_id:
            return  # stale reply from an already-answered request
        if not message.ok:
            # The request IS answered (a rejection): the lost-reply resend
            # must stand down or it would race the backoff and double-send.
            pending.retry_timer.cancel()
            if self.obs is not None:
                self.obs_phase(pending.command.trace_id, "reject",
                               server=message.server)
            if self._on_reject(pending, message):
                return  # a redirect policy re-sent it
            # No leader yet (or leadership changed mid-flight): back off and
            # retry.  Re-arming the named timer dedupes duplicate rejections.
            pending.rejections += 1
            pending.backoff_timer.arm(
                self.retry.backoff_delay(pending.rejections, self.rng),
                lambda: self._send(pending))
            return
        self._complete(pending, message)

    def _before_reply(self, message: ClientReply) -> None:
        """Hook: runs on every reply before matching (map refreshes)."""

    def _on_reject(self, pending: PendingRequest, message: ClientReply) -> bool:
        """Hook: redirect policies return True when they re-routed the
        request themselves (the generic backoff path is skipped)."""
        return False

    def _complete(self, pending: PendingRequest, message: ClientReply) -> None:
        command = pending.command
        pending.cancel_timers()
        del self._pending[command.seq]
        if self.obs is not None:
            self.obs_phase(command.trace_id, "complete")
        self.completed += 1
        self._ack_floor.ack(command.seq)
        for hook in self.on_complete_hooks:
            hook(command, message, pending.submitted_at, self.sim.now)
        if pending.on_done is not None:
            pending.on_done(command, message)
        self.metrics.add(RequestRecord(
            client=self.name,
            site=self.site,
            # The server the request was last sent to (after any shard
            # redirects) — not the replying leader a relay answered from.
            server=pending.server,
            op=command.op,
            start=pending.submitted_at,
            end=self.sim.now,
            ok=True,
            local_read=message.local_read,
        ))
        self._slot_freed()

    def _slot_freed(self) -> None:
        while self._submit_queue and self.window_free:
            self._admit(self._submit_queue.popleft())
        self._refill()

    # -- driver seams --------------------------------------------------------

    def _refill(self) -> None:
        """Hook: closed-loop drivers issue new work here."""

    def _generation_stopped(self) -> bool:
        return self.stop_at is not None and self.sim.now >= self.stop_at

    # -- lifecycle -----------------------------------------------------------

    def on_crash(self) -> None:
        for pending in self._pending.values():
            pending.cancel_timers()
        self._pending.clear()
        self._submit_queue.clear()
