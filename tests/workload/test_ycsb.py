"""Workload configuration."""

import pytest
from hypothesis import given, strategies as st

from repro.workload.ycsb import WorkloadConfig


def test_defaults_match_paper():
    wl = WorkloadConfig()
    assert wl.read_fraction == 0.9
    assert wl.conflict_rate == 0.05
    assert wl.records == 100_000


def test_partitions_are_disjoint_and_cover():
    wl = WorkloadConfig(records=100)
    sites = ["a", "b", "c"]
    ranges = [wl.partition_for(s, sites) for s in sites]
    ids = [i for r in ranges for i in r]
    assert sorted(ids) == list(range(100))
    assert len(set(ids)) == 100


def test_last_partition_takes_remainder():
    wl = WorkloadConfig(records=10)
    sites = ["a", "b", "c"]
    assert len(wl.partition_for("c", sites)) == 4  # 3 + 3 + 4


def test_invalid_read_fraction():
    with pytest.raises(ValueError):
        WorkloadConfig(read_fraction=1.5)


def test_invalid_conflict_rate():
    with pytest.raises(ValueError):
        WorkloadConfig(conflict_rate=-0.1)


def test_invalid_records():
    with pytest.raises(ValueError):
        WorkloadConfig(records=0)


def test_key_names():
    assert WorkloadConfig.key_name(17) == "k17"
    assert WorkloadConfig.key_id("k17") == 17


def test_uniform_key_spans_whole_keyspace():
    import random

    wl = WorkloadConfig(records=10)
    rng = random.Random(4)
    ids = {WorkloadConfig.key_id(wl.uniform_key(rng)) for _ in range(500)}
    assert ids == set(range(10))


@given(st.integers(min_value=1, max_value=1000), st.integers(min_value=1, max_value=8))
def test_partitioning_always_covers(records, n_sites):
    wl = WorkloadConfig(records=records)
    sites = [f"s{i}" for i in range(n_sites)]
    ids = [i for s in sites for i in wl.partition_for(s, sites)]
    assert sorted(ids) == list(range(records))
