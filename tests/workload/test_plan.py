"""`ClientPlan`: the unified spawn path (naming, rng streams, host sharing,
open-loop rate split)."""

import pytest

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.types import Consistency
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms, sec
from repro.workload.clients import spawn_clients
from repro.workload.plan import ClientPlan
from repro.workload.session import RetryPolicy
from repro.workload.ycsb import WorkloadConfig

from tests.workload.test_session import WindowServer

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0, records=10)


def build_net(sites=2):
    sim = Simulator()
    net = Network(sim, symmetric_lan(sites, rtt_ms_value=1.0),
                  rng=SplitRng(2), config=NetworkConfig())
    return sim, net


def spawn(plan, sites=("s0", "s1"), stop_at=None):
    sim, net = build_net(len(sites))
    servers = {site: WindowServer(f"srv_{site}", sim, net, site=site)
               for site in sites}
    metrics = MetricsRecorder()
    clients = spawn_clients(
        sim, net, list(sites), {s: f"srv_{s}" for s in sites},
        per_region=plan.per_region, workload=WORKLOAD, rng_root=SplitRng(1),
        metrics=metrics, stop_at=stop_at, plan=plan)
    return sim, servers, clients, metrics


def test_plan_reproduces_legacy_fleet():
    sim, servers, clients, metrics = spawn(ClientPlan(per_region=3))
    assert len(clients) == 6
    assert [c.name for c in clients][:3] == ["c_s0_0", "c_s0_1", "c_s0_2"]
    assert {c.site for c in clients} == {"s0", "s1"}
    # legacy layout: one private host per client
    assert len({id(c.host) for c in clients}) == 6
    sim.run(until=ms(100))
    assert all(c.completed > 0 for c in clients)


def test_plan_threads_session_knobs():
    retry = RetryPolicy(jitter=0.0)
    plan = ClientPlan(per_region=1, depth=5, retry=retry,
                      read_consistency=Consistency.LINEARIZABLE)
    sim, servers, clients, metrics = spawn(plan)
    for client in clients:
        assert client.depth == 5
        assert client.retry is retry
        assert client.read_consistency is Consistency.LINEARIZABLE


def test_plan_shares_client_hosts_per_site():
    plan = ClientPlan(per_region=4, hosts_per_site=2)
    sim, servers, clients, metrics = spawn(plan)
    by_site = {}
    for client in clients:
        by_site.setdefault(client.site, set()).add(client.host.name)
    # 4 clients per site share exactly 2 machines, named per convention
    assert by_site["s0"] == {"ch0.s0", "ch1.s0"}
    assert by_site["s1"] == {"ch0.s1", "ch1.s1"}
    host = next(c.host for c in clients if c.host.name == "ch0.s0")
    assert len(host.nodes) == 2
    sim.run(until=ms(100))
    assert all(c.completed > 0 for c in clients)


def test_shared_client_host_crashes_as_one_machine():
    plan = ClientPlan(per_region=4, hosts_per_site=2)
    sim, servers, clients, metrics = spawn(plan)
    sim.run(until=ms(20))
    victim = next(c.host for c in clients if c.host.name == "ch0.s0")
    victim.crash()
    cohabitants = [c for c in clients if c.host is victim]
    assert len(cohabitants) == 2
    assert all(not c.alive for c in cohabitants)
    assert all(c.alive for c in clients if c.host is not victim)


def test_plan_open_loop_splits_offered_load():
    plan = ClientPlan(per_region=2, offered_load=400.0)
    assert plan.rate_per_client(["s0", "s1"]) == pytest.approx(100.0)
    sim, servers, clients, metrics = spawn(plan, stop_at=sec(1))
    sim.run(until=sec(1))
    arrivals = sum(c.arrivals for c in clients)
    assert 280 <= arrivals <= 560  # ~400 expected over 1 s
