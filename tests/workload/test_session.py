"""The pipelined session: window, out-of-order completion, retry policy,
consistency plumbing, and the acked low-water mark."""

import pytest

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import Consistency, OpType
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms, sec
from repro.workload.clients import ClosedLoopClient
from repro.workload.openloop import OpenLoopClient
from repro.workload.session import LEGACY_RETRY, RetryPolicy, Session
from repro.workload.ycsb import WorkloadConfig

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0, records=10)


class WindowServer(Node):
    """Replies instantly; can hold requests and release them in any order."""

    def __init__(self, *args, hold=False, **kwargs):
        kwargs.setdefault("costs", NodeCosts(per_message=0, per_command=0, per_byte=0))
        super().__init__(*args, **kwargs)
        self.hold = hold
        self.held = []          # (src, command) in arrival order
        self.request_log = []   # request ids in arrival order
        self.commands = []      # full commands in arrival order
        self.seen = 0

    def on_message(self, src, message):
        if not isinstance(message, ClientRequest):
            return
        self.seen += 1
        self.request_log.append(message.command.request_id)
        self.commands.append(message.command)
        if self.hold:
            self.held.append((src, message.command))
            return
        self._reply(src, message.command)

    def _reply(self, src, command, ok=True):
        self.send(src, ClientReply(request_id=command.request_id, ok=ok,
                                   value="x", server=self.name))

    def release(self, order=None):
        """Answer the held requests (optionally by given hold-indices)."""
        held, self.held = self.held, []
        if order is not None:
            held = [held[i] for i in order]
        for src, command in held:
            self._reply(src, command)


def build(depth=1, client_cls=ClosedLoopClient, hold=False, retry=None,
          **client_kwargs):
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2),
                  config=NetworkConfig())
    server = WindowServer("s0", sim, net, hold=hold)
    metrics = MetricsRecorder()
    client = client_cls(
        "c0", sim, net, "s0", "s0", WORKLOAD, ["s0", "s1"],
        SplitRng(3).stream("c"), metrics, depth=depth, retry=retry,
        **client_kwargs)
    return sim, server, client, metrics


# -- the pipeline window ------------------------------------------------------


def test_depth_n_keeps_n_in_flight():
    sim, server, client, metrics = build(depth=4, hold=True)
    sim.run(until=ms(20))
    assert server.seen == 4          # the window filled without any ack
    assert client.in_flight_count == 4
    assert client.seq == 4
    server.hold = False
    server.release()
    sim.run(until=ms(40))
    assert client.completed >= 4     # completions refilled the window


def test_depth_one_is_the_closed_loop_client():
    sim, server, client, metrics = build(depth=1, hold=True)
    sim.run(until=ms(20))
    assert server.seen == 1
    assert client.in_flight is not None


def test_out_of_order_replies_complete_out_of_order():
    sim, server, client, metrics = build(depth=3, hold=True)
    sim.run(until=ms(10))
    assert server.seen == 3
    server.release(order=[2, 0, 1])  # newest first
    sim.run(until=ms(12))
    # All three completed despite reversed replies; no retries happened.
    assert client.completed >= 3
    seqs = {record_id for record_id in server.request_log}
    assert len(seqs) == len(server.request_log)


def test_pipelined_throughput_scales_with_depth():
    results = {}
    for depth in (1, 4):
        sim, server, client, metrics = build(depth=depth)
        sim.run(until=ms(200))
        results[depth] = client.completed
    assert results[4] > 2.5 * results[1]


def test_stale_reply_for_retired_seq_is_discarded():
    sim, server, client, metrics = build(depth=2, hold=True)
    sim.run(until=ms(10))
    (src, first) = server.held[0]
    server.release()
    sim.run(until=ms(15))
    completed = client.completed
    # A late retransmitted reply for an already-completed request.
    server._reply(src, first)
    sim.run(until=ms(20))
    assert len(metrics.records) == client.completed
    assert client.completed >= completed  # no double-completion record


def test_commands_carry_acked_low_water():
    sim, server, client, metrics = build(depth=2)
    sim.run(until=ms(100))
    # After a warm-up, new commands advertise the contiguous acked floor:
    # every stamp is below its own seq and non-decreasing.
    stamps = [(c.seq, c.acked_low_water) for c in server.commands]
    assert all(lwm < seq for seq, lwm in stamps)
    floors = [lwm for _, lwm in stamps]
    assert floors == sorted(floors)
    assert floors[-1] > 0  # it actually advanced


def test_crash_clears_window():
    sim, server, client, metrics = build(depth=3, hold=True)
    sim.run(until=ms(10))
    client.crash()
    assert client.in_flight_count == 0
    server.release()  # replies to a crashed client go nowhere
    sim.run(until=ms(20))
    assert client.completed == 0


# -- explicit API: get/put/batch and consistency ------------------------------


def manual_session(depth=4):
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2),
                  config=NetworkConfig())
    server = WindowServer("s0", sim, net)
    metrics = MetricsRecorder()
    session = Session("c0", sim, net, "s0", "s0", WORKLOAD, ["s0", "s1"],
                      SplitRng(3).stream("c"), metrics, depth=depth)
    return sim, server, session


def test_get_put_batch_pipeline_through_the_window():
    sim, server, session = manual_session(depth=4)
    done = []
    session.put("a", "1", on_done=lambda c, r: done.append(c.key))
    session.get("a", on_done=lambda c, r: done.append(c.key))
    session.batch([("put", "b", "2"), ("get", "b", None)])
    sim.run(until=ms(10))
    assert session.completed == 4
    assert done == ["a", "a"]
    ops = [(c.op, c.key) for c in server.commands]
    assert (OpType.PUT, "a") in ops and (OpType.GET, "b") in ops


def test_consistency_levels_ride_the_command():
    sim, server, session = manual_session()
    session.get("k")                                        # session default
    session.get("k", consistency=Consistency.LINEARIZABLE)
    session.get("k", consistency=Consistency.LEASE_LOCAL)
    sim.run(until=ms(10))
    levels = [c.consistency for c in server.commands]
    assert levels == [Consistency.DEFAULT, Consistency.LINEARIZABLE,
                      Consistency.LEASE_LOCAL]
    assert not server.commands[1].allows_local_read
    assert server.commands[0].allows_local_read
    assert server.commands[2].allows_local_read


def test_session_read_consistency_default():
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2),
                  config=NetworkConfig())
    server = WindowServer("s0", sim, net)
    session = Session("c0", sim, net, "s0", "s0", WORKLOAD, ["s0", "s1"],
                      SplitRng(3).stream("c"), MetricsRecorder(),
                      read_consistency=Consistency.LINEARIZABLE)
    session.get("k")
    session.put("k", "v")
    sim.run(until=ms(10))
    assert server.commands[0].consistency is Consistency.LINEARIZABLE
    # writes always go through the log; the read default does not apply
    assert server.commands[1].consistency is Consistency.DEFAULT


def test_submit_queue_overflows_the_window_and_drains():
    sim, server, session = manual_session(depth=2)
    for i in range(6):
        session.put(f"k{i}", str(i))
    assert session.in_flight_count == 2
    assert session.queued_count == 4
    assert session.outstanding == 6
    sim.run(until=ms(20))
    assert session.completed == 6
    assert session.queued_count == 0


def test_transact_needs_a_routing_policy():
    sim, server, session = manual_session()
    with pytest.raises(NotImplementedError):
        session.transact([("put", "a", "1")])


# -- retry policy -------------------------------------------------------------


class FakeRng:
    """random() == 0.5 always -> jitter factor exactly 1.0."""

    def random(self):
        return 0.5


def test_retry_policy_exponential_growth_and_caps():
    policy = RetryPolicy(retry_timeout=sec(5), retry_cap=sec(20),
                         backoff_base=ms(20), backoff_cap=ms(320),
                         multiplier=2.0, jitter=0.1)
    rng = FakeRng()
    assert policy.retry_delay(0, rng) == sec(5)
    assert policy.retry_delay(1, rng) == sec(10)
    assert policy.retry_delay(5, rng) == sec(20)      # capped
    assert policy.backoff_delay(1, rng) == ms(20)
    assert policy.backoff_delay(2, rng) == ms(40)
    assert policy.backoff_delay(10, rng) == ms(320)   # capped


def test_retry_policy_jitter_spreads_delays():
    policy = RetryPolicy(jitter=0.5)
    rng = SplitRng(7).stream("jitter")
    delays = {policy.backoff_delay(1, rng) for _ in range(50)}
    assert len(delays) > 10  # jitter actually spreads
    base = policy.backoff_base
    assert all(base * 0.5 <= d <= base * 1.5 for d in delays)


def test_legacy_retry_is_fixed_schedule():
    rng = SplitRng(7).stream("jitter")
    assert {LEGACY_RETRY.backoff_delay(n, rng) for n in range(1, 9)} == {ms(20)}
    assert LEGACY_RETRY.retry_delay(3, rng) == sec(5)


def test_rejection_storm_desynchronizes_with_jittered_backoff():
    """A whole window rejected at once must not retry in lockstep: with
    jittered exponential backoff the resends spread out in time."""
    sim, server, client, metrics = build(
        depth=8, hold=True,
        retry=RetryPolicy(jitter=0.5))
    sim.run(until=ms(10))
    held, server.held = server.held, []
    server.hold = False
    for src, command in held:  # reject the whole window at once
        server._reply(src, command, ok=False)
    before = len(server.request_log)
    sim.run(until=ms(120))
    resends = server.request_log[before:]
    assert len(resends) >= 8
    # the resends did not all land in one burst: the server saw them
    # arrive over a spread of distinct times (jitter at work)
    assert len(set(resends)) >= 8


# -- open loop ----------------------------------------------------------------


def build_open(rate, depth=4, stop_at=None):
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2),
                  config=NetworkConfig())
    server = WindowServer("s0", sim, net)
    metrics = MetricsRecorder()
    client = OpenLoopClient(
        "c0", sim, net, "s0", "s0", WORKLOAD, ["s0", "s1"],
        SplitRng(3).stream("c"), metrics, rate_per_sec=rate, depth=depth,
        stop_at=stop_at)
    return sim, server, client, metrics


def test_open_loop_arrival_rate_is_respected():
    sim, server, client, metrics = build_open(rate=200.0)
    sim.run(until=sec(2))
    # ~400 Poisson arrivals in 2 s; allow generous slack
    assert 250 <= client.arrivals <= 560
    assert client.completed >= 0.9 * client.arrivals


def test_open_loop_queues_past_the_window_and_measures_from_submission():
    sim, server, client, metrics = build_open(rate=2000.0, depth=2)
    server.hold = True
    sim.run(until=ms(100))
    assert client.in_flight_count == 2
    assert client.queued_count > 50       # arrivals kept coming
    server.hold = False
    server.release()
    sim.run(until=ms(400))
    assert client.completed > 100
    # Queued requests' latency includes the time spent waiting for a slot.
    slow = [r for r in metrics.records if r.latency_ms > 20]
    assert slow


def test_open_loop_stops_generating_at_stop_at():
    sim, server, client, metrics = build_open(rate=500.0, stop_at=ms(100))
    sim.run(until=ms(400))
    arrivals_at_stop = client.arrivals
    sim.run(until=ms(600))
    assert client.arrivals == arrivals_at_stop
