"""Closed-loop clients."""

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import OpType
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms, sec
from repro.workload.clients import ClosedLoopClient, spawn_clients
from repro.workload.ycsb import WorkloadConfig


class InstantServer(Node):
    """Replies to every request immediately; optionally fails first."""

    def __init__(self, *args, fail_first=0, **kwargs):
        kwargs.setdefault("costs", NodeCosts(per_message=0, per_command=0, per_byte=0))
        super().__init__(*args, **kwargs)
        self.seen = 0
        self.fail_first = fail_first

    def on_message(self, src, message):
        if not isinstance(message, ClientRequest):
            return
        self.seen += 1
        ok = self.seen > self.fail_first
        self.send(src, ClientReply(
            request_id=message.command.request_id, ok=ok,
            value="x", server=self.name))


def build(fail_first=0, read_fraction=0.5):
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2),
                  config=NetworkConfig())
    server = InstantServer("s0", sim, net, fail_first=fail_first)
    metrics = MetricsRecorder()
    client = ClosedLoopClient(
        "c0", sim, net, "s0", "s0",
        WorkloadConfig(read_fraction=read_fraction, conflict_rate=0.0, records=10),
        ["s0", "s1"], SplitRng(3).stream("c"), metrics)
    return sim, server, client, metrics


def test_closed_loop_issues_back_to_back():
    sim, server, client, metrics = build()
    sim.run(until=ms(200))
    assert client.completed > 50  # ~1 op per RTT(1ms)
    assert len(metrics.records) == client.completed


def test_failed_reply_retried_with_same_seq():
    sim, server, client, metrics = build(fail_first=2)
    sim.run(until=ms(200))
    assert client.completed > 0
    # the first command was retried, not skipped
    assert metrics.records[0].client == "c0"


def test_records_have_latency():
    sim, server, client, metrics = build()
    sim.run(until=ms(50))
    rec = metrics.records[0]
    assert rec.end > rec.start
    assert rec.latency_ms > 0


def test_read_write_mix_roughly_respected():
    sim, server, client, metrics = build(read_fraction=0.8)
    sim.run(until=sec(1))
    reads = sum(1 for r in metrics.records if r.op is OpType.GET)
    frac = reads / len(metrics.records)
    assert 0.7 < frac < 0.9


def test_stop_at_halts_generation():
    sim, server, client, metrics = build()
    client.stop_at = ms(50)
    sim.run(until=ms(200))
    assert all(r.start <= ms(51) for r in metrics.records)


def test_spawn_clients_per_region():
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2))
    InstantServer("s0", sim, net)
    InstantServer("s1", sim, net)
    metrics = MetricsRecorder()
    clients = spawn_clients(sim, net, ["s0", "s1"], {"s0": "s0", "s1": "s1"},
                            per_region=3, workload=WorkloadConfig(records=10),
                            rng_root=SplitRng(1), metrics=metrics)
    assert len(clients) == 6
    assert {c.site for c in clients} == {"s0", "s1"}
