"""Closed-loop clients."""

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import OpType
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms, sec
from repro.workload.clients import (
    LEGACY_RETRY,
    ClosedLoopClient,
    RetryPolicy,
    spawn_clients,
)
from repro.workload.ycsb import WorkloadConfig


class InstantServer(Node):
    """Replies to every request immediately; optionally fails first.

    `fail_first` rejects the first N requests (ok=False — the no-leader
    answer), `drop_first` swallows them entirely (reply loss), and
    `duplicate_replies` sends every reply twice.
    """

    def __init__(self, *args, fail_first=0, drop_first=0,
                 duplicate_replies=False, **kwargs):
        kwargs.setdefault("costs", NodeCosts(per_message=0, per_command=0, per_byte=0))
        super().__init__(*args, **kwargs)
        self.seen = 0
        self.fail_first = fail_first
        self.drop_first = drop_first
        self.duplicate_replies = duplicate_replies
        self.request_log = []

    def on_message(self, src, message):
        if not isinstance(message, ClientRequest):
            return
        self.seen += 1
        self.request_log.append(message.command.request_id)
        if self.seen <= self.drop_first:
            return
        ok = self.seen > self.fail_first
        reply = ClientReply(
            request_id=message.command.request_id, ok=ok,
            value="x", server=self.name)
        self.send(src, reply)
        if self.duplicate_replies:
            self.send(src, reply)


def build(fail_first=0, read_fraction=0.5, retry=None, depth=1,
          **server_kwargs):
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2),
                  config=NetworkConfig())
    server = InstantServer("s0", sim, net, fail_first=fail_first, **server_kwargs)
    metrics = MetricsRecorder()
    client = ClosedLoopClient(
        "c0", sim, net, "s0", "s0",
        WorkloadConfig(read_fraction=read_fraction, conflict_rate=0.0, records=10),
        ["s0", "s1"], SplitRng(3).stream("c"), metrics,
        retry=retry, depth=depth)
    return sim, server, client, metrics


def test_closed_loop_issues_back_to_back():
    sim, server, client, metrics = build()
    sim.run(until=ms(200))
    assert client.completed > 50  # ~1 op per RTT(1ms)
    assert len(metrics.records) == client.completed


def test_failed_reply_retried_with_same_seq():
    sim, server, client, metrics = build(fail_first=2)
    sim.run(until=ms(200))
    assert client.completed > 0
    # the first command was retried, not skipped
    assert metrics.records[0].client == "c0"


def test_no_leader_rejection_backs_off_and_retries_same_request():
    sim, server, client, metrics = build(fail_first=3)
    sim.run(until=ms(300))
    # the rejected command was re-sent with the SAME request id until it
    # succeeded — at-most-once needs the seq to survive the retries
    first_id = server.request_log[0]
    assert server.request_log[:4] == [first_id] * 4
    assert client.completed > 0
    # no sequence number was burned by the rejections
    assert client.seq == client.completed + (1 if client.in_flight else 0)


def test_lost_reply_retried_after_timeout():
    sim, server, client, metrics = build(drop_first=1)
    sim.run(until=sec(6))  # RETRY_TIMEOUT is 5 s
    assert client.completed > 0
    # the dropped request was re-sent, not abandoned
    assert server.request_log.count(server.request_log[0]) == 2


def test_duplicate_rejections_collapse_into_one_resend():
    """Regression: every matching ok=False reply used to schedule another
    *anonymous* backoff callback, so a rejection delivered twice (a
    retransmit answered twice, or a rejection racing the 5 s retry timer)
    permanently doubled the in-flight sends.  The per-request backoff
    timer (`arm` replaces) collapses duplicates into one pending resend.
    (LEGACY_RETRY pins the fixed 20 ms schedule the counts assume.)"""
    sim, server, client, metrics = build(drop_first=10**9,  # server stays mute
                                         retry=LEGACY_RETRY)
    sim.run(until=ms(20))
    assert server.seen == 1
    request_id = client.in_flight.request_id
    # Two rejections for the same in-flight request.
    for _ in range(2):
        server.send("c0", ClientReply(request_id=request_id, ok=False,
                                      server="s0"))
    sim.run(until=ms(200))
    # Exactly ONE backoff resend (pre-fix: one per delivered rejection).
    assert server.seen == 2
    assert server.request_log == [request_id, request_id]


def test_many_duplicate_rejections_still_one_resend_per_round():
    """The multiplied-rejection storm: every rejection answered twice for
    many rounds must still produce one resend per ~20 ms backoff round,
    not an exponentially growing herd.  (LEGACY_RETRY pins the fixed
    20 ms backoff rounds the send counts assume.)"""
    sim, server, client, metrics = build(fail_first=8, duplicate_replies=True,
                                         retry=LEGACY_RETRY)
    sim.run(until=ms(400))
    assert client.completed >= 1
    first_id = server.request_log[0]
    # 8 rejection rounds -> 9 sends of the first command (pre-fix the
    # doubling herd pushes this past a dozen within the same window).
    assert server.request_log.count(first_id) == 9
    assert len(metrics.records) == client.completed


def test_duplicate_replies_complete_once():
    sim, server, client, metrics = build(duplicate_replies=True)
    sim.run(until=ms(200))
    assert client.completed > 0
    # every duplicate was ignored: one metrics record per issued command
    assert len(metrics.records) == client.completed
    seqs = [record_id for record_id in server.request_log]
    assert len(set(seqs)) == len(seqs)  # no request was ever re-sent either


def test_records_have_latency():
    sim, server, client, metrics = build()
    sim.run(until=ms(50))
    rec = metrics.records[0]
    assert rec.end > rec.start
    assert rec.latency_ms > 0


def test_read_write_mix_roughly_respected():
    sim, server, client, metrics = build(read_fraction=0.8)
    sim.run(until=sec(1))
    reads = sum(1 for r in metrics.records if r.op is OpType.GET)
    frac = reads / len(metrics.records)
    assert 0.7 < frac < 0.9


def test_stop_at_halts_generation():
    sim, server, client, metrics = build()
    client.stop_at = ms(50)
    sim.run(until=ms(200))
    assert all(r.start <= ms(51) for r in metrics.records)


def test_spawn_clients_per_region():
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=1.0), rng=SplitRng(2))
    InstantServer("s0", sim, net)
    InstantServer("s1", sim, net)
    metrics = MetricsRecorder()
    clients = spawn_clients(sim, net, ["s0", "s1"], {"s0": "s0", "s1": "s1"},
                            per_region=3, workload=WorkloadConfig(records=10),
                            rng_root=SplitRng(1), metrics=metrics)
    assert len(clients) == 6
    assert {c.site for c in clients} == {"s0", "s1"}
