"""Figure 6's Flexible Paxos arrow, both directions."""

import pytest

from repro.core.explorer import Explorer
from repro.core.refinement import check_refinement
from repro.specs import flexpaxos as fp
from repro.specs import multipaxos as mp


def test_invalid_quorum_systems_rejected():
    with pytest.raises(ValueError):
        fp.default_config(
            q1=frozenset({frozenset({"p0"})}),
            q2=frozenset({frozenset({"p1"})}),
        )


def test_majority_instantiation_behaves_like_paxos():
    cfg = fp.default_config(n=3, values=("a",), max_ballot=2, max_index=0)
    result = Explorer(fp.build(cfg), invariants=fp.INVARIANTS,
                      max_states=20_000).run()
    assert result.ok and result.complete


def test_paxos_refines_flexible_paxos():
    """Figure 6: 'Paxos refines Flexible Paxos' — identity mapping, with
    Flexible Paxos instantiated at majorities."""
    cfg = fp.default_config(n=3, values=("a", "b"), max_ballot=2, max_index=0)
    result = check_refinement(
        mp.build(cfg), fp.build(cfg), fp.identity_mapping(), max_states=20_000)
    assert result.ok and result.complete


def test_flexible_paxos_does_not_refine_paxos():
    """'...but not the other way around': with singleton phase-1 quorums a
    two-server BecomeLeader (self + one promise) is legal, but five-replica
    MultiPaxos demands three — no counterpart exists.  (At n=3 the two
    coincide, so the gap only opens at n >= 5.)"""
    acceptors = tuple(f"p{i}" for i in range(5))
    cfg = fp.default_config(
        n=5, values=("a",), max_ballot=1, max_index=0,
        q1=fp.singletons(acceptors), q2=fp.full_set(acceptors))
    result = check_refinement(
        fp.build(cfg), mp.build(cfg), fp.identity_mapping(),
        max_states=3_000, max_high_steps=2)
    assert not result.ok
    assert any(f.transition.action == "BecomeLeader" for f in result.failures)


def test_singleton_q1_is_still_safe():
    """Flexible Paxos' theorem: any intersecting Q1/Q2 preserves agreement."""
    acceptors = ("p0", "p1", "p2")
    cfg = fp.default_config(
        n=3, values=("a", "b"), max_ballot=2, max_index=0,
        q1=fp.singletons(acceptors), q2=fp.full_set(acceptors))
    result = Explorer(fp.build(cfg), invariants=fp.INVARIANTS,
                      max_states=25_000).run()
    assert result.ok


def test_quorum_helpers():
    acceptors = ("p0", "p1", "p2")
    assert frozenset({"p0", "p1"}) in fp.majorities(acceptors)
    assert frozenset({"p0"}) not in fp.majorities(acceptors)
    assert len(fp.singletons(acceptors)) == 3
    assert len(fp.full_set(acceptors)) == 1
