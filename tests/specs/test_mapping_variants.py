"""Figure 3 (mapping table) and Figure 6 (variant landscape) artifacts."""

from repro.specs import mapping, variants
from repro.specs.rql import correspondence


def test_figure3_sections_present():
    sections = {row.section for row in mapping.FIGURE3}
    assert sections == {"variables", "messages", "functions"}


def test_figure3_key_rows():
    raftstar_side = {row.raftstar: row.multipaxos for row in mapping.FIGURE3}
    assert raftstar_side["currentTerm"] == "ballot"
    assert raftstar_side["isLeader"] == "phase1Succeeded"
    assert raftstar_side["requestVote"] == "prepare"
    assert "Phase2b" in raftstar_side["AppendEntries"]


def test_figure3_render():
    text = mapping.render()
    assert "Figure 3" in text
    assert "currentTerm" in text and "ballot" in text
    assert "[functions]" in text


def test_rows_filter():
    assert all(r.section == "messages" for r in mapping.rows("messages"))
    assert len(mapping.rows()) == len(mapping.FIGURE3)


def test_spec_correspondence_matches_port_input():
    """The correspondence used by the porting algorithm equals the Figure 3
    function table at spec granularity."""
    assert mapping.spec_correspondence() == correspondence()


def test_figure6_nonmutating_count():
    """The paper: 6 non-mutating optimizations on Paxos, plus WPaxos on
    Flexible Paxos — 7 port candidates in total."""
    candidates = variants.port_candidates()
    assert len(candidates) == 7
    names = {v.name for v in candidates}
    assert {"Paxos Quorum Lease", "Mencius", "WPaxos"} <= names


def test_figure6_classifications():
    flexible = next(v for v in variants.FIGURE6 if v.name == "Flexible Paxos")
    assert not flexible.portable
    assert "Paxos refines it" in flexible.classification
    fast = next(v for v in variants.FIGURE6 if v.name == "Fast Paxos")
    assert fast.classification == variants.NO_REFINEMENT


def test_figure6_every_variant_has_reason():
    assert all(v.reason for v in variants.FIGURE6)


def test_figure6_render():
    text = variants.render()
    assert "Figure 6" in text
    assert "Mencius" in text and "EPaxos" in text
    assert "7 of" in text


def test_by_classification():
    non_mutating = variants.by_classification(variants.NON_MUTATING)
    assert all(v.portable for v in non_mutating)
