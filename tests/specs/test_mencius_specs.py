"""Coordinated Paxos (B.5) and the generated Coordinated Raft* (B.6)."""

import pytest

from repro.core.explorer import Explorer
from repro.core.optimization import diff_optimization
from repro.core.refinement import check_refinement, projection_mapping
from repro.specs import coorpaxos as cp
from repro.specs import coorraft as cr
from repro.specs import multipaxos as mp
from repro.specs import raftstar as rs


def tiny():
    return cp.default_config(n=3, values=("nop", "v"), max_ballot=2, max_index=1)


def test_requires_nop_value():
    with pytest.raises(ValueError):
        cp.default_config(values=("v",))


def test_mencius_is_non_mutating_with_modified_actions():
    """The Case-3 showcase: four of MultiPaxos' subactions are modified."""
    cfg = tiny()
    diff = diff_optimization(mp.build(cfg), cp.build(cfg))
    assert diff.non_mutating
    modified = {m.base.name for m in diff.modified}
    assert modified == {"Propose", "Accept", "Phase1b", "BecomeLeader"}
    assert not diff.added


def test_instance_ownership_round_robin():
    cfg = tiny()
    assert cp.instance_owner(cfg, 0) == "p0"
    assert cp.instance_owner(cfg, 1) == "p1"
    assert cp.instance_owner(cfg, 5) == "p2"


def test_coorpaxos_refines_multipaxos():
    cfg = tiny()
    result = check_refinement(
        cp.build(cfg), mp.build(cfg),
        projection_mapping("drop-mencius-vars", mp.build(cfg).variables),
        max_states=4_000,
    )
    assert result.ok


def test_coorpaxos_invariants():
    cfg = tiny()
    result = Explorer(cp.build(cfg),
                      invariants={**mp.INVARIANTS, **cp.MENCIUS_INVARIANTS},
                      max_states=8_000).run()
    assert result.ok


def test_default_leader_nop_marks_own_skip():
    cfg = tiny()
    machine = cp.build(cfg)
    state = machine.initial_states()[0]
    # Propose requires leadership; set it directly for a unit-level check.
    state = state.with_(leader=state["leader"].set("p0", True),
                        ballot=state["ballot"].set("p0", 0))
    propose = machine.action("Propose")
    binding = {"a": "p0", "i": 0, "v": "nop"}
    assert propose.enabled(state, binding)
    nxt = propose.apply(state, binding)
    assert nxt["skipTags"]["p0"][0] is True
    assert (0, 0, "nop") in nxt["proposedDefaults"]


def test_skip_blocks_later_real_proposal():
    cfg = tiny()
    machine = cp.build(cfg)
    state = machine.initial_states()[0]
    state = state.with_(leader=state["leader"].set("p0", True))
    propose = machine.action("Propose")
    state = propose.apply(state, {"a": "p0", "i": 0, "v": "nop"})
    assert not propose.enabled(state, {"a": "p0", "i": 0, "v": "v"})


def test_non_owner_can_only_propose_nop_or_reproposal():
    cfg = tiny()
    machine = cp.build(cfg)
    state = machine.initial_states()[0]
    state = state.with_(leader=state["leader"].set("p1", True))
    propose = machine.action("Propose")
    # index 0 is owned by p0: p1 may propose nop but not a fresh value
    assert propose.enabled(state, {"a": "p1", "i": 0, "v": "nop"})
    assert not propose.enabled(state, {"a": "p1", "i": 0, "v": "v"})


def test_coorraft_generated_structure():
    cfg = tiny()
    machine = cr.build(cfg)
    assert set(cp.NEW_VARIABLES) <= set(machine.variables)
    accept = machine.action("AcceptEntries")
    names = [c.name for c in accept.clauses]
    assert any("mencius-skip-on-nop" in n for n in names)
    assert any("mencius-executable-on-nop" in n for n in names)
    vote = machine.action("ReceiveVote")
    assert any("mencius-attach-skiptags" in n for n in [c.name for c in vote.clauses])


def test_coorraft_refines_raftstar():
    cfg = tiny()
    result = check_refinement(
        cr.build(cfg), rs.build(cfg), cr.mapping_to_raftstar(cfg),
        max_states=5_000,
    )
    assert result.ok


def test_coorraft_refines_coorpaxos():
    cfg = tiny()
    result = check_refinement(
        cr.build(cfg), cp.build(cfg), cr.mapping_to_coorpaxos(cfg),
        max_states=2_000, max_high_steps=4,
    )
    assert result.ok


def test_coorraft_inherits_mencius_invariants():
    cfg = tiny()
    result = Explorer(cr.build(cfg),
                      invariants=cr.mencius_invariants(cfg), max_states=5_000).run()
    assert result.ok


@pytest.mark.slow
def test_coorraft_refinements_deeper():
    cfg = tiny()
    assert check_refinement(cr.build(cfg), cp.build(cfg),
                            cr.mapping_to_coorpaxos(cfg),
                            max_states=6_000, max_high_steps=4).ok
    result = Explorer(cr.build(cfg), invariants=cr.mencius_invariants(cfg),
                      max_states=20_000).run()
    assert result.ok
