"""§3's negative result: plain Raft does NOT refine MultiPaxos directly."""

import pytest

from repro.core.explorer import Explorer
from repro.core.refinement import check_refinement
from repro.specs import multipaxos as mp
from repro.specs import raft as rf


def cfg():
    return mp.default_config(n=3, values=("a",), max_ballot=2, max_index=1)


def test_refinement_fails():
    config = cfg()
    result = check_refinement(
        rf.build(config), mp.build(config), rf.raft_to_multipaxos(config),
        max_states=15_000, max_high_steps=4,
    )
    assert not result.ok


def test_counterexample_is_the_erasing_step():
    """The failing transition erases a previously accepted entry — the step
    the paper says 'would never happen in MultiPaxos'."""
    config = cfg()
    result = check_refinement(
        rf.build(config), mp.build(config), rf.raft_to_multipaxos(config),
        max_states=15_000, max_high_steps=4, max_failures=5,
    )
    erasing = []
    for failure in result.failures:
        before, after = failure.transition.state, failure.transition.next_state
        for acceptor in config["acceptors"]:
            if len(after["rlog"][acceptor]) < len(before["rlog"][acceptor]):
                erasing.append(failure)
    assert erasing, "expected an erasing counterexample"
    assert all(f.transition.action == "AcceptEntries" for f in erasing)


def test_raft_spec_itself_is_safe():
    """Raft is still a correct consensus protocol (the §5.4.2 discipline is
    a separate matter) — it just is not a refinement of Paxos."""
    machine = rf.build(mp.default_config(n=3, values=("a",), max_ballot=2,
                                         max_index=0))
    from repro.specs.raftstar import INVARIANTS as RS_INVARIANTS

    result = Explorer(machine, invariants={
        "election-safety": RS_INVARIANTS["election-safety"]},
        max_states=30_000).run()
    assert result.ok
