"""The Figure 4 example, spec-level details."""

from repro.core.explorer import Explorer
from repro.specs import kvexample as kv


def test_kv_store_behaviour():
    machine = kv.kv_store()
    state = machine.initial_states()[0]
    put = machine.action("Put")
    get = machine.action("Get")
    state = put.apply(state, {"k": 0, "v": "a"})
    assert state["table"][0] == ("a",)
    state = get.apply(state, {"k": 0})
    assert state["output"] == ("a",)


def test_log_store_contiguity_guard():
    machine = kv.log_store()
    state = machine.initial_states()[0]
    write = machine.action("Write")
    assert write.enabled(state, {"i": 0, "v": "a"})
    assert not write.enabled(state, {"i": 1, "v": "a"})  # hole
    state = write.apply(state, {"i": 0, "v": "a"})
    assert write.enabled(state, {"i": 1, "v": "a"})


def test_figure_4c_put_guard():
    """A∆'s Put refuses overwrites (the added guard)."""
    machine = kv.kv_store_sized()
    state = machine.initial_states()[0]
    put = machine.action("Put")
    state = put.apply(state, {"k": 0, "v": "a"})
    assert state["size"] == 1
    assert not put.enabled(state, {"k": 0, "v": "b"})


def test_sized_kv_invariant_complete():
    result = Explorer(kv.kv_store_sized(),
                      invariants={"size": kv.size_matches_nonempty_entries}).run()
    assert result.ok and result.complete


def test_generated_name_and_constants():
    ported = kv.log_store_sized(keys=3, values=("a",))
    assert "B-delta" in ported.name
    assert ported.constants["keys"] == 3


def test_state_spaces_match_figure_4d():
    """B∆ explores exactly the states a hand-written Figure 4d would:
    logs contiguous, size = filled entries."""
    explorer = Explorer(kv.log_store_sized())
    explorer.run()
    for state in explorer.reachable_states():
        filled = [i for i in range(2) if state["logs"][i] != ()]
        assert filled == list(range(len(filled)))  # contiguity (from B)
        assert state["size"] == len(filled)        # counting (from A-delta)
