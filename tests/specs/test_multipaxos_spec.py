"""MultiPaxos spec (Appendix B.1): safety invariants."""

import pytest

from repro.core.explorer import Explorer
from repro.specs import multipaxos as mp


def tiny():
    return mp.default_config(n=3, values=("a", "b"), max_ballot=2, max_index=0)


def test_agreement_and_one_value_per_ballot_complete():
    machine = mp.build(tiny())
    result = Explorer(machine, invariants=mp.INVARIANTS, max_states=30_000).run()
    assert result.ok
    assert result.complete  # the 1-slot instance is fully explored


def test_owner_assignment():
    cfg = tiny()
    assert mp.owner(cfg, 0) == "p0"
    assert mp.owner(cfg, 1) == "p1"
    assert mp.owner(cfg, 4) == "p1"


def test_majority():
    assert mp.majority(tiny()) == 2


def test_merge_logs_picks_highest_ballot():
    from repro.core.state import FMap
    cfg = mp.default_config(max_index=1)
    own = FMap({0: (1, "a"), 1: (-1, None)})
    snap = FMap({0: (2, "b"), 1: (-1, None)})
    merged = mp.merge_logs(cfg, own, [snap])
    assert merged[0] == (2, "b")
    assert merged[1] == (-1, None)


def test_log_tail():
    from repro.core.state import FMap
    cfg = mp.default_config(max_index=1)
    assert mp.log_tail(cfg, FMap({0: (-1, None), 1: (-1, None)})) == -1
    assert mp.log_tail(cfg, FMap({0: (1, "a"), 1: (-1, None)})) == 0


def test_a_value_can_be_chosen():
    """Liveness sanity: some reachable state has a chosen value."""
    machine = mp.build(mp.default_config(n=3, values=("a",), max_ballot=1))
    explorer = Explorer(machine, max_states=20_000)
    explorer.run()
    assert any(
        mp.chosen_values(state, machine.constants)
        for state in explorer.reachable_states()
    )


def test_two_leaders_same_ballot_impossible():
    machine = mp.build(tiny())
    explorer = Explorer(machine, invariants={
        "unique-leader-per-ballot": lambda s, c: _unique_leader(s, c)},
        max_states=30_000)
    assert explorer.run().ok


def _unique_leader(state, constants):
    leaders = {}
    for acceptor in constants["acceptors"]:
        if state["leader"][acceptor]:
            ballot = state["ballot"][acceptor]
            if ballot in leaders:
                return False
            leaders[ballot] = acceptor
    return True


@pytest.mark.slow
def test_two_slot_instance():
    cfg = mp.default_config(n=3, values=("a",), max_ballot=2, max_index=1)
    result = Explorer(mp.build(cfg), invariants=mp.INVARIANTS,
                      max_states=60_000).run()
    assert result.ok
