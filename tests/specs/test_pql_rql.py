"""PQL (B.3) and the generated Raft*-PQL (B.4)."""

import pytest

from repro.core.explorer import Explorer
from repro.core.optimization import diff_optimization
from repro.core.refinement import check_refinement, projection_mapping
from repro.specs import multipaxos as mp
from repro.specs import pql, raftstar as rs, rql


def tiny():
    return pql.default_config(n=3, values=("a",), max_ballot=1, max_index=0,
                              max_timer=1, lease_duration=1)


def test_pql_is_non_mutating():
    cfg = tiny()
    diff = diff_optimization(mp.build(cfg), pql.build(cfg))
    assert diff.non_mutating
    assert set(diff.new_variables) == set(pql.NEW_VARIABLES)
    added = {action.name for action in diff.added}
    assert added == {"GrantLease", "UpdateTimer", "Apply", "ReadAtLocal"}


def test_pql_refines_multipaxos_by_projection():
    """§4.2: non-mutating optimizations refine the base under projection."""
    cfg = tiny()
    result = check_refinement(
        pql.build(cfg), mp.build(cfg),
        projection_mapping("drop-lease-vars", mp.build(cfg).variables),
        max_states=4_000,
    )
    assert result.ok


def test_pql_lease_invariants_bounded():
    cfg = tiny()
    result = Explorer(pql.build(cfg),
                      invariants=pql.LEASE_INVARIANTS, max_states=8_000).run()
    assert result.ok


def test_lease_activity_requires_quorum():
    cfg = tiny()
    machine = pql.build(cfg)
    state = machine.initial_states()[0]
    assert not pql.lease_is_active(state, cfg, "p0")
    # grants from p0 and p1 to p0 => quorum lease for p0
    grant = machine.action("GrantLease")
    state = grant.apply(state, {"p": "p0", "q": "p0"})
    state = grant.apply(state, {"p": "p1", "q": "p0"})
    assert pql.lease_is_active(state, cfg, "p0")
    assert not pql.lease_is_active(state, cfg, "p1")


def test_timer_expires_leases():
    cfg = pql.default_config(max_timer=2, lease_duration=1)
    machine = pql.build(cfg)
    state = machine.initial_states()[0]
    grant = machine.action("GrantLease")
    tick = machine.action("UpdateTimer")
    for grantor in ("p0", "p1"):
        state = grant.apply(state, {"p": grantor, "q": "p0"})
    assert pql.lease_is_active(state, cfg, "p0")
    state = tick.apply(state, {})
    state = tick.apply(state, {})
    assert not pql.lease_is_active(state, cfg, "p0")


def test_rql_generated_actions():
    cfg = tiny()
    machine = rql.build(cfg)
    names = {action.name for action in machine.actions}
    assert {"RequestVote", "AcceptEntries", "GrantLease", "ReadAtLocal"} <= names
    assert set(pql.NEW_VARIABLES) <= set(machine.variables)


def test_rql_refines_raftstar():
    cfg = tiny()
    result = check_refinement(
        rql.build(cfg), rs.build(cfg), rql.mapping_to_raftstar(cfg),
        max_states=4_000,
    )
    assert result.ok


def test_rql_refines_pql():
    cfg = tiny()
    result = check_refinement(
        rql.build(cfg), pql.build(cfg), rql.mapping_to_pql(cfg),
        max_states=1_500, max_high_steps=4,
    )
    assert result.ok


def test_rql_inherits_lease_invariants():
    cfg = tiny()
    result = Explorer(rql.build(cfg),
                      invariants=rql.lease_invariants(cfg), max_states=4_000).run()
    assert result.ok


def test_rql_local_read_needs_quorum_lease():
    """The ported ReadAtLocal reads lease state directly and Paxos state
    through the Figure 3 mapping."""
    cfg = tiny()
    machine = rql.build(cfg)
    state = machine.initial_states()[0]
    read = machine.action("ReadAtLocal")
    assert not read.enabled(state, {"a": "p0"})
    grant = machine.action("GrantLease")
    state = grant.apply(state, {"p": "p0", "q": "p0"})
    state = grant.apply(state, {"p": "p1", "q": "p0"})
    assert read.enabled(state, {"a": "p0"})  # empty log: applied == tail


@pytest.mark.slow
def test_rql_refines_pql_deeper():
    cfg = tiny()
    result = check_refinement(
        rql.build(cfg), pql.build(cfg), rql.mapping_to_pql(cfg),
        max_states=8_000, max_high_steps=4,
    )
    assert result.ok
