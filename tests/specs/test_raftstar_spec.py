"""Raft* spec (Appendix B.2) and the headline refinement to MultiPaxos."""

import pytest

from repro.core.explorer import Explorer
from repro.core.refinement import check_refinement
from repro.specs import multipaxos as mp
from repro.specs import raftstar as rs


def tiny():
    return mp.default_config(n=3, values=("a", "b"), max_ballot=2, max_index=0)


def test_invariants_hold_complete():
    machine = rs.build(tiny())
    result = Explorer(machine, invariants=rs.INVARIANTS, max_states=30_000).run()
    assert result.ok and result.complete


def test_refinement_to_multipaxos_holds():
    """§3's main theorem, mechanically: Raft* => MultiPaxos under Figure 3."""
    cfg = tiny()
    result = check_refinement(
        rs.build(cfg), mp.build(cfg), rs.raftstar_to_multipaxos(cfg),
        max_states=30_000, max_high_steps=3,
    )
    assert result.ok, result.failures[:1]
    assert result.complete


def test_up_to_date_comparison():
    log = ((1, "a"), (1, "b"))
    assert rs.up_to_date(1, 1, log)          # equal (bal, index)
    assert rs.up_to_date(5, 2, log)          # higher ballot wins
    assert not rs.up_to_date(0, 1, log)      # shorter log at same ballot
    assert not rs.up_to_date(3, 0, log)      # lower last ballot
    assert rs.up_to_date(-1, -1, ())         # both empty


def test_merged_log_adopts_extras():
    own = ((1, "a"),)
    snapshots = [((1, "a"), (1, "b")), ((1, "a"), (2, "c"))]
    merged = rs.merged_log(own, snapshots)
    assert merged == ((1, "a"), (2, "c"))  # highest ballot at index 1


def test_merged_log_keeps_own_prefix():
    own = ((3, "mine"),)
    snapshots = [((1, "theirs"), (1, "extra"))]
    merged = rs.merged_log(own, snapshots)
    assert merged[0] == (3, "mine")
    assert merged[1] == (1, "extra")


def test_merged_log_stops_at_holes():
    own = ()
    snapshots = [((1, "a"),)]
    assert rs.merged_log(own, snapshots) == ((1, "a"),)


def test_mapping_projects_variables():
    cfg = tiny()
    machine = rs.build(cfg)
    state = machine.initial_states()[0]
    mapped = rs.raftstar_to_multipaxos(cfg)(state)
    assert set(mapped) == set(mp.build(cfg).variables)
    assert mapped["ballot"] == state["term"]


@pytest.mark.slow
def test_refinement_two_slots():
    cfg = mp.default_config(n=3, values=("a",), max_ballot=2, max_index=1)
    result = check_refinement(
        rs.build(cfg), mp.build(cfg), rs.raftstar_to_multipaxos(cfg),
        max_states=20_000, max_high_steps=4,
    )
    assert result.ok and result.complete
