"""The sharded multi-group deployment end to end (small scale)."""

import pytest

from repro.shard import ShardedSpec, run_sharded_experiment
from repro.shard.cluster import ShardedCluster, shard_of_server
from repro.workload.ycsb import WorkloadConfig


def small_spec(**overrides) -> ShardedSpec:
    defaults = dict(
        protocol="raft",
        num_shards=2,
        placement="spread",
        clients_per_region=2,
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                                records=1000),
        duration_s=3.0,
        warmup_s=0.5,
        cooldown_s=0.5,
        seed=3,
        check_history=True,
    )
    defaults.update(overrides)
    return ShardedSpec(**defaults)


def test_groups_have_distinct_names_and_leaders():
    cluster = ShardedCluster(small_spec(num_shards=3))
    names = [name for replicas in cluster.groups.values() for name in replicas]
    assert len(names) == len(set(names)) == 3 * 5
    assert cluster.leaders == {0: "oregon", 1: "ohio", 2: "ireland"}
    for shard in range(3):
        leader = cluster.leader_replica(shard)
        assert leader.name == f"g{shard}_r_{cluster.leaders[shard]}"
        assert shard_of_server(leader.name) == shard


def test_colocated_placement_pins_leaders():
    cluster = ShardedCluster(small_spec(placement="colocated",
                                        colocated_site="seoul"))
    assert set(cluster.leaders.values()) == {"seoul"}


def test_sharded_run_commits_and_stays_safe():
    result = run_sharded_experiment(small_spec())
    assert result.completed > 0
    assert result.throughput_ops > 0
    # Both groups served traffic, and every record's server parses back to
    # a live shard.
    assert set(result.per_shard_throughput) == {0, 1}
    # Correct routing: no redirects needed, no key ever reached a store
    # that does not own it.
    assert result.redirects == 0
    assert result.filtered == 0
    # Per-shard histories are linearizable.
    assert set(result.violations) == {0, 1}
    assert result.linearizable


def test_stores_only_hold_owned_keys():
    cluster = ShardedCluster(small_spec())
    cluster.run()
    for shard, replicas in cluster.groups.items():
        for replica in replicas.values():
            for key in replica.store.snapshot():
                assert cluster.partitioner.shard_of(key) == shard


def test_single_shard_matches_multi_group_plumbing():
    result = run_sharded_experiment(small_spec(num_shards=1))
    assert result.completed > 0
    assert set(result.per_shard_throughput) == {0}
    assert result.linearizable


def test_mencius_groups_supported():
    # Leaderless protocols skip the initial-leader seeding per group.
    result = run_sharded_experiment(small_spec(
        protocol="mencius", num_shards=2, duration_s=3.0,
        workload=WorkloadConfig(read_fraction=0.0, conflict_rate=0.0,
                                records=1000)))
    assert result.completed > 0
    assert result.filtered == 0


def test_unknown_placement_rejected():
    with pytest.raises(ValueError):
        ShardedCluster(small_spec(placement="everywhere"))


def test_key_filter_survives_crash_recovery():
    cluster = ShardedCluster(small_spec())
    replica = cluster.leader_replica(0)
    assert replica.store.key_filter is not None
    replica.crash()
    replica.recover()
    assert replica.store.key_filter is not None
    assert replica.ownership_guard is not None


def test_crashed_shard_leader_does_not_stall_other_shards():
    from repro.sim.units import sec

    spec = small_spec(duration_s=7.0, warmup_s=0.5, cooldown_s=0.5)
    cluster = ShardedCluster(spec)
    cluster.sim.run(until=sec(1.0))
    cluster.leader_replica(0).crash()
    result = cluster.run()  # continues to duration_s
    # shard 1 is unaffected; shard 0 resumes after its election
    late = cluster.metrics.throughput_by(
        sec(4.0), sec(6.5), key=lambda r: r.server.split("_", 1)[0])
    assert late.get("g1", 0) > 0
    assert late.get("g0", 0) > 0
    assert result.filtered == 0
    # prefix agreement still holds per shard across the fault
    for shard, checker in cluster.checkers.items():
        assert checker.check_prefix_agreement() == []
