"""Property-based tests for the partition algebra.

`plan_transition` and the owned-range set algebra are the foundation every
reshard (and therefore every migration-under-faults test) stands on; these
properties pin them over random N->M cuts rather than the few hand-picked
cases in `test_reshard.py`:

* a transition plan's moves, applied to the old ownership, yield exactly
  the new ownership — and at every intermediate point the per-shard ranges
  tile the ring with no gap and no overlap;
* the owned-range algebra is closed under add/subtract (sorted, disjoint,
  half-open invariants preserved), and add/subtract are inverses on
  disjoint inputs.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.shard.partition import (  # noqa: E402
    HASH_SPACE,
    HashRangePartitioner,
    add_range,
    plan_transition,
    ranges_contain,
    subtract_range,
)

shard_counts = st.integers(min_value=1, max_value=24)
points = st.integers(min_value=0, max_value=HASH_SPACE - 1)


def full_ownership(partitioner: HashRangePartitioner, total_shards: int):
    ranges = {shard: [] for shard in range(total_shards)}
    for shard in range(partitioner.num_shards):
        span = partitioner.range_of(shard)
        ranges[shard] = [(span.start, span.stop)]
    return ranges


def assert_tiles_ring(ranges_by_shard):
    """The union of all shards' ranges is exactly [0, HASH_SPACE) with no
    overlap: sorted segment starts meet exactly end-to-start."""
    segments = sorted(segment for ranges in ranges_by_shard.values()
                      for segment in ranges)
    assert segments, "ownership vanished entirely"
    assert segments[0][0] == 0
    for (_, prev_end), (start, _) in zip(segments, segments[1:]):
        assert start == prev_end, f"gap or overlap at {prev_end}->{start}"
    assert segments[-1][1] == HASH_SPACE
    for start, end in segments:
        assert start < end


@settings(max_examples=60, deadline=None)
@given(old_n=shard_counts, new_n=shard_counts)
def test_plan_moves_exactly_tile_the_ring(old_n, new_n):
    old, new = HashRangePartitioner(old_n), HashRangePartitioner(new_n)
    moves = plan_transition(old, new)
    total = max(old_n, new_n)
    ranges = full_ownership(old, total)
    # after EVERY prefix of the plan the ring stays exactly tiled (the
    # mid-transition invariant the redirect machinery relies on)
    assert_tiles_ring(ranges)
    for move in moves:
        assert 0 <= move.start < move.end <= HASH_SPACE
        assert move.donor != move.recipient
        # the donor really owns what it is about to give away
        assert ranges_contain(ranges[move.donor], move.start)
        ranges[move.donor] = subtract_range(ranges[move.donor],
                                            move.start, move.end)
        ranges[move.recipient] = add_range(ranges[move.recipient],
                                           move.start, move.end)
        assert_tiles_ring(ranges)
    # and the final ownership is exactly the new map's
    for shard in range(total):
        if shard < new_n:
            span = new.range_of(shard)
            assert ranges[shard] == [(span.start, span.stop)]
        else:
            assert ranges[shard] == []


@settings(max_examples=60, deadline=None)
@given(old_n=shard_counts, new_n=shard_counts)
def test_plan_is_minimal_and_directional(old_n, new_n):
    """No move is ever wasted: each moved segment changes owner, adjacent
    same-pair segments are coalesced, and N == N plans are empty."""
    old, new = HashRangePartitioner(old_n), HashRangePartitioner(new_n)
    moves = plan_transition(old, new)
    if old_n == new_n:
        assert moves == []
    for move in moves:
        assert old.shard_of_point(move.start) == move.donor
        assert new.shard_of_point(move.start) == move.recipient
        assert old.shard_of_point(move.end - 1) == move.donor
        assert new.shard_of_point(move.end - 1) == move.recipient
    for a, b in zip(moves, moves[1:]):
        assert a.end <= b.start
        if a.end == b.start:
            assert (a.donor, a.recipient) != (b.donor, b.recipient)


segment = st.tuples(points, points).map(sorted).filter(lambda ab: ab[0] < ab[1])


def canonical(ranges):
    """Sorted, disjoint, non-empty, half-open — the algebra's invariant."""
    for (a, b) in ranges:
        assert a < b
    for (_, b1), (a2, _) in zip(ranges, ranges[1:]):
        assert b1 < a2 or (b1 <= a2)  # sorted and non-overlapping
        assert a2 >= b1
    return ranges


@settings(max_examples=80, deadline=None)
@given(segments=st.lists(segment, max_size=8), lo_hi=segment,
       probe=points)
def test_range_algebra_membership_semantics(segments, lo_hi, probe):
    """add/subtract behave exactly like set union/difference of point
    sets, observed through `ranges_contain`, and keep the representation
    canonical."""
    lo, hi = lo_hi
    base = []
    for a, b in segments:
        base = canonical(add_range(base, a, b))
    member_base = ranges_contain(base, probe)

    added = canonical(add_range(list(base), lo, hi))
    assert ranges_contain(added, probe) == (member_base or lo <= probe < hi)

    removed = canonical(subtract_range(list(base), lo, hi))
    assert ranges_contain(removed, probe) == (member_base
                                              and not lo <= probe < hi)


@settings(max_examples=80, deadline=None)
@given(segments=st.lists(segment, max_size=8), lo_hi=segment)
def test_subtract_then_add_round_trips_owned_segments(segments, lo_hi):
    """On a range the set fully owns, subtract then add restores it
    exactly (the donor-crashes-and-the-move-retries path)."""
    lo, hi = lo_hi
    base = []
    for a, b in segments:
        base = add_range(base, a, b)
    base = add_range(base, lo, hi)  # ensure [lo, hi) is owned
    round_tripped = add_range(subtract_range(list(base), lo, hi), lo, hi)
    assert round_tripped == base
