"""Leader-placement policies."""

import pytest

from repro.shard.placement import PLACEMENTS, colocated, leader_sites, spread

SITES = ("oregon", "ohio", "ireland", "canada", "seoul")


def test_colocated_pins_one_region():
    assert {colocated(shard, SITES) for shard in range(8)} == {"oregon"}
    assert colocated(3, SITES, home="seoul") == "seoul"


def test_spread_round_robins():
    assert [spread(shard, SITES) for shard in range(7)] == [
        "oregon", "ohio", "ireland", "canada", "seoul", "oregon", "ohio",
    ]


def test_leader_sites_resolution():
    got = leader_sites("spread", 3, SITES)
    assert got == {0: "oregon", 1: "ohio", 2: "ireland"}
    got = leader_sites("colocated", 3, SITES, home="canada")
    assert got == {0: "canada", 1: "canada", 2: "canada"}


def test_registry_and_unknown_policy():
    assert set(PLACEMENTS) == {"colocated", "spread"}
    with pytest.raises(ValueError, match="unknown placement"):
        leader_sites("nope", 2, SITES)
