"""Nemesis-driven reshard tests: the live 2->4 split under leader crashes
and network partitions at randomized sim-times.

`test_reshard.py` covers the fault-free path; these runs inject the faults
that motivate migrating through the committed log in the first place — a
donor leader crashing after MIGRATE_OUT applied but before the reply, a
recipient group electing mid-import, a partitioned leader accepting
commands it can never commit.  Every seed must preserve the client-visible
contract: zero duplicate executions, zero lost/duplicated acks, per-shard
linearizability.

`REPRO_BENCH_SCALE` (default 0.3 here: these are fault tests, not
benchmarks) scales client counts and durations; the CI nemesis leg runs
all seeds at 0.3.
"""

import os

import pytest

from repro.shard.cluster import ReshardSpec, run_reshard_experiment
from repro.workload.ycsb import WorkloadConfig
from tests.shard.nemesis import reshard_nemesis

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
SEEDS = range(20)


def faulted_spec(seed: int) -> ReshardSpec:
    return ReshardSpec(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=max(1, round(2 * SCALE / 0.3)),
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                                records=400, value_size=64),
        duration_s=max(10.0, 10.0 * SCALE / 0.3),
        warmup_s=1.0, cooldown_s=0.5, seed=seed,
        check_history=True, reshard_to=4, reshard_at_s=2.0,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_reshard_survives_random_leader_faults(seed):
    """2->4 split with 3 leader kills/partitions at random times in the
    [1s, 5.5s] window (straddling the 2s reshard trigger)."""
    spec = faulted_spec(seed)
    result = run_reshard_experiment(
        spec, nemesis=reshard_nemesis(seed, window=(1.0, 5.5)))

    # The migration retried its way through elections and finished.
    assert result.reshard_completed
    assert result.final_epoch == 1

    # The contract under faults: every burned sequence number answered at
    # most once (bar the final in-flight command per client) and NO
    # acknowledged write executed twice anywhere — a donor-leader crash
    # between MIGRATE_OUT apply and reply must be absorbed by the dedup
    # cache, not re-exported or re-executed.
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0

    # Per-shard linearizability across the epoch change, crashes included.
    assert set(result.violations) == {0, 1, 2, 3}
    assert result.linearizable

    # The run did real work despite the faults.
    assert result.completed > 0
