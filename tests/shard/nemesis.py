"""Seeded nemesis schedules for the shard-layer fault tests.

The mechanism (crash/partition/recover actions against a built cluster)
lives in `repro.shard.nemesis.Nemesis` so the bench CLI can reuse it; this
module holds the *schedules* the test-suite runs:

* `reshard_nemesis` — leader kills and leader partitions at randomized
  sim-times straddling a live 2->4 reshard;
* `txn_nemesis` — the same plus coordinator kills, aimed at the 2PC
  windows (mid-prepare, mid-commit) of the transactional cluster.

Each is a factory returning an installer callable, matching the `nemesis=`
parameter of `run_reshard_experiment` / `run_txn_experiment`; the created
`Nemesis` is left on the cluster as `cluster.nemesis` so tests can assert
against its action log.
"""

from __future__ import annotations

from repro.shard.nemesis import Nemesis


def reshard_nemesis(seed: int, window: tuple, events: int = 3,
                    leader_down_s: float = 1.2, partition_s: float = 1.2):
    """Leader kills + partitions at `events` random times in `window`
    (seconds), meant to straddle the reshard trigger so migrations retry
    through elections."""

    def install(cluster) -> None:
        nemesis = Nemesis(cluster, seed=seed, leader_down_s=leader_down_s,
                          partition_s=partition_s)
        nemesis.random_schedule(events, window[0], window[1],
                                kinds=("leader_kill", "leader_partition"))
        cluster.nemesis = nemesis
    return install


def txn_nemesis(seed: int, window: tuple, events: int = 3,
                coordinator_kills: int = 1, leader_down_s: float = 1.2,
                partition_s: float = 1.2, coordinator_down_s: float = 1.0):
    """Random leader faults plus `coordinator_kills` coordinator crashes in
    `window`, forcing the fenced decision-log replay mid-2PC."""

    def install(cluster) -> None:
        nemesis = Nemesis(cluster, seed=seed, leader_down_s=leader_down_s,
                          partition_s=partition_s,
                          coordinator_down_s=coordinator_down_s)
        nemesis.random_schedule(events, window[0], window[1],
                                kinds=("leader_kill", "leader_partition"))
        nemesis.random_schedule(coordinator_kills, window[0], window[1],
                                kinds=("coordinator_kill",))
        cluster.nemesis = nemesis
    return install
