"""Coordinator failover: machine-granular kills of the ACTIVE coordinator
while its plane is mid-flight.

`test_nemesis_reshard.py` / `test_nemesis_txn.py` throw random faults at
the data groups; these tests aim the fault at the coordinators themselves
— the host under the lease-holding reshard driver, the host under a txn
coordinator with 2PC in flight — and pin the failover design of
DESIGN.md §11:

* a hot standby claims the role through the control journal within
  milliseconds of lease expiry (not after the machine's restart);
* the resumed plan/sweep is idempotent end to end: zero lost or duplicated
  acks, zero duplicate executions, strict serializability;
* the reshard send-ring rotates off a dead first-hop host instead of
  wedging (the PR's motivating bug);
* the per-epoch sequence namespace is lossless and asserts its bound
  instead of silently colliding (the old ``incarnation * 1_000_000``
  scheme overflowed past a million commands).

`REPRO_BENCH_SCALE` (default 0.3: fault tests, not benchmarks) scales
client counts and durations, matching the CI nemesis leg.
"""

import os

import pytest

from repro.protocols.types import OpType
from repro.shard.cluster import ReshardSpec, run_reshard_experiment
from repro.shard.nemesis import Nemesis
from repro.shard.txn import (SEQ_BITS, SEQ_SPAN, TxnCluster, TxnSpec,
                             _TxnState, seq_namespace)
from repro.sim.units import sec
from repro.workload.ycsb import WorkloadConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                          records=400, value_size=64)


def txn_spec(seed: int, **overrides) -> TxnSpec:
    defaults = dict(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=max(2, round(2 * SCALE / 0.3)),
        workload=WORKLOAD,
        duration_s=max(10.0, 10.0 * SCALE / 0.3),
        warmup_s=1.0, cooldown_s=0.5, seed=seed,
        check_history=True, txn_size=2, cross_shard_ratio=0.6,
    )
    defaults.update(overrides)
    return TxnSpec(**defaults)


def assert_txn_contract(result) -> None:
    assert result.serializability_violations == []
    assert all(not v for v in result.prefix_violations.values())
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0


def first_takeover_latency_ms(nemesis, takeovers) -> float:
    """Wall time from the first host kill to the first role takeover."""
    kill_s = next(at_s for at_s, what in nemesis.log
                  if what.startswith("host_kill: crashed"))
    taken_at = min(at for at, _role in takeovers)
    return taken_at / 1e3 - kill_s * 1e3


# -- the sequence namespace (the old 1M-stride collision) ---------------------


def test_seq_namespace_is_disjoint_and_lossless():
    for epoch in (1, 2, 7, 10_000):
        base = seq_namespace(epoch)
        assert base == epoch << SEQ_BITS
        # Adjacent epochs' namespaces touch but never overlap, and any
        # sequence number decodes back to its fence epoch.
        assert seq_namespace(epoch + 1) == base + SEQ_SPAN
        for offset in (0, 1, SEQ_SPAN - 1):
            assert (base + offset) >> SEQ_BITS == epoch
    # The regression this replaces: with `incarnation * 1_000_000` bases,
    # epoch 1's 1,000,001st command lands on epoch 2's first dedup slot.
    assert 1 * 1_000_000 + 1_000_000 == 2 * 1_000_000


def test_seq_namespace_overflow_asserts_instead_of_colliding():
    """A coordinator that somehow burns 2**32 sequence numbers at one
    fence epoch must die loudly, not wrap into the next epoch's dedup
    namespace."""
    cluster = TxnCluster(txn_spec(0, duration_s=1.0))
    coordinator = cluster.coordinators[0]
    state = _TxnState("c:1", None, [], 0, "c:1#x.1.1", {},
                      seq_base=seq_namespace(1))
    state.seq = state.seq_base + SEQ_SPAN - 1  # next command hits the bound
    with pytest.raises(AssertionError, match="sequence namespace overflow"):
        coordinator._command(state, OpType.TXN_ABORT, {})


# -- txn coordinator host kill mid-2PC ----------------------------------------


def test_txn_coordinator_host_kill_fails_over_in_milliseconds():
    """Kill the machine under a txn coordinator (its control replica dies
    with it) while 2PC is in flight, and keep it down for 3 s.  A peer
    must fence + sweep the victim within milliseconds of lease expiry —
    not wait out the machine's restart — and every ack identity must
    survive the janitor's presumed-abort/commit-replay sweep."""
    spec = txn_spec(11)
    cluster = TxnCluster(spec)
    nemesis = Nemesis(cluster, seed=11, host_down_s=3.0)
    nemesis.coordinator_host_kill_at(3.0, role="txn")
    cluster.nemesis = nemesis
    result = cluster.run()

    assert nemesis.host_kills == 1
    assert result.failovers > 0
    assert cluster.metrics.counters.get("coordinator_failovers", 0) > 0
    assert_txn_contract(result)
    assert result.committed_total > 0 and result.commits_2pc > 0

    # Milliseconds, not the 3 s the machine stayed dark: lease expiry
    # (320 ms) plus one committed take record.
    takeovers = [t for c in cluster.coordinators for t in c.takeovers]
    latency_ms = first_takeover_latency_ms(nemesis, takeovers)
    assert latency_ms < 1000.0, f"takeover took {latency_ms:.0f} ms"


# -- reshard driver host kill mid-migration -----------------------------------


def reshard_spec(seed: int, **overrides) -> ReshardSpec:
    defaults = dict(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=max(1, round(2 * SCALE / 0.3)),
        workload=WORKLOAD,
        duration_s=max(12.0, 12.0 * SCALE / 0.3),
        warmup_s=1.0, cooldown_s=0.5, seed=seed,
        check_history=True, reshard_to=4, reshard_at_s=2.0,
    )
    defaults.update(overrides)
    return ReshardSpec(**defaults)


def test_reshard_driver_host_kill_standby_resumes():
    """Crash the lease-holding reshard driver's host mid-plan (donor
    leaders are killed first so the migration is still in flight when the
    driver dies).  A standby in another site must claim the role through
    the control journal and resume from the committed cursor; the machine
    stays dark for 3 s, so completion-before-restart proves the failover."""
    spec = reshard_spec(5)

    def install(cluster) -> None:
        nemesis = Nemesis(cluster, seed=5, leader_down_s=1.2, host_down_s=3.0)
        # Stretch the migration through donor elections...
        nemesis.leader_kill_at(2.1, shard=0)
        nemesis.leader_kill_at(2.1, shard=1)
        # ...then kill the active driver once its lease is established.
        nemesis.coordinator_host_kill_at(3.6, role="reshard")
        cluster.nemesis = nemesis
    result = run_reshard_experiment(spec, nemesis=install)

    assert result.reshard_completed
    assert result.final_epoch == 1
    assert result.failovers > 0
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.linearizable


def test_reshard_completes_while_first_hop_host_is_down():
    """The motivating bug: `ReshardCoordinator._issue` used to pin every
    send of a step to the replica in the driver's own site, so that one
    host dying mid-export wedged the migration until the machine came
    back.  With shared hosts (one per site), kill the first-hop site's
    data host just after the export starts and keep it down for 10 s: the
    send ring must rotate to another site's replica (each step retries
    its own-site hop first, so rotation costs a retry-timeout or two per
    step) and the migration must finish while the first hop is still
    dark."""
    spec = reshard_spec(3, hosts_per_site=1, duration_s=max(13.0, 13.0 * SCALE / 0.3))
    state = {}

    def install(cluster) -> None:
        nemesis = Nemesis(cluster, seed=3, host_down_s=10.0)
        cluster.nemesis = nemesis

        def strike() -> None:
            plane = cluster.coordinator
            active = plane.active if plane is not None else None
            if active is None or plane.done:  # pragma: no cover - tuning
                return
            move = plane.moves[min(active._step // 2, len(plane.moves) - 1)]
            first_hop = cluster.groups[move.donor][
                f"g{move.donor}_r_{active.site}"]
            state["down_until"] = cluster.sim.now / 1e6 + 10.0
            nemesis._host_kill(first_hop.host.name)
        cluster.sim.schedule_at(sec(spec.reshard_at_s + 0.1), strike)
    result = run_reshard_experiment(spec, nemesis=install)

    assert "down_until" in state  # the strike really fired mid-plan
    assert result.reshard_completed
    # Completion BEFORE the first-hop host restarts is the regression
    # check: the pinned ring would have wedged until recovery.
    assert result.migration_completed_s < state["down_until"]
    assert result.final_epoch == 1
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.linearizable


# -- planned handoff: ownership transfer without a lease expiry ---------------


def test_reshard_owner_planned_handoff_beats_lease_expiry():
    """`ReplicatedCoordinator.handoff(to)`: the owner drains its in-flight
    step, journals a claim naming the receiver (stamped as a handoff), and
    the receiver resumes at the committed cursor the moment the claim
    applies.  The ownership gap must be bounded by a control-log commit —
    strictly below `LEASE_EXPIRY`, the floor every unplanned lease-expiry
    failover has to wait out before a standby may even try to claim."""
    from repro.shard.cluster import ShardedCluster
    from repro.shard.control import ReplicatedCoordinator

    spec = reshard_spec(9)
    cluster = ShardedCluster(spec)
    cluster.reshard(spec.reshard_to, at=sec(spec.reshard_at_s))
    state = {}

    def transfer() -> None:
        plane = cluster.coordinator
        active = plane.active if plane is not None else None
        if active is None or plane.done:  # pragma: no cover - tuning
            return
        standby = next(m for m in plane.control.members if m != active.name)
        state["requested_s"] = cluster.sim.now / 1e6
        state["from"], state["to"] = active.name, standby
        active.handoff(standby)
    cluster.sim.schedule_at(sec(spec.reshard_at_s + 0.15), transfer)
    cluster.sim.run(until=sec(spec.duration_s))

    assert "requested_s" in state, "plan finished before the handoff fired"
    plane = cluster.coordinator
    assert plane.done
    assert plane.handoffs == 1
    assert plane.failovers == 0  # no lease expired anywhere in the run
    receiver = next(c for c in plane.coordinators if c.name == state["to"])
    assert receiver.handoffs == 1
    handed_at = next(at for at, role in receiver.takeovers
                     if role == "handoff:reshard-owner")
    gap_ms = handed_at / 1e3 - state["requested_s"] * 1e3
    expiry_ms = ReplicatedCoordinator.LEASE_EXPIRY / 1e3
    assert gap_ms < expiry_ms, (
        f"handoff took {gap_ms:.0f} ms, not below the {expiry_ms:.0f} ms "
        f"lease-expiry floor of an unplanned failover")
    assert cluster.metrics.counters.get("coordinator_handoffs", 0) == 1
    # The receiver finished the plan it inherited.
    assert cluster.reshard_completed_at is not None
    assert cluster.router.epoch == 1


# -- the composed schedule: both planes faulted in one run --------------------


def test_coordinator_kills_mid_2pc_and_mid_reshard_same_run():
    """One run, both coordinator planes faulted: a txn coordinator host
    dies with 2PC in flight AND the reshard driver's host dies
    mid-migration.  The full contract must hold across both failovers,
    and the client-visible ack stream may pause only for the failover
    window — not for a machine restart."""
    spec = txn_spec(7, duration_s=max(14.0, 14.0 * SCALE / 0.3))
    cluster = TxnCluster(spec)
    cluster.reshard(4, at=sec(4.0))
    nemesis = Nemesis(cluster, seed=7, leader_down_s=1.2, host_down_s=3.0)
    nemesis.coordinator_host_kill_at(2.5, role="txn")
    nemesis.leader_kill_at(4.1, shard=0)
    nemesis.leader_kill_at(4.1, shard=1)
    nemesis.coordinator_host_kill_at(5.6, role="reshard")
    cluster.nemesis = nemesis
    result = cluster.run()

    # Both planes actually failed over.
    assert nemesis.host_kills == 2
    assert result.failovers > 0                      # txn janitor takeover
    assert cluster.coordinator is not None
    assert cluster.coordinator.failovers > 0         # reshard owner claim
    assert cluster.reshard_completed_at is not None
    assert cluster.router.epoch == 1

    # The contract, across the epoch change and both failovers.
    assert_txn_contract(result)
    assert result.committed_total > 0 and result.commits_2pc > 0

    # No ghost installs: every acked transactional write is in its key's
    # final-owner install order.
    orders = cluster.write_orders()
    lost = [(event.txn_id, key, value)
            for event in cluster.txn_events
            for op, key, value in event.ops
            if op == "put" and value not in orders.get(key, [])]
    assert lost == []

    # Bounded ack-latency hole: the longest gap between consecutive
    # transaction acks must stay within the failover window plus retry
    # backoff — far below the 3 s the machines stayed dark (a wedged
    # coordinator would open a hole the length of the outage).
    ends = sorted(event.end / 1e6 for event in cluster.txn_events
                  if sec(spec.warmup_s) <= event.end)
    gaps = [b - a for a, b in zip(ends, ends[1:])]
    assert gaps, "no acks after warmup"
    assert max(gaps) < 2.5, f"ack hole of {max(gaps):.2f} s"
