"""The replicated control plane in isolation: journal at-most-once, lease
expiry, takeover first-wins, claim rotation, and view replay idempotence.

These pin the `repro.shard.control` contract the coordinator failover
design (DESIGN.md §11) rests on: every rule is exercised against a REAL
control group (a raft log, elections and all), not a mock — except the
pure `ControlView` merge rules, which are unit-tested directly because
recovery replay re-fires them with arbitrary duplication.
"""

import json

from repro.protocols.types import Command, OpType
from repro.shard.control import (CONTROL_CLIENT_PREFIX, ControlGroup,
                                 ControlView, ReplicatedCoordinator)
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.rng import SplitRng
from repro.sim.topology import uniform_topology
from repro.sim.units import ms, sec

SITES = ["oregon", "ohio", "canada"]


class Probe(ReplicatedCoordinator):
    """A minimal journaled coordinator: records every dispatched control
    record and renews its lease on every tick."""

    def __init__(self, name, sim, network, site, control, rng) -> None:
        super().__init__(name, sim, network, site, control, rng)
        self.records = []
        self.acked = []

    def on_lease_tick(self) -> None:
        self.journal_lease()

    def on_control_record(self, record) -> None:
        self.records.append(record)

    def on_message(self, src, message) -> None:
        self.handle_control_reply(message)


def build(members=2, initial_owner=None):
    sim = Simulator()
    rng = SplitRng(7)
    network = Network(sim, uniform_topology(SITES, rtt_ms_value=10.0),
                      rng=rng)
    names = [f"co_{site}" for site in SITES[:members]]
    control = ControlGroup("ctl", sim, network, SITES, "raft",
                           members=names, initial_owner=initial_owner)
    probes = {site: Probe(f"co_{site}", sim, network, site, control,
                          rng.stream(f"co:{site}"))
              for site in SITES[:members]}
    return sim, control, probes


def record(kind, **fields):
    payload = dict(fields, k=kind)
    value = json.dumps(payload, sort_keys=True)
    return Command(op=OpType.PUT, key="ctl:test", value=value,
                   client_id=f"{CONTROL_CLIENT_PREFIX}test", seq=1,
                   value_size=len(value))


# -- ControlView merge rules (pure, replay-hammered) --------------------------


def test_view_fence_and_lease_are_monotone_under_replay():
    view = ControlView()
    for _ in range(3):  # recovery replays the log from index 0
        view.on_apply("r", 0, record("fence", o="a", fe=3, t=100))
        view.on_apply("r", 1, record("lease", o="a", t=50))
        view.on_apply("r", 2, record("fence", o="a", fe=2, t=10))
    assert view.fence_of("a") == 3
    assert view.lease_t["a"] == 100  # older stamps never regress it
    assert view.fence_of("never_seen") == 1


def test_view_take_first_raise_wins():
    view = ControlView()
    view.on_apply("r", 0, record("take", v="dead", by="j1", fe=2, t=5))
    view.on_apply("r", 1, record("take", v="dead", by="j2", fe=2, t=6))
    assert view.taken_by["dead"] == (2, "j1")
    assert view.fence_of("dead") == 2
    # A later, higher fence re-takes (the victim died again).
    view.on_apply("r", 2, record("take", v="dead", by="j2", fe=3, t=7))
    assert view.taken_by["dead"] == (3, "j2")


def test_view_claim_commits_only_exact_successor():
    view = ControlView(initial_owner="a")
    assert (view.owner, view.owner_epoch) == ("a", 1)
    view.on_apply("r", 0, record("claim", o="b", e=3, t=1))  # skipped epoch
    assert (view.owner, view.owner_epoch) == ("a", 1)
    view.on_apply("r", 1, record("claim", o="b", e=2, t=2))
    assert (view.owner, view.owner_epoch) == ("b", 2)
    view.on_apply("r", 2, record("claim", o="c", e=2, t=3))  # lost the race
    assert (view.owner, view.owner_epoch) == ("b", 2)


def test_view_ignores_non_control_commands():
    view = ControlView()
    view.on_apply("r", 0, Command(op=OpType.PUT, key="k", value="v",
                                  client_id="ordinary_client", seq=1))
    assert view.fence == {} and view.lease_t == {}


# -- the journal end to end ---------------------------------------------------


def test_lease_journal_reaches_every_site_view():
    sim, control, probes = build(members=2)
    sim.run(until=sec(3))
    for site in SITES:
        view = control.view_of(site)
        assert view.lease_t.get("co_oregon", 0) > 0
        assert view.lease_t.get("co_ohio", 0) > 0
    # Liveness is CURRENT, not just present: renewed within the expiry
    # window at the horizon.
    probe = probes["oregon"]
    assert not probe.lease_expired("co_ohio")
    # A member that never journaled is not expired (nothing to take over).
    assert not probe.lease_expired("co_never")


def test_lease_expires_after_crash_and_recovers():
    sim, control, probes = build(members=2)
    victim = probes["ohio"]
    sim.schedule_at(sec(2), victim.crash)
    sim.run(until=sec(4))
    assert probes["oregon"].lease_expired("co_ohio")
    sim.schedule_at(sec(4), victim.recover)
    sim.run(until=sec(6))
    assert not probes["oregon"].lease_expired("co_ohio")


def test_journal_seq_survives_crash_no_dedup_suppression():
    """A crash between journal append and ack must not let the restarted
    coordinator reuse the slot: the stable ctl_seq guarantees a re-journaled
    record lands as a NEW log entry, not a dedup-cached reply of the old."""
    sim, control, probes = build(members=2)
    probe = probes["oregon"]
    sim.run(until=sec(2))  # let the control group elect and settle
    probe.journal({"k": "mark", "n": 1})
    seq_before = probe.stable["ctl_seq"]
    probe.crash()
    probe.recover()
    assert probe.stable["ctl_seq"] == seq_before  # stable storage survived
    probe.journal({"k": "mark", "n": 2})
    assert probe.stable["ctl_seq"] == seq_before + 1
    sim.run(until=sec(4))
    marks = [r["n"] for r in probes["ohio"].records if r.get("k") == "mark"]
    assert 2 in marks  # the post-crash record really committed


def test_crashed_coordinator_does_not_dispatch_records():
    sim, control, probes = build(members=2)
    probe = probes["ohio"]
    sim.schedule_at(ms(100), probe.crash)
    sim.run(until=sec(3))
    dispatched_while_dead = len(probe.records)
    assert dispatched_while_dead == 0
    # The VIEW kept materializing while the coordinator was dead — on
    # recovery it reads current state without replaying anything itself.
    assert control.view_of("ohio").lease_t.get("co_oregon", 0) > 0


def test_leaderless_protocol_gets_raft_control_log():
    sim = Simulator()
    rng = SplitRng(3)
    network = Network(sim, uniform_topology(SITES, rtt_ms_value=10.0),
                      rng=rng)
    control = ControlGroup("ctl", sim, network, SITES, "mencius")
    # The journal still elects a leader and accepts appends.
    probe = Probe("co_oregon", sim, network, "oregon", control,
                  rng.stream("co"))
    sim.run(until=sec(3))
    assert control.view_of("canada").lease_t.get("co_oregon", 0) > 0


def test_control_replica_shares_host_with_coordinator():
    sim, control, probes = build(members=2)
    probe = probes["oregon"]
    replica = control.replicas[control.replica_name("oregon")]
    assert probe.host is replica.host is control.host_of("oregon")
    # Machine-granular crash: the host takes both down together.
    probe.host.crash()
    assert not probe.alive and not replica.alive
