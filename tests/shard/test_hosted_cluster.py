"""Host-multiplexed sharded clusters: shared machines, coalescing, beacons.

End-to-end coverage of the (site, host) runtime under the shard layer:
replicas of many groups share one simulated machine, the GroupMux batches
their cross-host traffic, colocated leaders' heartbeats merge into host
beacons — and none of it changes what the protocols agree on (histories
stay linearizable, terms stay stable, crashes take whole machines).
"""

import pytest

from repro.shard.cluster import ShardedCluster, ShardedSpec
from repro.shard.nemesis import Nemesis
from repro.sim.units import ms, sec
from repro.workload.ycsb import WorkloadConfig


def spec(**overrides) -> ShardedSpec:
    base = dict(
        protocol="raft",
        num_shards=4,
        placement="colocated",
        clients_per_region=4,
        workload=WorkloadConfig(read_fraction=0.1, value_size=8),
        duration_s=3.0,
        warmup_s=0.8,
        cooldown_s=0.4,
        seed=7,
        check_history=True,
        site_uplink_factor=None,
        hosts_per_site=1,
        coalesce=True,
    )
    base.update(overrides)
    return ShardedSpec(**base)


def test_groups_share_hosts_and_muxes():
    cluster = ShardedCluster(spec())
    sites = cluster.topology.sites
    # One machine per site, every group's replica in a site on it.
    assert sorted(cluster.hosts) == sorted(f"h0.{site}" for site in sites)
    for site in sites:
        host = cluster.hosts[f"h0.{site}"]
        names = {node.name for node in host.nodes}
        expected = {f"g{g}_r_{site}" for g in range(4)} | {f"mux.h0.{site}"}
        assert names == expected
    # The NIC is host-keyed: all colocated replicas share one egress queue.
    backlog = cluster.network.egress_backlog_us
    assert backlog("g0_r_oregon") == backlog("g3_r_oregon")


def test_hosts_per_site_spreads_groups_round_robin():
    cluster = ShardedCluster(spec(hosts_per_site=2))
    host_of = {node.name: host_name
               for host_name, host in cluster.hosts.items()
               for node in host.nodes}
    assert host_of["g0_r_oregon"] == "h0.oregon"
    assert host_of["g1_r_oregon"] == "h1.oregon"
    assert host_of["g2_r_oregon"] == "h0.oregon"
    assert host_of["g0_r_seoul"] == "h0.seoul"
    # The cluster's placement agrees with the layout plan it was built on.
    for (shard, site), name in [((s, site), f"g{s}_r_{site}")
                                for s in range(4)
                                for site in cluster.topology.sites]:
        assert host_of[name] == cluster.host_plan.host_for_group(site, shard)


def test_coalesced_cluster_serves_and_stays_linearizable():
    result = ShardedCluster(spec()).run()
    assert result.completed > 0
    assert result.linearizable
    assert result.filtered == 0
    assert result.counters["coalesce_envelopes"] > 0
    assert result.counters["coalesce_messages"] \
        > result.counters["coalesce_envelopes"]


def test_beacons_merge_all_colocated_leaders_and_replace_heartbeats():
    cluster = ShardedCluster(spec())
    result = cluster.run()
    beacons = result.counters["coalesce_beacons"]
    beats = result.counters["coalesce_beacon_beats"]
    assert beacons > 0
    # Colocated placement: every one of the 4 leaders lives on the oregon
    # host, so each beacon it emits merges all 4 groups' keepalives.
    assert beats == 4 * beacons
    # The merged beacon really replaces the empty heartbeats: no follower
    # timed out, every replica is still on the seeded term-1 leadership.
    for shard, replicas in cluster.groups.items():
        for replica in replicas.values():
            assert replica.current_term == 1
            assert replica.leader_id == f"g{shard}_r_oregon"


def test_coalescing_off_keeps_legacy_transport_on_shared_hosts():
    result = ShardedCluster(spec(coalesce=False)).run()
    assert result.completed > 0
    assert result.linearizable
    assert "coalesce_envelopes" not in result.counters


def test_mencius_groups_coalesce_but_are_beacon_exempt():
    # The leaderless satellite: Mencius has no leader keepalive to merge —
    # its skip/commit announcements ride the coalesced envelopes, and the
    # beacon counters must stay ZERO (the pinned exemption, mirroring the
    # UnsupportedProtocolError precedent for leaderless resharding).
    result = ShardedCluster(spec(
        protocol="mencius", num_shards=2, duration_s=4.0,
        check_history=False)).run()
    assert result.completed > 0
    assert result.counters["coalesce_envelopes"] > 0
    assert result.counters.get("coalesce_beacons", 0) == 0
    assert result.counters.get("coalesce_beacon_beats", 0) == 0


def test_host_kill_crashes_every_colocated_replica_together():
    cluster = ShardedCluster(spec(duration_s=4.0))
    nemesis = Nemesis(cluster, host_down_s=1.0)
    nemesis.host_kill_at(1.0, host="h0.ohio")

    observed = {}

    def snapshot():
        host = cluster.hosts["h0.ohio"]
        observed["down"] = [node.name for node in host.nodes
                            if not node.alive]
    cluster.sim.schedule_at(sec(1.0) + ms(1), snapshot)
    result = cluster.run()

    assert nemesis.host_kills == 1
    # Machine granularity: all four group replicas AND the mux died as one.
    assert sorted(observed["down"]) == sorted(
        [f"g{g}_r_ohio" for g in range(4)] + ["mux.h0.ohio"])
    # The cluster rode it out: ohio is a follower site for every group, so
    # the groups keep committing and histories stay clean.
    assert result.completed > 0
    assert result.linearizable


def test_beacon_does_not_mask_a_partitioned_leader():
    cluster = ShardedCluster(spec(duration_s=6.0, num_shards=2))
    nemesis = Nemesis(cluster, partition_s=4.0)
    nemesis.leader_partition_at(1.0, shard=0)
    result = cluster.run()
    # The host beacon withholds beats over blocked links, so g0's
    # followers time out and elect despite the leaders' host still
    # beaconing for every group: someone must have advanced past the
    # seeded term.  (Without the per-link check the beacon would keep
    # resetting their timers and the group would wedge until the heal.)
    assert nemesis.partitions == 1
    terms = [replica.current_term
             for replica in cluster.groups[0].values()]
    assert max(terms) > 1
    assert result.completed > 0
    assert result.linearizable


def test_host_recovery_survives_interleaved_replica_kill():
    # A leader_kill recovering one cohabitant EARLY must not cancel the
    # machine's restart for everyone else (the recovery closure revives
    # its own victims, not whatever Host.alive derives).
    cluster = ShardedCluster(spec(duration_s=5.0))
    nemesis = Nemesis(cluster, leader_down_s=1.2, host_down_s=2.0)
    nemesis.leader_kill_at(1.0, shard=0)   # crashes g0's leader (oregon)
    nemesis.host_kill_at(1.5, host="h0.oregon")  # machine dies too
    cluster.run()
    # leader_kill's recovery fires at 2.2s (making Host.alive true);
    # host_kill's at 3.5s must still revive the other colocated nodes.
    assert all(node.alive for node in cluster.hosts["h0.oregon"].nodes)


def test_leader_host_kill_fails_over_every_group_at_once():
    cluster = ShardedCluster(spec(duration_s=6.0, num_shards=2))
    nemesis = Nemesis(cluster, host_down_s=4.0)
    # Every leader lives on h0.oregon: one machine failure orphans ALL
    # groups; every group must elect a new leader elsewhere and keep going.
    nemesis.host_kill_at(1.0, host="h0.oregon")
    result = cluster.run()
    assert nemesis.host_kills == 1
    assert result.linearizable
    for shard, replicas in cluster.groups.items():
        leaders = [r.name for r in replicas.values()
                   if r.alive and getattr(r, "is_leader", False)]
        assert leaders and all("oregon" not in name for name in leaders)
