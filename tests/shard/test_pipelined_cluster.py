"""Pipelined sessions composed with the shard layer: windowed dedup under
routing, live resharding, and 2PC — the at-most-once guarantees must hold
at depth > 1 exactly as they did for the closed-loop depth-1 clients."""

import os

from repro.shard.cluster import (
    ReshardSpec,
    ShardedSpec,
    run_reshard_experiment,
    run_sharded_experiment,
)
from repro.shard.txn import TxnSpec, run_txn_experiment
from repro.workload.ycsb import WorkloadConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.05,
                          value_size=8, records=2_000)


def test_pipelined_sharded_run_is_linearizable_and_lossless():
    spec = ShardedSpec(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=3, workload=WORKLOAD,
        duration_s=4.0, warmup_s=1.0, cooldown_s=0.5, seed=11,
        check_history=True, pipeline_depth=4,
    )
    result = run_sharded_experiment(spec)
    assert result.completed > 0
    assert result.linearizable
    assert result.filtered == 0


def test_pipelined_beats_closed_loop_at_equal_clients():
    results = {}
    for depth in (1, 4):
        spec = ShardedSpec(
            protocol="raft", num_shards=2, placement="spread",
            clients_per_region=2, workload=WORKLOAD,
            duration_s=4.0, warmup_s=1.0, cooldown_s=0.5, seed=3,
            pipeline_depth=depth,
        )
        results[depth] = run_sharded_experiment(spec).throughput_ops
    assert results[4] > 1.5 * results[1]


def test_pipelined_reshard_keeps_every_ack_exactly_once():
    """The windowed dedup's hardest composition: a live 2->4 split while
    every client keeps 4 commands in flight.  Retries cross the migration,
    windows migrate with their keys, and the accounting must balance."""
    spec = ReshardSpec(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=3, workload=WORKLOAD,
        duration_s=7.0, warmup_s=1.0, cooldown_s=0.5, seed=7,
        check_history=True, pipeline_depth=4,
        reshard_to=4, reshard_at_s=2.5,
    )
    result = run_reshard_experiment(spec)
    assert result.reshard_completed
    assert result.completed > 0
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.linearizable


def test_pipelined_transactions_stay_strict_serializable():
    spec = TxnSpec(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=2,
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                                value_size=64, records=2_000),
        duration_s=5.0, warmup_s=1.0, cooldown_s=0.5, seed=5,
        check_history=True, pipeline_depth=3,
        txn_size=2, cross_shard_ratio=0.3,
    )
    result = run_txn_experiment(spec)
    assert result.committed_total > 0
    assert result.cross_shard > 0
    assert result.safe, (result.acks_lost, result.acks_duplicated,
                         result.duplicate_executions,
                         result.serializability_violations)


def test_open_loop_sharded_fleet():
    spec = ShardedSpec(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=2, workload=WORKLOAD,
        duration_s=4.0, warmup_s=1.0, cooldown_s=0.5, seed=9,
        check_history=True, pipeline_depth=4, offered_load=300.0,
    )
    result = run_sharded_experiment(spec)
    assert result.completed > 0
    assert result.linearizable
    assert result.filtered == 0
