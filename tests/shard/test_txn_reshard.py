"""Transactional load across a live reshard — the ROADMAP gap "txn +
reshard individually hardened but not yet tested together", closed.

A `TxnCluster` serving 2-op transactions (half of them cross-shard 2PC)
splits 2 -> 4 groups mid-run.  The composition has teeth both ways:

* migration must respect 2PC — `MIGRATE_OUT` refuses (deterministically,
  as replicated state) while a prepared transaction holds locks in the
  range, because exporting under a voted participant would strand its
  staged writes on a group that no longer owns them (the ghost-write the
  pinned store test below exercises directly);
* 2PC must respect migration — prepares for exported keys vote no, the
  coordinator retries under the refreshed map, and retried/duplicated
  steps stay at-most-once because the dedup sessions (and the per-key
  install orders the strict-serializability checker anchors on) travel
  with the range.

Every seed must uphold the full client-visible contract across the epoch
change: strict serializability, zero lost/duplicated acks, zero
re-executed writes, no orphan locks.
"""

import json
import os

import pytest

from repro.kvstore.store import KVStore
from repro.protocols.types import Command, OpType
from repro.shard.txn import TxnCluster, TxnSpec
from repro.sim.units import sec
from repro.workload.ycsb import WorkloadConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
SEEDS = range(6)

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0, records=500,
                          value_size=64)


def txn_reshard_spec(seed: int) -> TxnSpec:
    return TxnSpec(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=max(2, round(2 * SCALE / 0.3)),
        workload=WORKLOAD,
        duration_s=max(9.0, 9.0 * SCALE / 0.3),
        warmup_s=1.0, cooldown_s=0.5, seed=seed,
        check_history=True, txn_size=2, cross_shard_ratio=0.6,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_txn_load_across_live_reshard_stays_strictly_serializable(seed):
    spec = txn_reshard_spec(seed)
    cluster = TxnCluster(spec)
    # Split while 2PC traffic is in full flight (after warm-up, well
    # before cool-down, so prepares straddle the migration both ways).
    cluster.reshard(4, at=sec(3.0))
    result = cluster.run()

    # The migration completed under transactional load and the routing
    # epoch advanced everywhere.
    assert cluster.reshard_completed_at is not None
    assert cluster.router.epoch == 1
    assert len(cluster.groups) == 4

    # The load really was transactional AND cross-shard: at least 30% of
    # the issued transactions ran 2PC through the coordinators.
    issued = result.single_shard + result.cross_shard
    assert issued > 0
    assert result.cross_shard >= 0.3 * issued
    assert result.commits_2pc > 0
    assert result.committed_total > 0

    # The ghost-write detector with teeth: every acknowledged
    # transactional write must appear in its key's FINAL-owner install
    # order.  An export racing a voted participant would strand the
    # staged write on the donor (installed where nobody reads), and this
    # — not the cycle checker — is what catches it.
    orders = cluster.write_orders()
    lost_installs = [(event.txn_id, key, value)
                     for event in cluster.txn_events
                     for op, key, value in event.ops
                     if op == "put" and value not in orders.get(key, [])]
    assert lost_installs == []

    # The contract, across the epoch change:
    assert result.serializability_violations == []
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert all(not v for v in result.prefix_violations.values())
    # No orphan locks: whatever is still locked belongs to transactions
    # literally in flight at the horizon.
    assert result.locks_left <= len(cluster.clients)


def migrate_out(lo: int, hi: int, seq: int = 1) -> Command:
    import json

    value = json.dumps({"lo": lo, "hi": hi, "epoch": 1, "num_shards": 4},
                       sort_keys=True)
    return Command(op=OpType.MIGRATE_OUT, key=f"reshard:{lo}", value=value,
                   client_id="__reshard__", seq=seq, value_size=len(value))


def prepare(handle: str, key: str, ts: int = 5, seq: int = 1) -> Command:
    import json

    value = json.dumps({"handle": handle, "txn": "c:1", "coord": "co",
                        "inc": 0, "ts": ts, "ops": [["put", key, "v"]],
                        "participants": [0, 1], "home": 0}, sort_keys=True)
    return Command(op=OpType.TXN_PREPARE, key=f"txn:{handle}", value=value,
                   client_id=f"__txn__:{handle}", seq=seq,
                   value_size=len(value))


def finish(handle: str, commit: bool, seq: int) -> Command:
    import json

    value = json.dumps({"handle": handle}, sort_keys=True)
    op = OpType.TXN_COMMIT if commit else OpType.TXN_ABORT
    return Command(op=op, key=f"txn:{handle}", value=value,
                   client_id=f"__txn__:{handle}", seq=seq,
                   value_size=len(value))


def test_migrate_out_waits_for_prepared_locks_in_range():
    """The store-level pin: an export overlapping a prepared lock refuses
    with a (non-dedup-recorded) conflict until phase 2 releases it — so a
    committed transaction's staged write can never be stranded on the
    donor as a ghost the recipient never imports."""
    from repro.shard.partition import HASH_SPACE, key_point

    store = KVStore()
    key = "k7"
    store.apply(Command(op=OpType.PUT, key=key, value="v0",
                        client_id="c", seq=1))
    vote = store.apply(prepare("h1", key))
    assert "yes" in (vote.value or "")

    # Export of the locked key's whole ring: refused, lock intact.
    blocked = store.apply(migrate_out(0, HASH_SPACE, seq=2))
    assert not blocked.ok and blocked.conflict
    assert store.locked_keys() == {key: "h1"}
    assert store.read_local(key) == "v0"

    # The SAME (client, seq) retried after phase 2 must actually apply —
    # the refusal did not burn the dedup slot.
    store.apply(finish("h1", commit=True, seq=2))
    assert store.read_local(key) == "v"
    export = store.apply(migrate_out(0, HASH_SPACE, seq=2))
    assert export.ok

    # The committed write left with the range — table, versions, AND the
    # install order the serializability checker reads.
    import json

    payload = json.loads(export.value)
    assert payload["table"][key] == "v"
    assert payload["write_log"][key] == ["v0", "v"]
    assert store.version(key) == 0
    assert store.write_order(key) == []

    # A disjoint range migrates regardless of the lock.
    store2 = KVStore()
    store2.apply(prepare("h2", key))
    point = key_point(key)
    lo, hi = (0, point) if point else (point + 1, HASH_SPACE)
    assert store2.apply(migrate_out(lo, hi, seq=1)).ok


def test_refused_export_fences_new_prepares_until_it_lands():
    """A refused export fences the range: NEW prepares die ("migrating")
    so the held locks can drain instead of a steady 2PC stream re-locking
    the range forever — while plain writes keep being served.  The fence
    lifts when the export finally applies."""
    from repro.shard.partition import HASH_SPACE

    store = KVStore()
    store.apply(prepare("h1", "k7"))
    blocked = store.apply(migrate_out(0, HASH_SPACE, seq=2))
    assert blocked.conflict

    # New prepare on a DIFFERENT key in the fenced range: dies.
    vote = store.apply(prepare("h2", "k8", ts=9, seq=1))
    assert json.loads(vote.value)["vote"] == "no"
    assert json.loads(vote.value)["reason"] == "migrating"
    # Plain data ops are unaffected by the fence.
    assert store.apply(Command(op=OpType.PUT, key="k8", value="w",
                               client_id="c3", seq=1)).ok

    # Lock drains -> the retried export applies and lifts the fence.
    store.apply(finish("h1", commit=True, seq=2))
    assert store.apply(migrate_out(0, HASH_SPACE, seq=2)).ok
    assert not store._migrate_fences


def test_refused_export_does_not_flip_ownership():
    """The replica-level pin: a lock-refused MIGRATE_OUT is skipped by the
    apply hooks, so `ShardOwnership` does not subtract a range the donor
    still holds — the group keeps serving every unlocked key in it until
    the export actually happens."""
    from repro.protocols.base import ReplicaBase
    from repro.protocols.config import single_site_cluster
    from repro.protocols.types import Entry
    from repro.shard.partition import HASH_SPACE, VersionedPartitioner
    from repro.shard.reshard import ShardOwnership
    from repro.sim.events import Simulator
    from repro.sim.network import Network
    from repro.sim.topology import symmetric_lan

    class Applier(ReplicaBase):
        def submit_command(self, command):  # pragma: no cover - unused
            pass

        def leader_hint(self):  # pragma: no cover - unused
            return None

    sim = Simulator()
    replica = Applier("s0", sim, Network(sim, symmetric_lan(1)),
                      single_site_cluster(1))
    ownership = ShardOwnership(0, VersionedPartitioner.initial(1))
    replica.store.set_key_filter(ownership.owns_key)
    replica.on_apply_hooks.append(ownership.on_apply)

    replica.apply_entry(0, Entry(term=1, command=prepare("h1", "k7")))
    replica.apply_entry(1, Entry(term=1, command=migrate_out(0, HASH_SPACE)))
    # Refused: ownership intact, unlocked keys still served.
    assert ownership.owns_key("other")
    put = Command(op=OpType.PUT, key="other", value="v",
                  client_id="c2", seq=1)
    replica.apply_entry(2, Entry(term=1, command=put))
    assert replica.store.read_local("other") == "v"
    assert replica.store.filtered_count == 0

    # Once phase 2 releases the lock, the export applies and ownership
    # flips at THAT position.
    replica.apply_entry(3, Entry(term=1, command=finish("h1", commit=True,
                                                        seq=2)))
    replica.apply_entry(4, Entry(term=1, command=migrate_out(0, HASH_SPACE,
                                                             seq=2)))
    assert not ownership.owns_key("other")


def test_import_prepends_migrated_write_log():
    store = KVStore()
    store.import_range({"table": {"k": "b"}, "versions": {"k": 2},
                        "write_log": {"k": ["a", "b"]}})
    store.apply(Command(op=OpType.PUT, key="k", value="c",
                        client_id="c", seq=1))
    assert store.write_order("k") == ["a", "b", "c"]
    assert store.version("k") == 3
